//! Differential battery for the sharded serving path.
//!
//! An [`Engine`] holding a sharded artifact must be observationally
//! indistinguishable from an engine holding the equivalent single artifact —
//! the union of the per-shard spanners plus every cut edge, assembled by
//! [`ShardedArtifact::to_union_artifact`]. Distances and certificate scalars
//! must match bit-for-bit, paths must be equally short and walk only
//! surviving spanner edges (tie-breaks may legitimately differ), and typed
//! errors must be identical — on G(n, p) and grid topologies, under vertex
//! and edge faults, at any worker count and cache capacity. Certificate
//! baselines are additionally oracle-checked against a fresh Dijkstra run on
//! the source graph, independent of both serving paths.

use fault_tolerant_spanners::core::CoreError;
use fault_tolerant_spanners::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One engine's answers to a batch, in input order.
type BatchResults = Vec<Result<QueryOutcome, CoreError>>;

/// Builds the differential pair over `g`: a sharded artifact cut into
/// `parts` and the single-artifact reference carrying exactly the same
/// spanner edge set over the same source graph.
fn differential_pair(g: &Graph, parts: usize, seed: u64) -> (ShardedArtifact, FtSpanner) {
    let builder = FtSpannerBuilder::new("conversion").faults(1).stretch(3.0);
    let config = partition::PartitionConfig::new(parts).with_seed(seed);
    let sharded = ShardedArtifact::build(g, &builder, &config).expect("sharded build succeeds");
    let union = sharded
        .to_union_artifact()
        .expect("union artifact assembles");
    (sharded, union)
}

/// A mixed battery of vertex-fault queries against `names` (which may
/// include unregistered artifacts): all three query kinds, fault lists that
/// are empty, valid, duplicated, oversized, or out of range.
fn vertex_battery(names: &[&str], n: usize, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let name = names[rng.gen_range(0..names.len())];
            let u = NodeId::new(rng.gen_range(0..n));
            let v = NodeId::new(rng.gen_range(0..n));
            let mut faults: Vec<NodeId> = (0..rng.gen_range(0..3usize))
                .map(|_| NodeId::new(rng.gen_range(0..n + 2)))
                .collect();
            if rng.gen_bool(0.2) && !faults.is_empty() {
                faults.push(faults[0]); // duplicates must dedup, not count twice
            }
            match rng.gen_range(0..3usize) {
                0 => Query::distance(name, faults, u, v),
                1 => Query::path(name, faults, u, v),
                _ => Query::certificate(name, faults, u, v),
            }
        })
        .collect()
}

/// Checks one (sharded, reference) path pair: same reachability, equal
/// length, and the sharded path walks only surviving spanner edges of the
/// union artifact — no dead vertex, no dead edge.
fn assert_path_equivalent(
    i: usize,
    query: &Query,
    union: &FtSpanner,
    sharded_path: &Option<Vec<NodeId>>,
    reference_path: &Option<Vec<NodeId>>,
) {
    let spanner_graph = union.source_graph();
    match (sharded_path, reference_path) {
        (None, None) => {}
        (Some(p), Some(q)) => {
            assert_eq!(p.first(), Some(&query.u), "query {i}: path start");
            assert_eq!(p.last(), Some(&query.v), "query {i}: path end");
            let length = |path: &[NodeId]| {
                path.windows(2)
                    .map(|w| {
                        let id = spanner_graph
                            .find_edge(w[0], w[1])
                            .unwrap_or_else(|| panic!("query {i}: hop not an edge"));
                        assert!(
                            union.spanner_edges().contains(id),
                            "query {i}: hop outside the spanner"
                        );
                        spanner_graph.edge(id).weight
                    })
                    .sum::<f64>()
            };
            let (la, lb) = (length(p), length(q));
            assert!(
                (la - lb).abs() < 1e-9,
                "query {i}: sharded path length {la} != reference {lb}"
            );
            assert!(
                !p.iter().any(|x| query.faults.contains(x)),
                "query {i}: sharded path visits a dead vertex"
            );
            for w in p.windows(2) {
                let dead = query
                    .edge_faults
                    .iter()
                    .any(|&(a, b)| (a, b) == (w[0], w[1]) || (a, b) == (w[1], w[0]));
                assert!(!dead, "query {i}: sharded path crosses a dead edge");
            }
        }
        _ => panic!("query {i}: reachability diverged: {sharded_path:?} vs {reference_path:?}"),
    }
}

/// Asserts the sharded results match the union-reference results: bit-equal
/// distances, certificate scalars and errors; structurally equivalent paths.
fn assert_differential(
    g: &Graph,
    union: &FtSpanner,
    queries: &[Query],
    sharded: &[Result<QueryOutcome, CoreError>],
    reference: &[Result<QueryOutcome, CoreError>],
) {
    assert_eq!(sharded.len(), queries.len());
    assert_eq!(reference.len(), queries.len());
    for (i, ((s, r), query)) in sharded.iter().zip(reference).zip(queries).enumerate() {
        match (s, r) {
            (Ok(QueryOutcome::Path(a)), Ok(QueryOutcome::Path(b))) => {
                assert_path_equivalent(i, query, union, a, b)
            }
            (Ok(QueryOutcome::Certificate(a)), Ok(QueryOutcome::Certificate(b))) => {
                assert_eq!(a.u, b.u, "query {i}: certificate u");
                assert_eq!(a.v, b.v, "query {i}: certificate v");
                assert_eq!(
                    a.spanner_distance.to_bits(),
                    b.spanner_distance.to_bits(),
                    "query {i}: certificate spanner distance"
                );
                assert_eq!(
                    a.baseline_distance.to_bits(),
                    b.baseline_distance.to_bits(),
                    "query {i}: certificate baseline distance"
                );
                assert_eq!(
                    a.stretch.to_bits(),
                    b.stretch.to_bits(),
                    "query {i}: certificate stretch"
                );
                assert_eq!(
                    a.bound.to_bits(),
                    b.bound.to_bits(),
                    "query {i}: certificate bound"
                );
                assert_path_equivalent(i, query, union, &a.path, &b.path);
            }
            _ => assert_eq!(s, r, "query {i} ({:?}) diverged", query.kind),
        }
        // Oracle check, independent of both serving paths: every certificate
        // holds and its baseline equals a fresh Dijkstra on the source graph
        // with the faulted vertices removed.
        if let Ok(QueryOutcome::Certificate(cert)) = s {
            assert!(cert.holds(), "query {i}: certificate does not hold");
            if query.edge_faults.is_empty() {
                let mut dead = vec![false; g.node_count()];
                for f in &query.faults {
                    dead[f.index()] = true;
                }
                if !dead[query.u.index()] && !dead[query.v.index()] {
                    let oracle = shortest_path::dijkstra_avoiding(g, query.u, &dead)
                        .expect("oracle dijkstra runs");
                    assert_eq!(
                        cert.baseline_distance.to_bits(),
                        oracle[query.v.index()].to_bits(),
                        "query {i}: baseline diverges from the source-graph oracle"
                    );
                }
            }
        }
    }
}

/// Registers the pair under the same name in two engines and returns
/// `(sharded grouped results, union naive-reference results)`.
fn run_differential(
    sharded: &ShardedArtifact,
    union: &FtSpanner,
    queries: &[Query],
) -> (BatchResults, BatchResults) {
    let mut sharded_engine = Engine::new();
    sharded_engine.register_sharded("net", sharded.clone());
    let mut union_engine = Engine::new();
    union_engine.register("net", union.clone());
    let got = sharded_engine.run_batch(queries);
    let want = union_engine.run_batch_naive(queries);
    (got, want)
}

#[test]
fn gnp_sharded_engine_matches_union_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generate::connected_gnp(36, 0.18, generate::WeightKind::Unit, &mut rng);
    let (sharded, union) = differential_pair(&g, 3, 5);
    assert_eq!(sharded.shard_count(), 3);
    assert!(
        sharded.cut_edge_count() > 0,
        "partition should cut something"
    );
    let queries = vertex_battery(&["net", "net", "net", "ghost"], g.node_count(), 160, 21);
    let (got, want) = run_differential(&sharded, &union, &queries);
    assert_differential(&g, &union, &queries, &got, &want);
    // The battery must actually exercise unknown-artifact routing.
    let ghosts = queries.iter().filter(|q| q.artifact == "ghost").count();
    assert!(ghosts > 0, "battery should include unknown artifacts");
}

#[test]
fn grid_sharded_engine_matches_union_reference() {
    let g = generate::grid(6, 7);
    let (sharded, union) = differential_pair(&g, 4, 9);
    assert_eq!(sharded.shard_count(), 4);
    let queries = vertex_battery(&["net"], g.node_count(), 160, 33);
    let (got, want) = run_differential(&sharded, &union, &queries);
    assert_differential(&g, &union, &queries, &got, &want);
}

#[test]
fn worker_count_and_cache_capacity_do_not_change_sharded_answers() {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let g = generate::connected_gnp(30, 0.2, generate::WeightKind::Unit, &mut rng);
    let (sharded, _) = differential_pair(&g, 3, 2);
    let queries = vertex_battery(&["net"], g.node_count(), 120, 41);

    let mut engine = Engine::new();
    engine.register_sharded("net", sharded);
    let baseline = engine
        .clone()
        .with_workers(1)
        .with_source_cache_capacity(64)
        .run_batch(&queries);
    for workers in [2, 8] {
        for capacity in [0, 64] {
            let got = engine
                .clone()
                .with_workers(workers)
                .with_source_cache_capacity(capacity)
                .run_batch(&queries);
            assert_eq!(
                baseline, got,
                "answers changed at workers {workers}, capacity {capacity}"
            );
        }
    }
}

#[test]
fn edge_fault_sharded_engine_matches_union_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let g = generate::connected_gnp(30, 0.2, generate::WeightKind::Unit, &mut rng);
    let builder = FtSpannerBuilder::new("edge-fault").faults(1).stretch(3.0);
    let config = partition::PartitionConfig::new(2).with_seed(4);
    let sharded = ShardedArtifact::build(&g, &builder, &config).expect("sharded build succeeds");
    let union = sharded
        .to_union_artifact()
        .expect("union artifact assembles");

    // Edge faults drawn from the real edge list (cut and intra-shard edges
    // alike), plus fabricated non-edges and out-of-range endpoints.
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(_, e)| (e.u, e.v)).collect();
    let n = g.node_count();
    let mut battery_rng = ChaCha8Rng::seed_from_u64(51);
    let queries: Vec<Query> = (0..160)
        .map(|_| {
            let u = NodeId::new(battery_rng.gen_range(0..n));
            let v = NodeId::new(battery_rng.gen_range(0..n));
            let edge_faults: Vec<(NodeId, NodeId)> = (0..battery_rng.gen_range(0..3usize))
                .map(|_| match battery_rng.gen_range(0..8usize) {
                    0 => (u, u),                               // self-loop: never an edge
                    1 => (NodeId::new(n + 1), NodeId::new(0)), // out of range
                    _ => edges[battery_rng.gen_range(0..edges.len())],
                })
                .collect();
            let base = match battery_rng.gen_range(0..3usize) {
                0 => Query::distance("net", Vec::new(), u, v),
                1 => Query::path("net", Vec::new(), u, v),
                _ => Query::certificate("net", Vec::new(), u, v),
            };
            if battery_rng.gen_bool(0.1) {
                // Wrong fault kind: must be a FaultModelMismatch either way.
                Query {
                    faults: vec![NodeId::new(0)],
                    ..base
                }
            } else {
                base.with_edge_faults(edge_faults)
            }
        })
        .collect();

    let (got, want) = run_differential(&sharded, &union, &queries);
    assert_differential(&g, &union, &queries, &got, &want);
}
