//! Adversarial battery for the on-disk artifact store: `.ftshard` manifest
//! fuzzing (truncations, mutations, lying counts, spliced sections) and
//! partial-failure semantics of [`ArtifactStore::load_into`].
//!
//! Companion to `crates/core/tests/fuzz_ftspan.rs` (which attacks the
//! `.ftspan` codecs directly); this file attacks the store layer that
//! stitches manifests, shard pieces and flat artifacts into an engine.
//! Every forged input must fail as a typed [`CoreError::InvalidParameter`]
//! — never a panic, never an unbounded allocation driven by a claimed
//! count.

use fault_tolerant_spanners::core::{CoreError, Result};
use fault_tolerant_spanners::graph::partition::PartitionConfig;
use fault_tolerant_spanners::prelude::*;
use fault_tolerant_spanners::{ArtifactStore, FtSpannerBuilder, ShardedArtifact};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

fn temp_store(tag: &str) -> ArtifactStore {
    let dir = std::env::temp_dir().join(format!(
        "ftspan-fuzz-artifacts-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    ArtifactStore::open(&dir).unwrap()
}

fn flat_artifact(seed: u64) -> FtSpanner {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generate::connected_gnp(16, 0.3, generate::WeightKind::Unit, &mut rng);
    FtSpannerBuilder::new("conversion")
        .faults(1)
        .seed(seed)
        .build_artifact(&g)
        .unwrap()
}

fn sharded_artifact(seed: u64) -> ShardedArtifact {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generate::connected_gnp(
        36,
        0.2,
        generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
        &mut rng,
    );
    let builder = FtSpannerBuilder::new("conversion").faults(1).seed(seed);
    ShardedArtifact::build(&g, &builder, &PartitionConfig::new(3).with_seed(seed)).unwrap()
}

fn manifest_path(store: &ArtifactStore, name: &str) -> PathBuf {
    store.dir().join(format!("{name}.ftshard"))
}

fn assert_typed<T: std::fmt::Debug>(result: Result<T>, context: &str) {
    match result {
        Err(CoreError::InvalidParameter { .. }) => {}
        Ok(v) => panic!("{context}: forged input loaded as {v:?}"),
        Err(other) => panic!("{context}: unexpected error class {other:?}"),
    }
}

#[test]
fn every_truncation_of_a_shard_manifest_is_a_typed_error() {
    let store = temp_store("manifest-truncation");
    let original = sharded_artifact(0xB1);
    store.save_sharded("wide", &original).unwrap();
    let path = manifest_path(&store, "wide");
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let mut partial = lines[..keep].join("\n");
        partial.push('\n');
        std::fs::write(&path, &partial).unwrap();
        assert_typed(
            store.load_sharded("wide"),
            &format!("manifest truncated to {keep}/{} lines", lines.len()),
        );
    }
    // Byte-level truncations cut mid-line as well as at boundaries. The
    // sole cut that may still load is the one dropping only the final
    // newline (the line content is untouched) — and then it must reproduce
    // the original artifact exactly.
    for cut in 0..text.len() {
        std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
        match store.load_sharded("wide") {
            Err(CoreError::InvalidParameter { .. }) => {}
            Ok(loaded) => {
                assert_eq!(cut, text.len() - 1, "a mid-line truncation loaded");
                assert_eq!(loaded.node_count(), original.node_count());
                assert_eq!(loaded.cut_edge_count(), original.cut_edge_count());
            }
            Err(other) => panic!("cut {cut}: unexpected error class {other:?}"),
        }
    }
    // Restoring the manifest restores the artifact.
    std::fs::write(&path, &text).unwrap();
    assert!(store.load_sharded("wide").is_ok());
}

#[test]
fn mutated_shard_manifests_never_panic_and_errors_stay_typed() {
    let store = temp_store("manifest-mutation");
    let original = sharded_artifact(0xB2);
    store.save_sharded("wide", &original).unwrap();
    let path = manifest_path(&store, "wide");
    let pristine = std::fs::read(&path).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF460);
    for _ in 0..1500 {
        let mut forged = pristine.clone();
        for _ in 0..rng.gen_range(1..6usize) {
            let at = rng.gen_range(0..forged.len());
            forged[at] = rng.gen();
        }
        std::fs::write(&path, &forged).unwrap();
        match store.load_sharded("wide") {
            // A mutation that survives parsing (e.g. a cut-weight digit)
            // must still assemble a structurally consistent artifact.
            Ok(loaded) => assert_eq!(loaded.node_count(), original.node_count()),
            Err(CoreError::InvalidParameter { .. }) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
}

#[test]
fn lying_manifest_counts_are_refused_without_allocating() {
    let store = temp_store("manifest-lying-counts");
    store.save_sharded("wide", &sharded_artifact(0xB3)).unwrap();
    let path = manifest_path(&store, "wide");
    let pristine = std::fs::read_to_string(&path).unwrap();

    // The checked-in regression from the fuzz battery: a forged
    // `cuts 4294967295` used to size a ~100 GiB Vec up front. The claimed
    // count may now only pre-size up to a clamp; the parse must fail on the
    // first missing `cut` line instead.
    let forged = replace_field(&pristine, "cuts", "cuts 4294967295");
    std::fs::write(&path, &forged).unwrap();
    assert_typed(store.load_sharded("wide"), "cuts 4294967295");

    // Counts wider than the u32 id space are refused at parse time.
    for field in [
        "shards 99999999999",
        "nodes 99999999999",
        "cuts 99999999999",
    ] {
        let key = field.split(' ').next().unwrap();
        let forged = replace_field(&pristine, key, field);
        std::fs::write(&path, &forged).unwrap();
        assert_typed(store.load_sharded("wide"), field);
    }

    // A shard count pointing past the pieces on disk fails on the missing
    // file, not by inventing shards.
    let forged = replace_field(&pristine, "shards", "shards 4000000");
    std::fs::write(&path, &forged).unwrap();
    assert_typed(store.load_sharded("wide"), "shards 4000000");

    // A node count disagreeing with the assignment is refused.
    let forged = replace_field(&pristine, "nodes", "nodes 7");
    std::fs::write(&path, &forged).unwrap();
    assert_typed(store.load_sharded("wide"), "nodes 7");
}

/// Replaces the manifest line starting with `key ` by `replacement`.
fn replace_field(manifest: &str, key: &str, replacement: &str) -> String {
    let mut out = String::new();
    for line in manifest.lines() {
        if line.starts_with(&format!("{key} ")) {
            out.push_str(replacement);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn spliced_manifests_are_rejected() {
    let store = temp_store("manifest-splice");
    store.save_sharded("wide", &sharded_artifact(0xB4)).unwrap();
    store
        .save_sharded("other", &sharded_artifact(0xB5))
        .unwrap();
    let wide = std::fs::read_to_string(manifest_path(&store, "wide")).unwrap();
    let other = std::fs::read_to_string(manifest_path(&store, "other")).unwrap();

    // Reordered sections: the field order is part of the format.
    let mut lines: Vec<&str> = wide.lines().collect();
    lines.swap(2, 3); // nodes <-> cuts
    let forged = lines.join("\n") + "\n";
    std::fs::write(manifest_path(&store, "wide"), &forged).unwrap();
    assert_typed(store.load_sharded("wide"), "reordered manifest sections");

    // An assignment line spliced in from a different artifact must fail the
    // cross-validation against the shard pieces (both artifacts here have
    // the same node count, so the length check alone cannot save us).
    let donor_assignment = other
        .lines()
        .find(|l| l.starts_with("assignment "))
        .unwrap();
    let spliced = replace_field(&wide, "assignment", donor_assignment);
    std::fs::write(manifest_path(&store, "wide"), &spliced).unwrap();
    match store.load_sharded("wide") {
        Err(CoreError::InvalidParameter { .. }) => {}
        Ok(loaded) => {
            // If the donor assignment happens to be structurally compatible
            // the load may succeed, but it must then be fully consistent.
            assert_eq!(loaded.shard_count(), 3);
        }
        Err(other) => panic!("unexpected error class: {other:?}"),
    }

    // Duplicated trailer / trailing bytes after `end`.
    let forged = format!("{wide}garbage after end\n");
    std::fs::write(manifest_path(&store, "wide"), &forged).unwrap();
    assert_typed(store.load_sharded("wide"), "trailing manifest bytes");
}

#[test]
fn forged_flat_headers_cannot_bomb_through_the_store() {
    // The minimized text-codec regression, pinned at the store layer: a
    // `.ftspan` file whose `graph` line claims 2^32 vertices used to
    // allocate the full adjacency array before reading any edge.
    let store = temp_store("flat-bomb");
    let forged = "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3\n\
                  graph 4294967295 4294967295\n";
    std::fs::write(store.dir().join("bomb.ftspan"), forged).unwrap();
    assert_typed(store.load("bomb"), "graph 4294967295 4294967295");
}

#[test]
fn load_into_keeps_artifacts_loaded_before_a_corrupt_file() {
    let store = temp_store("load-into-partial");
    store.save("alpha", &flat_artifact(1)).unwrap();
    store.save("beta", &flat_artifact(2)).unwrap();
    store.save("omega", &flat_artifact(3)).unwrap();
    // `names()` iterates sorted, so `middle` corrupts the listing between
    // `beta` and `omega`.
    std::fs::write(store.dir().join("middle.ftspan"), b"not an artifact").unwrap();

    let mut engine = Engine::new();
    assert_typed(store.load_into(&mut engine), "corrupt mid-listing file");
    // Everything loaded before the corrupt file stays registered...
    assert!(engine.artifact("alpha").is_some());
    assert!(engine.artifact("beta").is_some());
    // ...and nothing after it was reached.
    assert!(engine.artifact("omega").is_none());
    assert!(engine.artifact("middle").is_none());
}

#[test]
fn corrupt_shard_piece_does_not_strand_siblings_as_flat_registrations() {
    let store = temp_store("load-into-shard-piece");
    store.save("alpha", &flat_artifact(4)).unwrap();
    store.save_sharded("wide", &sharded_artifact(0xB6)).unwrap();
    std::fs::write(store.dir().join("wide.shard1.ftspan"), b"corrupt piece").unwrap();

    let mut engine = Engine::new();
    assert_typed(store.load_into(&mut engine), "corrupt shard piece");
    // The sharded artifact itself must not be registered...
    assert!(engine.sharded_artifact("wide").is_none());
    // ...and crucially its intact sibling pieces must not leak into the
    // engine as flat artifacts.
    for piece in ["wide.shard0", "wide.shard1", "wide.shard2"] {
        assert!(
            engine.artifact(piece).is_none(),
            "shard piece `{piece}` was stranded as a flat registration"
        );
    }
}

#[test]
fn corrupt_manifest_does_not_strand_valid_pieces_as_flat_registrations() {
    let store = temp_store("load-into-manifest");
    store.save_sharded("wide", &sharded_artifact(0xB7)).unwrap();
    std::fs::write(manifest_path(&store, "wide"), b"ftshard 1\nshards x\n").unwrap();

    let mut engine = Engine::new();
    assert_typed(store.load_into(&mut engine), "corrupt manifest");
    assert!(engine.sharded_artifact("wide").is_none());
    for piece in ["wide.shard0", "wide.shard1", "wide.shard2"] {
        assert!(
            engine.artifact(piece).is_none(),
            "shard piece `{piece}` was stranded as a flat registration"
        );
    }
}

#[test]
fn random_manifest_bytes_decode_to_typed_errors() {
    let store = temp_store("manifest-random");
    // A real shard family must exist so shard pieces are loadable when a
    // random manifest happens to parse its header.
    store.save_sharded("wide", &sharded_artifact(0xB8)).unwrap();
    let path = manifest_path(&store, "wide");
    let mut rng = ChaCha8Rng::seed_from_u64(0xF461);
    for _ in 0..1000 {
        let len = rng.gen_range(0..200usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        std::fs::write(&path, &bytes).unwrap();
        assert_typed(store.load_sharded("wide"), "random manifest bytes");
    }
}
