//! The standing adversarial battery: every registry algorithm, cross-checked
//! on the two adversarial graph families ([`GeneratorSpec::PlanarMesh`] and
//! [`GeneratorSpec::Hyperbolic`]) that stress exactly what G(n, p) and grids
//! do not — long geodesics with near-ties on the mesh, heavy-tailed degrees
//! with a dense core on the hyperbolic graphs.
//!
//! Four invariants are pinned, per family:
//!
//! 1. **Worker invariance** — every construction report is byte-identical at
//!    `threads` 1, 2 and 8, and every engine batch answer is identical at
//!    workers 1, 2 and 8.
//! 2. **Guarantee soundness** — every undirected spanner passes a seeded
//!    [`StretchOracle`](verify::StretchOracle) fault sweep at its declared
//!    `(k, r)`; every directed 2-spanner has zero
//!    [`two_spanner_violations`](verify::two_spanner_violations).
//! 3. **Serving differentials** — the parallel engine matches the naive
//!    sequential executor answer for answer; the sharded path matches the
//!    union artifact; the dynamic path (promotion and repair) matches a
//!    from-scratch rebuild; a builder artifact's recorded recipe reproduces
//!    the artifact bit for bit.
//! 4. **No unexplored corners** — a seeded (graph, fault-set, batch) fuzzer
//!    sweeps randomized inputs through the engine-vs-naive differential and
//!    shrinks any violation to a minimal reproducer before reporting it.

use fault_tolerant_spanners::core::CoreError;
use fault_tolerant_spanners::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A mid-size road-network-like mesh: positions jittered, 40% of cells
/// carrying a diagonal shortcut.
fn mesh_graph() -> Graph {
    GeneratorSpec::PlanarMesh {
        rows: 7,
        cols: 8,
        diagonal_p: 0.4,
        jitter: 0.25,
        seed: 2026,
    }
    .generate()
    .expect("mesh generates")
}

/// A connected hyperbolic instance: connectivity is seed-dependent, so the
/// first connected seed in a fixed window is used (deterministically) and
/// asserted.
fn hyperbolic_graph_with(nodes: usize, radius_factor: f64, base_seed: u64) -> Graph {
    let radius = 2.0 * (nodes as f64).ln() * radius_factor;
    for seed in base_seed..base_seed + 64 {
        let g = GeneratorSpec::Hyperbolic {
            nodes,
            alpha: 0.75,
            radius,
            seed,
        }
        .generate()
        .expect("hyperbolic generates");
        if g.is_connected() {
            assert!(g.is_connected());
            return g;
        }
    }
    panic!("no connected hyperbolic instance with {nodes} nodes in 64 seeds; retune alpha/radius")
}

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("planar-mesh", mesh_graph()),
        ("hyperbolic", hyperbolic_graph_with(48, 0.55, 300)),
    ]
}

/// Small instances of the same families for the directed (LP-heavy)
/// algorithms, oriented into digraphs.
fn directed_families() -> Vec<(&'static str, DiGraph)> {
    let mesh = GeneratorSpec::PlanarMesh {
        rows: 3,
        cols: 4,
        diagonal_p: 0.5,
        jitter: 0.2,
        seed: 2027,
    }
    .generate()
    .expect("small mesh generates");
    let hyper = hyperbolic_graph_with(9, 1.1, 500);
    vec![
        ("planar-mesh", DiGraph::from_graph(&mesh)),
        ("hyperbolic", DiGraph::from_graph(&hyper)),
    ]
}

/// Reports are compared with the wall-clock zeroed: `elapsed` is the one
/// field that legitimately varies between runs.
fn canonical(mut report: SpannerReport) -> SpannerReport {
    report.elapsed = Duration::ZERO;
    report
}

fn configured_builder(algorithm: &str, threads: usize) -> FtSpannerBuilder {
    let mut builder = FtSpannerBuilder::new(algorithm)
        .faults(1)
        .seed(2011)
        .threads(threads);
    // CLPR09 stays exhaustive (its sampled mode only covers the sampled
    // fault sets, which the oracle sweep would rightly flag); the
    // distributed 2-spanner is capped to keep the battery fast.
    if algorithm == "distributed-two-spanner" {
        builder = builder.repetitions(3);
    }
    builder
}

/// The same topology with every weight forced to 1 — for the distributed
/// conversion, whose 3-spanner black box clusters by hops.
fn unit_weight_copy(g: &Graph) -> Graph {
    let mut copy = Graph::new(g.node_count());
    for (_, e) in g.edges() {
        copy.add_edge(e.u, e.v, 1.0).expect("copying valid edges");
    }
    copy
}

/// Builds `algorithm` on the family instance appropriate to its graph
/// family, returning the canonicalized report.
fn family_report(algorithm: &str, g: &Graph, dg: &DiGraph, threads: usize) -> SpannerReport {
    let entry_family = registry()
        .get(algorithm)
        .expect("registry name")
        .graph_family();
    let builder = configured_builder(algorithm, threads);
    let report = match entry_family {
        GraphFamily::Undirected => builder.build(g),
        GraphFamily::Directed => builder.build_directed(dg),
    };
    canonical(report.expect("every registry algorithm builds on the adversarial families"))
}

#[test]
fn every_algorithm_is_worker_invariant_and_sound_on_both_families() {
    // Smaller instances of the same families: this test builds all 11
    // algorithms at three thread counts each (CLPR09 exhaustively
    // enumerates fault sets, the LP algorithms run cutting planes), and the
    // larger instances are exercised by the serving differentials below.
    let undirected = [
        (
            "planar-mesh",
            GeneratorSpec::PlanarMesh {
                rows: 5,
                cols: 6,
                diagonal_p: 0.4,
                jitter: 0.25,
                seed: 2026,
            }
            .generate()
            .expect("mesh generates"),
        ),
        ("hyperbolic", hyperbolic_graph_with(30, 0.6, 300)),
    ];
    let directed = directed_families();
    let mut covered = 0usize;
    for name in registry().names() {
        for ((family, weighted_g), (_, dg)) in undirected.iter().zip(&directed) {
            // The distributed conversion refuses weighted inputs (its
            // 3-spanner black box clusters by hops), so it runs on the
            // unit-weight copy of the same topology — and the weighted
            // refusal itself is pinned below.
            let unit_g;
            let g = if name == "distributed-conversion" {
                unit_g = unit_weight_copy(weighted_g);
                &unit_g
            } else {
                weighted_g
            };
            let reference = family_report(name, g, dg, THREAD_COUNTS[0]);
            for &threads in &THREAD_COUNTS[1..] {
                assert_eq!(
                    reference,
                    family_report(name, g, dg, threads),
                    "algorithm `{name}` on {family}: threads = {threads} changed the report"
                );
            }
            let mut rng = ChaCha8Rng::seed_from_u64(0xAD00);
            match &reference.edges {
                SpannerEdges::Undirected(edges) => {
                    let oracle = verify::StretchOracle::new(g, edges);
                    let sweep = match reference.fault_model {
                        FaultModel::Vertex => {
                            oracle.verify_sampled(reference.stretch, reference.faults, 12, &mut rng)
                        }
                        FaultModel::Edge => oracle.verify_edge_sampled(
                            reference.stretch,
                            reference.faults,
                            12,
                            &mut rng,
                        ),
                    };
                    assert!(
                        sweep.is_valid(),
                        "algorithm `{name}` on {family}: stretch guarantee violated \
                         (max stretch {} > {})",
                        sweep.worst_stretch,
                        reference.stretch,
                    );
                }
                SpannerEdges::Directed(arcs) => {
                    let violations = verify::two_spanner_violations(dg, arcs, reference.faults);
                    assert!(
                        violations.is_empty(),
                        "algorithm `{name}` on {family}: {} two-spanner violations",
                        violations.len()
                    );
                }
            }
        }
        covered += 1;
    }
    assert_eq!(
        covered, 11,
        "the registry gained or lost algorithms; extend this battery"
    );
}

#[test]
fn distributed_conversion_refuses_the_weighted_families_with_a_typed_error() {
    // Pinned defect (found by this battery on the hyperbolic family): the
    // distributed conversion used to report stretch 3 on weighted graphs
    // its hop-based black box cannot honor. It must now refuse.
    for (family, g) in families() {
        let err = FtSpannerBuilder::new("distributed-conversion")
            .faults(1)
            .seed(2011)
            .build(&g)
            .expect_err("weighted inputs must be refused");
        match err {
            CoreError::InvalidParameter { message } => assert!(
                message.contains("unit edge lengths"),
                "{family}: message: {message}"
            ),
            other => panic!("{family}: expected a typed refusal, got {other:?}"),
        }
    }
}

/// A mixed query battery over artifact `name`: all three query kinds,
/// rotating single-fault scopes, one oversized scope that must fail
/// identically everywhere.
fn battery(name: &str, n: usize, count: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for q in 0..count {
        let u = NodeId::new((q * 7 + 1) % n);
        let v = NodeId::new((q * 11 + 3) % n);
        let scope = if q % 3 == 0 {
            vec![NodeId::new((q * 5 + 2) % n)]
        } else {
            vec![]
        };
        queries.push(match q % 3 {
            0 => Query::certificate(name, scope, u, v),
            1 => Query::path(name, scope, u, v),
            _ => Query::distance(name, scope, u, v),
        });
    }
    queries.push(Query::distance(
        name,
        (0..n.min(6)).map(NodeId::new).collect(),
        NodeId::new(0),
        NodeId::new(1),
    ));
    queries
}

#[test]
fn engine_batches_match_the_naive_executor_on_both_families() {
    for (family, g) in families() {
        let artifact = FtSpannerBuilder::new("conversion")
            .faults(1)
            .seed(71)
            .build_artifact(&g)
            .expect("conversion builds");
        let edge_artifact = FtSpannerBuilder::new("conversion")
            .faults(1)
            .edge_faults()
            .seed(72)
            .build_artifact(&g)
            .expect("edge-fault conversion builds");
        let mut engine = Engine::new();
        engine.register("vertex", artifact);
        engine.register("edge", edge_artifact);

        let n = g.node_count();
        let mut queries = battery("vertex", n, 48);
        let (_, e) = g.edges().next().expect("family graphs have edges");
        queries.push(
            Query::distance("edge", vec![], NodeId::new(0), NodeId::new(n - 1))
                .with_edge_faults(vec![(e.u, e.v)]),
        );
        queries.push(Query::certificate(
            "missing",
            vec![],
            NodeId::new(0),
            NodeId::new(1),
        ));

        let naive = engine.run_batch_naive(&queries);
        assert_eq!(naive.len(), queries.len());
        for workers in THREAD_COUNTS {
            let parallel = engine.clone().with_workers(workers).run_batch(&queries);
            assert_eq!(
                parallel, naive,
                "{family}: {workers}-worker batch diverged from the naive executor"
            );
        }
    }
}

#[test]
fn sharded_serving_matches_the_union_artifact_on_both_families() {
    for (family, g) in families() {
        let builder = FtSpannerBuilder::new("conversion").faults(1).seed(81);
        let config = partition::PartitionConfig::new(3).with_seed(81);
        let sharded =
            ShardedArtifact::build(&g, &builder, &config).expect("sharded build succeeds");
        let union = sharded.to_union_artifact().expect("union assembles");

        let mut sharded_engine = Engine::new();
        sharded_engine.register_sharded("a", sharded);
        let mut union_engine = Engine::new();
        union_engine.register("a", union);

        // Distances and typed errors are bit-comparable across the two
        // serving paths (paths may tie-break differently, so the battery
        // here is distance-only).
        let n = g.node_count();
        let mut queries: Vec<Query> = (0..48usize)
            .map(|q| {
                let scope = if q % 3 == 0 {
                    vec![NodeId::new((q * 5 + 2) % n)]
                } else {
                    vec![]
                };
                Query::distance(
                    "a",
                    scope,
                    NodeId::new((q * 7 + 1) % n),
                    NodeId::new((q * 11 + 3) % n),
                )
            })
            .collect();
        queries.push(Query::distance(
            "a",
            (0..n.min(6)).map(NodeId::new).collect(),
            NodeId::new(0),
            NodeId::new(1),
        ));
        let reference = union_engine.run_batch_naive(&queries);
        let baseline = sharded_engine
            .clone()
            .with_workers(THREAD_COUNTS[0])
            .run_batch(&queries);
        // Across worker counts the sharded path is bit-identical to itself.
        for &workers in &THREAD_COUNTS[1..] {
            let got = sharded_engine
                .clone()
                .with_workers(workers)
                .run_batch(&queries);
            assert_eq!(
                got, baseline,
                "{family}: sharded serving changed its answers at {workers} workers"
            );
        }
        // Against the union artifact, distances agree up to float summation
        // order: the scatter-gather path assembles a shortest path from
        // per-shard segments and sums them in a different order than one
        // flat Dijkstra, so the last ULP may differ on irrational mesh
        // weights. Errors must be identical.
        assert_eq!(baseline.len(), reference.len());
        for (i, (s, r)) in baseline.iter().zip(&reference).enumerate() {
            match (s, r) {
                (Ok(QueryOutcome::Distance(a)), Ok(QueryOutcome::Distance(b))) => {
                    let tolerance = 1e-12 * a.abs().max(b.abs()).max(1.0);
                    assert!(
                        (a - b).abs() <= tolerance,
                        "{family}: query {i}: sharded distance {a} vs union distance {b}"
                    );
                }
                _ => assert_eq!(s, r, "{family}: query {i} diverged from the union artifact"),
            }
        }
    }
}

#[test]
fn dynamic_repair_matches_rebuild_on_both_families() {
    for (family, g) in families() {
        let request = SpannerRequest {
            repair: true,
            ..SpannerRequest::default()
        };
        let recipe = BuildRecipe::new("conversion", request, 91);
        let dynamic = DynamicArtifact::build(&g, recipe.clone()).expect("dynamic build succeeds");

        // Promotion is invisible: the dynamic registration answers exactly
        // like the flat artifact.
        let flat = dynamic.artifact().clone();
        let n = g.node_count();
        let queries = battery("a", n, 36);
        let mut flat_engine = Engine::new();
        flat_engine.register("a", flat);
        let mut dynamic_engine = Engine::new();
        dynamic_engine.register_dynamic("a", dynamic.clone());
        assert_eq!(
            dynamic_engine.run_batch(&queries),
            flat_engine.run_batch(&queries),
            "{family}: dynamic promotion changed pre-delta answers"
        );

        // A churn batch repaired in place equals a from-scratch rebuild on
        // the post-delta graph, bit for bit.
        let (_, first) = g.edges().next().expect("family graphs have edges");
        let (_, last) = g.edges().last().expect("family graphs have edges");
        let absent = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .find(|&(u, v)| {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                g.find_edge(u, v).is_none()
            })
            .expect("family graphs are not complete");
        let deltas = vec![
            EdgeDelta::Delete {
                u: first.u,
                v: first.v,
            },
            EdgeDelta::Reweight {
                u: last.u,
                v: last.v,
                weight: last.weight + 0.25,
            },
            EdgeDelta::Insert {
                u: NodeId::new(absent.0),
                v: NodeId::new(absent.1),
                weight: 1.5,
            },
        ];
        let (repaired, _) = dynamic
            .apply(&deltas, &RebuildPolicy::default())
            .expect("deltas apply");
        let mut log = DeltaLog::new();
        for d in &deltas {
            log.append(d.clone());
        }
        let post = log.replay(&g).expect("deltas replay");
        let fresh = DynamicArtifact::build(&post, recipe).expect("fresh build succeeds");
        assert_eq!(
            repaired.artifact(),
            fresh.artifact(),
            "{family}: repair diverged from rebuild"
        );
    }
}

#[test]
fn builder_artifacts_record_a_recipe_that_reproduces_them_on_both_families() {
    for (family, g) in families() {
        for algorithm in ["conversion", "corollary-2.2", "edge-fault"] {
            let artifact = FtSpannerBuilder::new(algorithm)
                .faults(1)
                .seed(99)
                .build_artifact(&g)
                .expect("builder artifact builds");
            let recipe =
                BuildRecipe::from_tagged_provenance(artifact.algorithm(), artifact.provenance())
                    .unwrap_or_else(|| {
                        panic!("{family}/{algorithm}: artifact records no parseable recipe tag")
                    });
            let rebuilt = DynamicArtifact::build(&g, recipe).expect("recipe rebuild succeeds");
            assert_eq!(
                rebuilt.artifact(),
                &artifact,
                "{family}/{algorithm}: the recorded recipe does not reproduce the artifact"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The (graph, fault-set, batch) input fuzzer and its shrinker.
// ---------------------------------------------------------------------------

/// A raw, shrinkable differential input: an edge list over `n` vertices and
/// a batch of raw queries against one conversion artifact.
#[derive(Clone, Debug)]
struct FuzzCase {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
    queries: Vec<RawQuery>,
}

#[derive(Clone, Debug)]
struct RawQuery {
    /// 0 = distance, 1 = path, 2 = certificate.
    kind: u8,
    u: usize,
    v: usize,
    scope: Vec<usize>,
}

impl FuzzCase {
    fn graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for &(u, v, w) in &self.edges {
            g.add_edge(NodeId::new(u), NodeId::new(v), w)
                .expect("fuzz cases only hold valid edges");
        }
        g
    }

    fn batch(&self) -> Vec<Query> {
        self.queries
            .iter()
            .map(|q| {
                let scope: Vec<NodeId> = q.scope.iter().map(|&f| NodeId::new(f)).collect();
                let (u, v) = (NodeId::new(q.u), NodeId::new(q.v));
                match q.kind {
                    0 => Query::distance("a", scope, u, v),
                    1 => Query::path("a", scope, u, v),
                    _ => Query::certificate("a", scope, u, v),
                }
            })
            .collect()
    }
}

/// The differential invariant under test: engine answers at several worker
/// counts must equal the naive executor's. Returns `true` when the case
/// VIOLATES the invariant.
fn violates_differential(case: &FuzzCase) -> bool {
    let g = case.graph();
    let artifact = match FtSpannerBuilder::new("conversion")
        .faults(1)
        .seed(7)
        .build_artifact(&g)
    {
        Ok(a) => a,
        // A build rejection is a typed outcome, not a differential split.
        Err(CoreError::InvalidParameter { .. }) => return false,
        Err(_) => return false,
    };
    let mut engine = Engine::new();
    engine.register("a", artifact);
    let queries = case.batch();
    let naive = engine.run_batch_naive(&queries);
    [2usize, 8]
        .iter()
        .any(|&workers| engine.clone().with_workers(workers).run_batch(&queries) != naive)
}

/// Greedy shrinker: repeatedly drops whole queries, then scope entries, then
/// edges, keeping any removal under which `fails` still holds, until a fixed
/// point. The result is a locally minimal reproducer — removing any single
/// remaining component makes the failure disappear.
fn shrink(mut case: FuzzCase, fails: &dyn Fn(&FuzzCase) -> bool) -> FuzzCase {
    debug_assert!(fails(&case), "shrink requires a failing case");
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < case.queries.len() {
            let mut candidate = case.clone();
            candidate.queries.remove(i);
            if fails(&candidate) {
                case = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        for q in 0..case.queries.len() {
            let mut f = 0;
            while f < case.queries[q].scope.len() {
                let mut candidate = case.clone();
                candidate.queries[q].scope.remove(f);
                if fails(&candidate) {
                    case = candidate;
                    changed = true;
                } else {
                    f += 1;
                }
            }
        }
        let mut e = 0;
        while e < case.edges.len() {
            let mut candidate = case.clone();
            candidate.edges.remove(e);
            if fails(&candidate) {
                case = candidate;
                changed = true;
            } else {
                e += 1;
            }
        }
        if !changed {
            return case;
        }
    }
}

/// Draws a random case: either a small random graph or a small instance of
/// one of the adversarial families, plus a random batch.
fn random_case(rng: &mut ChaCha8Rng) -> FuzzCase {
    let (n, edges) = match rng.gen_range(0..3u32) {
        0 => {
            let g = GeneratorSpec::PlanarMesh {
                rows: rng.gen_range(2..4usize),
                cols: rng.gen_range(2..5usize),
                diagonal_p: 0.5,
                jitter: 0.2,
                seed: rng.gen_range(0..1000u64),
            }
            .generate()
            .expect("mesh generates");
            graph_to_raw(&g)
        }
        1 => {
            let nodes = rng.gen_range(4..10usize);
            let g = GeneratorSpec::Hyperbolic {
                nodes,
                alpha: 0.75,
                radius: 2.0 * (nodes as f64).ln() * 0.55,
                seed: rng.gen_range(0..1000u64),
            }
            .generate()
            .expect("hyperbolic generates");
            graph_to_raw(&g)
        }
        _ => {
            let n = rng.gen_range(4..12usize);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_range(0.0..1.0) < 0.4 {
                        edges.push((u, v, rng.gen_range(0.5..2.5)));
                    }
                }
            }
            (n, edges)
        }
    };
    let queries = (0..rng.gen_range(1..8usize))
        .map(|_| {
            let scope_len = rng.gen_range(0..3usize);
            RawQuery {
                kind: rng.gen_range(0..3u32) as u8,
                u: rng.gen_range(0..n),
                v: rng.gen_range(0..n),
                scope: (0..scope_len).map(|_| rng.gen_range(0..n)).collect(),
            }
        })
        .collect();
    FuzzCase { n, edges, queries }
}

fn graph_to_raw(g: &Graph) -> (usize, Vec<(usize, usize, f64)>) {
    (
        g.node_count(),
        g.edges()
            .map(|(_, e)| (e.u.index(), e.v.index(), e.weight))
            .collect(),
    )
}

#[test]
fn seeded_input_fuzzer_finds_no_differential_violations() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF470);
    for round in 0..60 {
        let case = random_case(&mut rng);
        if violates_differential(&case) {
            let minimal = shrink(case, &violates_differential);
            panic!(
                "round {round}: engine/naive differential violation; minimal reproducer: \
                 {minimal:?}"
            );
        }
    }
}

#[test]
fn the_shrinker_reduces_an_injected_failure_to_a_minimal_reproducer() {
    // An injected defect predicate: "fails whenever any certificate query
    // carries a non-empty fault scope". The shrinker must strip everything
    // else: all edges, all other queries, all but one scope entry.
    let fails = |case: &FuzzCase| {
        case.queries
            .iter()
            .any(|q| q.kind == 2 && !q.scope.is_empty())
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0xF471);
    let mut shrunk = 0usize;
    for _ in 0..200 {
        let case = random_case(&mut rng);
        if !fails(&case) {
            continue;
        }
        let minimal = shrink(case, &fails);
        assert_eq!(minimal.queries.len(), 1, "extra queries survived");
        assert_eq!(minimal.queries[0].kind, 2, "the wrong query survived");
        assert_eq!(minimal.queries[0].scope.len(), 1, "extra scope survived");
        assert!(minimal.edges.is_empty(), "irrelevant edges survived");
        shrunk += 1;
    }
    assert!(
        shrunk >= 20,
        "only {shrunk} failing cases were drawn; reseed"
    );
}
