//! The determinism suite: every parallelized construction must be
//! byte-identical across worker counts.
//!
//! The workspace's parallel discipline (see `ftspan_core::par`) promises that
//! `threads` is a pure wall-clock knob: for a fixed seed, a construction's
//! `SpannerReport` — the selected edges, cost, per-iteration statistics and
//! every diagnostic — is the same at `threads = 1`, `2` and `8`. This suite
//! pins that promise for **every** registry algorithm (centralized and
//! distributed, undirected and directed, vertex- and edge-fault), plus the
//! repeated-run reproducibility of a single configuration.

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Reports are compared with the wall-clock zeroed: `elapsed` is the one
/// field that legitimately varies between runs.
fn canonical(mut report: SpannerReport) -> SpannerReport {
    report.elapsed = Duration::ZERO;
    report
}

fn build_with_threads(algorithm: &str, threads: usize) -> SpannerReport {
    let registry = registry();
    let entry = registry.get(algorithm).expect("registry name");
    let mut rng = ChaCha8Rng::seed_from_u64(97);
    let g = generate::connected_gnp(20, 0.35, generate::WeightKind::Unit, &mut rng);
    let dg = generate::directed_gnp(9, 0.5, generate::WeightKind::Unit, &mut rng);

    let mut builder = FtSpannerBuilder::new(algorithm)
        .faults(1)
        .seed(2011)
        .threads(threads);
    // Keep the exponential constructions and the distributed 2-spanner small.
    if algorithm == "clpr09" {
        builder = builder.samples(8);
    }
    if algorithm == "distributed-two-spanner" {
        builder = builder.repetitions(3);
    }
    let report = match entry.graph_family() {
        GraphFamily::Undirected => builder.build(&g),
        GraphFamily::Directed => builder.build_directed(&dg),
    };
    canonical(report.expect("every registry algorithm builds on its smoke input"))
}

#[test]
fn every_registry_algorithm_is_byte_identical_across_worker_counts() {
    for name in registry().names() {
        let reference = build_with_threads(name, 1);
        for threads in &THREAD_COUNTS[1..] {
            let got = build_with_threads(name, *threads);
            assert_eq!(
                reference, got,
                "algorithm `{name}`: threads = {threads} changed the report"
            );
        }
        assert!(
            reference.size() > 0 || reference.cost == 0.0,
            "algorithm `{name}` produced an implausible smoke report"
        );
    }
}

#[test]
fn edge_fault_model_is_byte_identical_across_worker_counts() {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let g = generate::connected_gnp(18, 0.4, generate::WeightKind::Unit, &mut rng);
    let build = |threads: usize| {
        canonical(
            FtSpannerBuilder::new("conversion")
                .faults(1)
                .edge_faults()
                .seed(5)
                .threads(threads)
                .build(&g)
                .unwrap(),
        )
    };
    let reference = build(1);
    assert_eq!(reference.fault_model, FaultModel::Edge);
    for threads in [2usize, 8] {
        assert_eq!(reference, build(threads), "threads = {threads}");
    }
}

#[test]
fn non_default_black_boxes_follow_the_same_discipline() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let g = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut rng);
    for black_box in [
        BlackBoxKind::BaswanaSen,
        BlackBoxKind::ThorupZwick,
        BlackBoxKind::Cluster,
    ] {
        let build = |threads: usize| {
            canonical(
                FtSpannerBuilder::new("conversion")
                    .faults(1)
                    .black_box(black_box)
                    .seed(13)
                    .threads(threads)
                    .build(&g)
                    .unwrap(),
            )
        };
        let reference = build(1);
        for threads in [2usize, 8] {
            assert_eq!(
                reference,
                build(threads),
                "black box {black_box}: threads = {threads} changed the report"
            );
        }
    }
}

#[test]
fn repeated_runs_with_one_seed_reproduce() {
    // Same configuration, same seed, different processes-worth of calls: the
    // construction is a pure function of its inputs (hash-order-free).
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let g = generate::connected_gnp(22, 0.3, generate::WeightKind::Unit, &mut rng);
    let builder = FtSpannerBuilder::new("conversion")
        .faults(2)
        .black_box(BlackBoxKind::BaswanaSen)
        .seed(77)
        .threads(4);
    let a = canonical(builder.build(&g).unwrap());
    let b = canonical(builder.build(&g).unwrap());
    assert_eq!(a, b);
}
