//! Property-based tests (proptest) on the workspace's core invariants:
//! random graphs, random parameters — the guarantees must always hold.

use fault_tolerant_spanners::graph::GraphError;
use fault_tolerant_spanners::prelude::*;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

/// A fixed serving fixture for the planner-transparency property: one
/// vertex-fault and one edge-fault artifact over the same graph (built once
/// — the property's randomness lives in the query batches).
fn serving_fixture() -> &'static (Engine, Graph) {
    static FIXTURE: OnceLock<(Engine, Graph)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(2026);
        let g = generate::connected_gnp(14, 0.3, generate::WeightKind::Unit, &mut rng);
        let vertex = FtSpannerBuilder::new("conversion")
            .faults(2)
            .build_artifact(&g)
            .unwrap();
        let edge = FtSpannerBuilder::new("edge-fault")
            .faults(1)
            .build_artifact(&g)
            .unwrap();
        let mut engine = Engine::new();
        engine.register("vertex", vertex);
        engine.register("edge", edge);
        (engine, g)
    })
}

/// Builds a random undirected unit-weight graph from a proptest-generated
/// edge selection over `n` vertices.
fn graph_from_bits(n: usize, bits: &[bool]) -> Graph {
    let mut g = Graph::new(n);
    let mut idx = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            if idx < bits.len() && bits[idx] {
                g.add_edge(NodeId::new(u), NodeId::new(v), 1.0).unwrap();
            }
            idx += 1;
        }
    }
    g
}

/// Builds a random directed unit-cost graph from a bit selection.
fn digraph_from_bits(n: usize, bits: &[bool]) -> DiGraph {
    let mut g = DiGraph::new(n);
    let mut idx = 0usize;
    for u in 0..n {
        for v in 0..n {
            if u != v {
                if idx < bits.len() && bits[idx] {
                    g.add_arc(NodeId::new(u), NodeId::new(v), 1.0).unwrap();
                }
                idx += 1;
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The greedy spanner is always a valid spanner and never larger than the
    /// input, on arbitrary graphs.
    #[test]
    fn greedy_spanner_is_always_valid(
        n in 4usize..14,
        bits in proptest::collection::vec(any::<bool>(), 0..100),
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let g = graph_from_bits(n, &bits);
        let stretch = (2 * k - 1) as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = GreedySpanner::new(stretch).build(&g, &mut rng);
        prop_assert!(s.len() <= g.edge_count());
        prop_assert!(verify::is_k_spanner(&g, &s, stretch));
    }

    /// Baswana-Sen with parameter k is always a (2k-1)-spanner.
    #[test]
    fn baswana_sen_is_always_valid(
        n in 4usize..14,
        bits in proptest::collection::vec(any::<bool>(), 0..100),
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let g = graph_from_bits(n, &bits);
        let alg = BaswanaSenSpanner::new(k);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = alg.build(&g, &mut rng);
        prop_assert!(verify::is_k_spanner(&g, &s, alg.stretch()));
    }

    /// The conversion theorem output is r-fault tolerant on arbitrary small
    /// graphs (verified exhaustively), for r in {1, 2}.
    ///
    /// The theorem's guarantee is "with high probability in n"; for the tiny
    /// graphs proptest generates the asymptotic iteration count is not enough
    /// to make the failure probability negligible, so the iteration budget is
    /// pinned high enough that a failure would indicate a real bug rather
    /// than bad luck.
    #[test]
    fn conversion_is_always_fault_tolerant(
        n in 4usize..10,
        bits in proptest::collection::vec(any::<bool>(), 0..45),
        seed in any::<u64>(),
        r in 1usize..3,
    ) {
        let g = graph_from_bits(n, &bits);
        let result = FtSpannerBuilder::new("conversion")
            .faults(r)
            .iterations(800)
            .seed(seed)
            .build(&g)
            .unwrap();
        prop_assert!(verify::is_fault_tolerant_k_spanner(&g, result.edge_set().unwrap(), 3.0, r));
    }

    /// Lemma 3.1: the characterization-based check and the definitional
    /// (fault-enumeration) check agree on arbitrary digraphs and arc subsets.
    #[test]
    fn lemma_3_1_equivalence(
        n in 2usize..7,
        bits in proptest::collection::vec(any::<bool>(), 0..42),
        subset in proptest::collection::vec(any::<bool>(), 0..42),
        r in 0usize..3,
    ) {
        let g = digraph_from_bits(n, &bits);
        let mut arcs = g.empty_arc_set();
        for (i, (id, _)) in g.arcs().enumerate() {
            if subset.get(i).copied().unwrap_or(false) {
                arcs.insert(id);
            }
        }
        prop_assert_eq!(
            verify::is_ft_two_spanner(&g, &arcs, r),
            verify::is_ft_two_spanner_by_definition(&g, &arcs, r)
        );
    }

    /// The Theorem 3.3 pipeline always returns a valid fault-tolerant
    /// 2-spanner whose cost is between the LP bound and the full cost.
    #[test]
    fn two_spanner_approximation_is_always_valid(
        n in 3usize..8,
        bits in proptest::collection::vec(any::<bool>(), 0..56),
        seed in any::<u64>(),
        r in 0usize..3,
    ) {
        let g = digraph_from_bits(n, &bits);
        if g.arc_count() == 0 {
            return Ok(());
        }
        let result = FtSpannerBuilder::new("two-spanner-lp")
            .faults(r)
            .seed(seed)
            .build_directed(&g)
            .unwrap();
        prop_assert!(verify::is_ft_two_spanner(&g, result.arc_set().unwrap(), r));
        prop_assert!(result.lp_objective.unwrap() <= result.cost + 1e-6);
        prop_assert!(result.cost <= g.total_cost() + 1e-9);
    }

    /// Fault sets never report out-of-range vertices and masks round-trip.
    #[test]
    fn fault_set_mask_roundtrip(
        n in 1usize..40,
        indices in proptest::collection::vec(0usize..40, 0..10),
    ) {
        let f = faults::FaultSet::from_indices(indices.clone());
        let mask = f.to_dead_mask(n);
        for (v, &dead) in mask.iter().enumerate() {
            prop_assert_eq!(dead, f.contains(NodeId::new(v)));
        }
        prop_assert!(f.len() <= indices.len());
    }

    /// Removing vertices never increases the edge count and never changes
    /// vertex identifiers.
    #[test]
    fn remove_vertices_is_monotone(
        n in 2usize..12,
        bits in proptest::collection::vec(any::<bool>(), 0..66),
        kill in proptest::collection::vec(0usize..12, 0..4),
    ) {
        let g = graph_from_bits(n, &bits);
        let faults: Vec<NodeId> = kill.iter().filter(|&&v| v < n).map(|&v| NodeId::new(v)).collect();
        let h = g.remove_vertices(&faults);
        prop_assert_eq!(h.node_count(), g.node_count());
        prop_assert!(h.edge_count() <= g.edge_count());
        for &f in &faults {
            prop_assert_eq!(h.degree(f), 0);
        }
    }

    /// The Thorup-Zwick construction is always a (2k-1)-spanner.
    #[test]
    fn thorup_zwick_is_always_valid(
        n in 4usize..14,
        bits in proptest::collection::vec(any::<bool>(), 0..100),
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let g = graph_from_bits(n, &bits);
        let alg = ThorupZwickSpanner::new(k);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = alg.build(&g, &mut rng);
        prop_assert!(s.len() <= g.edge_count());
        prop_assert!(verify::is_k_spanner(&g, &s, alg.stretch()));
    }

    /// The greedy cover heuristic always satisfies the Lemma 3.1
    /// characterization, on arbitrary digraphs and fault budgets.
    #[test]
    fn greedy_cover_is_always_valid(
        n in 2usize..8,
        bits in proptest::collection::vec(any::<bool>(), 0..56),
        r in 0usize..4,
    ) {
        let g = digraph_from_bits(n, &bits);
        let result = FtSpannerBuilder::new("two-spanner-greedy")
            .faults(r)
            .build_directed(&g)
            .unwrap();
        let arcs = result.arc_set().unwrap();
        prop_assert!(verify::is_ft_two_spanner(&g, arcs, r));
        prop_assert!(verify::is_ft_two_spanner_by_definition(&g, arcs, r));
        prop_assert!(result.cost <= g.total_cost() + 1e-9);
        prop_assert!(result.cost >= directed_cost_lower_bound(&g, r) - 1e-9);
    }

    /// The edge-fault conversion output survives every single edge failure
    /// (verified exhaustively) on arbitrary small graphs.
    #[test]
    fn edge_fault_conversion_is_always_tolerant(
        n in 4usize..10,
        bits in proptest::collection::vec(any::<bool>(), 0..45),
        seed in any::<u64>(),
    ) {
        let g = graph_from_bits(n, &bits);
        let result = FtSpannerBuilder::new("edge-fault")
            .faults(1)
            .iterations(400)
            .seed(seed)
            .build(&g)
            .unwrap();
        prop_assert!(
            verify::verify_edge_fault_tolerance_exhaustive(&g, result.edge_set().unwrap(), 3.0, 1)
                .is_valid()
        );
    }

    /// The degree lower bound never exceeds the size of any valid
    /// fault-tolerant spanner (here: the full edge set) and is monotone in r.
    #[test]
    fn degree_lower_bound_is_consistent(
        n in 2usize..12,
        bits in proptest::collection::vec(any::<bool>(), 0..66),
        r in 0usize..5,
    ) {
        let g = graph_from_bits(n, &bits);
        let bound = vertex_fault_size_lower_bound(&g, r);
        prop_assert!(bound <= g.edge_count());
        prop_assert!(vertex_fault_size_lower_bound(&g, r + 1) >= bound);
    }

    /// Connectivity helpers are mutually consistent: the component count from
    /// the union-find matches the BFS labelling, a graph has vertex
    /// connectivity 0 iff it is disconnected (or trivial), and removing an
    /// articulation point disconnects its component.
    #[test]
    fn connectivity_helpers_are_consistent(
        n in 2usize..12,
        bits in proptest::collection::vec(any::<bool>(), 0..66),
    ) {
        let g = graph_from_bits(n, &bits);
        let cc = components::connected_components(&g);
        let mut uf = components::UnionFind::new(g.node_count());
        for (_, e) in g.edges() {
            uf.union(e.u.index(), e.v.index());
        }
        prop_assert_eq!(cc.count(), uf.set_count());
        prop_assert_eq!(components::vertex_connectivity(&g) == 0, !g.is_connected() || n <= 1);
        for cut in components::articulation_points(&g) {
            let before = cc.count();
            let after = components::connected_components(&g.remove_vertices(&[cut])).count();
            // Removing the cut vertex isolates it (one new singleton) and
            // splits its component into at least two parts.
            prop_assert!(after >= before + 2, "removing {cut:?} did not disconnect");
        }
    }

    /// The stretch-distribution statistics agree with the verification oracle
    /// on the maximum, and the MST is never heavier than any spanning
    /// connected subgraph.
    #[test]
    fn stats_and_tree_agree_with_oracles(
        n in 2usize..10,
        bits in proptest::collection::vec(any::<bool>(), 0..45),
        subset in proptest::collection::vec(any::<bool>(), 0..45),
    ) {
        let g = graph_from_bits(n, &bits);
        let mut spanner = g.empty_edge_set();
        for (i, (id, _)) in g.edges().enumerate() {
            if subset.get(i).copied().unwrap_or(true) {
                spanner.insert(id);
            }
        }
        let s = stats::stretch_stats(&g, &spanner).unwrap();
        let oracle = verify::max_stretch(&g, &spanner);
        prop_assert!(s.max == oracle || (s.max - oracle).abs() < 1e-9);
        // MST weight is a lower bound on the weight of the full edge set of a
        // connected graph with unit weights (n - 1 vs m).
        let mst = tree::minimum_spanning_forest(&g);
        prop_assert!(g.edge_set_weight(&mst).unwrap() <= g.total_weight() + 1e-9);
        let cc = components::connected_components(&g);
        prop_assert_eq!(mst.len(), g.node_count() - cc.count());
    }

    /// The distributed Lemma 3.1 check agrees with the centralized oracle on
    /// arbitrary digraphs and arc subsets.
    #[test]
    fn distributed_two_spanner_check_matches_centralized(
        n in 2usize..7,
        bits in proptest::collection::vec(any::<bool>(), 0..42),
        subset in proptest::collection::vec(any::<bool>(), 0..42),
        r in 0usize..3,
    ) {
        let g = digraph_from_bits(n, &bits);
        let mut arcs = g.empty_arc_set();
        for (i, (id, _)) in g.arcs().enumerate() {
            if subset.get(i).copied().unwrap_or(false) {
                arcs.insert(id);
            }
        }
        prop_assert_eq!(
            verify::is_ft_two_spanner(&g, &arcs, r),
            distributed_two_spanner_check(&g, &arcs, r).is_valid()
        );
    }

    /// For random graphs, random fault sets `|F| <= r` and every registry
    /// algorithm, `FaultSession::distance` equals Dijkstra on the
    /// fault-restricted spanner subgraph, and every `stretch_certificate`
    /// verifies against the declared `k`. Directed planners must be rejected
    /// by the artifact constructor instead.
    #[test]
    fn sessions_agree_with_dijkstra_for_every_registry_algorithm(
        n in 8usize..13,
        bits in proptest::collection::vec(any::<bool>(), 0..66),
        seed in any::<u64>(),
        r in 1usize..3,
        fault_picks in proptest::collection::vec(0usize..13, 0..2),
    ) {
        let g = graph_from_bits(n, &bits);
        let fault_set: Vec<NodeId> = {
            let mut picks: Vec<usize> =
                fault_picks.iter().map(|&v| v % n).take(r).collect();
            picks.sort_unstable();
            picks.dedup();
            picks.into_iter().map(NodeId::new).collect()
        };
        for algorithm in registry().iter() {
            if algorithm.graph_family() != GraphFamily::Undirected {
                continue;
            }
            let mut builder = FtSpannerBuilder::new(algorithm.name()).faults(r).seed(seed);
            // The oversampling theorems are "with high probability in n"; on
            // proptest's tiny adversarial graphs the asymptotic budget is not
            // enough, so pin it high (same practice as the conversion
            // property above). The other algorithms verify or enumerate.
            if matches!(
                algorithm.name(),
                "conversion" | "corollary-2.2" | "edge-fault" | "distributed-conversion"
            ) {
                builder = builder.iterations(800);
            }
            let artifact = builder.build_artifact(&g).unwrap();
            let session = if artifact.fault_model() == FaultModel::Edge {
                // Edge-fault artifacts take edge faults; the vertex picks
                // translate to each picked vertex's first incident edge.
                let edge_faults: Vec<(NodeId, NodeId)> = fault_set
                    .iter()
                    .filter_map(|&v| g.incident(v).next().map(|(w, _)| (v, w)))
                    .take(r)
                    .collect();
                let surviving: ftspan_graph::faults::EdgeFaultSet = edge_faults
                    .iter()
                    .filter_map(|&(u, v)| g.find_edge(u, v))
                    .collect();
                let session = artifact.under_edge_faults(&edge_faults).unwrap();
                let h = g.subgraph(&surviving.remove_from(artifact.spanner_edges())).unwrap();
                for u in g.nodes() {
                    let expected = shortest_path::dijkstra(&h, u).unwrap();
                    prop_assert_eq!(
                        session.distances_from(u).unwrap(),
                        expected,
                        "`{}` edge-fault session diverged", algorithm.name()
                    );
                }
                session
            } else {
                let session = artifact.under_faults(&fault_set).unwrap();
                let h = g
                    .subgraph(artifact.spanner_edges())
                    .unwrap()
                    .remove_vertices(&fault_set);
                for u in g.nodes() {
                    let expected = shortest_path::dijkstra(&h, u).unwrap();
                    let got = session.distances_from(u).unwrap();
                    for v in g.nodes() {
                        let dead = fault_set.contains(&u) || fault_set.contains(&v);
                        let want = if dead { f64::INFINITY } else { expected[v.index()] };
                        prop_assert_eq!(
                            got[v.index()], want,
                            "`{}` session diverged at ({}, {})", algorithm.name(), u, v
                        );
                    }
                }
                session
            };
            for u in 0..n {
                let cert = session
                    .stretch_certificate(NodeId::new(u), NodeId::new((u + 3) % n))
                    .unwrap();
                prop_assert!(
                    cert.holds(),
                    "`{}` certificate violated the declared k", algorithm.name()
                );
            }
        }
        // The directed planners cannot serve distance queries.
        let dg = digraph_from_bits(4, &[true; 12]);
        let plan = FtSpannerBuilder::new("two-spanner-greedy")
            .faults(1)
            .build_directed(&dg)
            .unwrap();
        prop_assert!(ftspan_core::FtSpanner::from_report(&Graph::new(4), &plan).is_err());
    }

    /// The engine's query planner is observationally transparent: for
    /// arbitrary batches — mixed artifacts (including unknown ones), mixed
    /// query kinds, arbitrary fault lists (duplicated, unsorted, out of
    /// range, oversized, or of the wrong kind) — grouped execution returns
    /// exactly what naive per-query sessions return, at any worker count and
    /// any LRU capacity (including 0 = cache off), and commutes with batch
    /// shuffling.
    #[test]
    fn planner_grouped_batches_match_naive_sessions(
        picks in proptest::collection::vec(
            (0usize..4, 0usize..3, 0usize..16, 0usize..16,
             proptest::collection::vec(0usize..16, 0..4), any::<bool>()),
            1..40,
        ),
        workers in 1usize..9,
        capacity in 0usize..5,
        perm_seed in any::<u64>(),
    ) {
        let (engine, g) = serving_fixture();
        let m = g.edge_count();
        let edge_of = |i: usize| {
            let (_, e) = g.edges().nth(i % m).unwrap();
            (e.u, e.v)
        };
        let queries: Vec<Query> = picks
            .iter()
            .map(|&(artifact, kind, u, v, ref fault_picks, mismatch)| {
                let artifact = ["vertex", "edge", "vertex", "ghost"][artifact];
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                let faults: Vec<NodeId> =
                    fault_picks.iter().map(|&f| NodeId::new(f)).collect();
                let mut query = match kind {
                    0 => Query::distance(artifact, faults, u, v),
                    1 => Query::path(artifact, faults, u, v),
                    _ => Query::certificate(artifact, faults, u, v),
                };
                // Route fault lists to the kind the artifact expects —
                // unless `mismatch` deliberately sends the wrong kind.
                if artifact == "edge" && !mismatch {
                    let edge_faults: Vec<(NodeId, NodeId)> =
                        fault_picks.iter().map(|&f| edge_of(f)).collect();
                    query = query.with_edge_faults(edge_faults);
                } else if artifact == "vertex" && mismatch {
                    query = query.with_edge_faults(vec![edge_of(0)]);
                }
                query
            })
            .collect();

        let naive = engine.run_batch_naive(&queries);
        let planned = engine
            .clone()
            .with_workers(workers)
            .with_source_cache_capacity(capacity)
            .run_batch(&queries);
        prop_assert_eq!(&naive, &planned,
            "planner diverged (workers {}, capacity {})", workers, capacity);

        // Shuffling the batch permutes the results and nothing else.
        let mut order: Vec<usize> = (0..queries.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(perm_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        let shuffled: Vec<Query> = order.iter().map(|&i| queries[i].clone()).collect();
        let planned_shuffled = engine
            .clone()
            .with_workers(workers)
            .with_source_cache_capacity(capacity)
            .run_batch(&shuffled);
        for (slot, &original) in order.iter().enumerate() {
            prop_assert_eq!(&planned_shuffled[slot], &naive[original],
                "shuffled slot {} diverged from original slot {}", slot, original);
        }
    }

    /// The partitioner emits a disjoint full cover with connected parts
    /// within the imbalance bound at any seed and part count — or the
    /// documented typed error when the graph cannot be covered — and the
    /// same configuration always reproduces the same assignment.
    #[test]
    fn partitioner_always_covers_within_bound(
        n in 2usize..32,
        bits in proptest::collection::vec(any::<bool>(), 0..300),
        parts in 1usize..6,
        seed in any::<u64>(),
    ) {
        let g = graph_from_bits(n, &bits);
        let parts = parts.min(n);
        let config = partition::PartitionConfig::new(parts).with_seed(seed);
        match partition::partition(&g, &config) {
            Ok(p) => {
                prop_assert_eq!(p.part_count(), parts);
                prop_assert_eq!(p.sizes().iter().sum::<usize>(), n);
                let mut seen = vec![false; n];
                for part in 0..parts {
                    prop_assert_eq!(p.members(part).len(), p.sizes()[part]);
                    prop_assert!(p.sizes()[part] <= p.capacity());
                    prop_assert!(p.sizes()[part] >= 1);
                    for v in p.members(part) {
                        prop_assert!(!seen[v.index()], "vertex {} claimed twice", v);
                        seen[v.index()] = true;
                        prop_assert_eq!(p.part_of(v), part);
                    }
                    // Each part induces a connected subgraph.
                    let members = p.members(part);
                    let mut reach = vec![false; n];
                    let mut stack = vec![members[0]];
                    reach[members[0].index()] = true;
                    while let Some(u) = stack.pop() {
                        for (w, _) in g.incident(u) {
                            if p.part_of(w) == part && !reach[w.index()] {
                                reach[w.index()] = true;
                                stack.push(w);
                            }
                        }
                    }
                    for &v in &members {
                        prop_assert!(reach[v.index()], "part {} is disconnected at {}", part, v);
                    }
                }
                prop_assert!(seen.iter().all(|&b| b), "partition is not a full cover");
                // Cut edges are exactly the edges crossing parts, and the
                // boundary is exactly their endpoint set.
                let cut = p.cut_edges(&g).unwrap();
                for (id, e) in g.edges() {
                    prop_assert_eq!(
                        cut.binary_search(&id).is_ok(),
                        p.part_of(e.u) != p.part_of(e.v)
                    );
                }
                let boundary = p.boundary_vertices(&g).unwrap();
                for v in g.nodes() {
                    let crosses = g.incident(v).any(|(w, _)| p.part_of(w) != p.part_of(v));
                    prop_assert_eq!(boundary.binary_search(&v).is_ok(), crosses);
                }
                // Deterministic: the same configuration reproduces itself.
                let again = partition::partition(&g, &config).unwrap();
                prop_assert_eq!(again.assignment(), p.assignment());
            }
            Err(e) => prop_assert!(
                matches!(e, GraphError::PartitionStalled { .. }),
                "unexpected error kind: {}", e
            ),
        }
    }

    /// Decoding `.ftspan` v2 images never panics: the pristine image round
    /// trips exactly, every truncation is a typed error, and arbitrary byte
    /// mutations either decode cleanly or fail with a typed error — through
    /// both the zero-copy view and the streaming reader.
    #[test]
    fn binary_v2_decoding_survives_mutation(
        n in 4usize..12,
        bits in proptest::collection::vec(any::<bool>(), 1..66),
        cut_pick in any::<usize>(),
        flips in proptest::collection::vec((any::<usize>(), any::<u64>()), 1..6),
    ) {
        let g = graph_from_bits(n, &bits);
        let artifact = FtSpanner::from_edge_set(
            &g,
            g.full_edge_set(),
            "adopted",
            "proptest",
            FaultModel::Vertex,
            1,
            3.0,
        )
        .unwrap();
        let mut image = Vec::new();
        artifact.to_binary_v2_writer(&mut image).unwrap();
        prop_assert_eq!(&FtSpanner::from_binary_slice(&image).unwrap(), &artifact);
        prop_assert_eq!(&FtSpannerView::parse(&image).unwrap().materialize().unwrap(), &artifact);

        // Every proper prefix is rejected, never a panic.
        let cut = cut_pick % image.len();
        prop_assert!(FtSpanner::from_binary_slice(&image[..cut]).is_err());

        // Arbitrary byte mutations must decode or fail with a typed error;
        // the view and the streaming reader must agree on which.
        let mut mutated = image.clone();
        for &(at, byte) in &flips {
            let i = at % mutated.len();
            mutated[i] ^= (byte & 0xFF) as u8;
        }
        let streamed = FtSpanner::from_binary_reader(mutated.as_slice());
        match FtSpanner::from_binary_slice(&mutated) {
            Ok(decoded) => {
                // Still well-formed (e.g. only weights or text changed).
                prop_assert_eq!(&streamed.unwrap(), &decoded);
            }
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
                prop_assert!(streamed.is_err() || mutated[4..8] != image[4..8]);
            }
        }
    }

    /// Graph I/O round-trips arbitrary generated graphs exactly (same vertex
    /// count, same edges with the same identifiers and weights).
    #[test]
    fn graph_io_roundtrip(
        n in 1usize..12,
        bits in proptest::collection::vec(any::<bool>(), 0..66),
    ) {
        let g = graph_from_bits(n, &bits);
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        let back = io::read_graph(buf.as_slice()).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for (id, e) in g.edges() {
            let other = back.edge(id);
            prop_assert_eq!((other.u, other.v), (e.u, e.v));
            prop_assert!((other.weight - e.weight).abs() < 1e-12);
        }
    }
}
