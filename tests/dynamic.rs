//! Acceptance battery for the dynamic-graph subsystem: after any seeded
//! delta stream, a repaired [`DynamicArtifact`] must be **bit-identical** to
//! a from-scratch build on the post-delta graph — same spanner, same
//! provenance, same answers to every (fault-set, query) batch — at every
//! engine worker count. If repair ever drifts from rebuild, serving would
//! silently answer from a spanner nobody can reproduce.

use fault_tolerant_spanners::prelude::*;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded, always-valid delta batch against `g`: deletes and reweights
/// draw from the current edge list, inserts draw fresh absent pairs, no
/// pair touched twice within a batch.
fn churn_batch(g: &Graph, rng: &mut ChaCha8Rng, size: usize) -> Vec<EdgeDelta> {
    let pairs: Vec<(NodeId, NodeId, f64)> = g.edges().map(|(_, e)| (e.u, e.v, e.weight)).collect();
    let n = g.node_count();
    let mut touched = std::collections::BTreeSet::new();
    let mut deltas = Vec::with_capacity(size);
    for _ in 0..size {
        match rng.gen_range(0..4u32) {
            0 if !pairs.is_empty() => {
                for _ in 0..8 {
                    let (u, v, _) = pairs[rng.gen_range(0..pairs.len())];
                    if touched.insert((u.index(), v.index())) {
                        deltas.push(EdgeDelta::Delete { u, v });
                        break;
                    }
                }
            }
            1 if !pairs.is_empty() => {
                for _ in 0..8 {
                    let (u, v, weight) = pairs[rng.gen_range(0..pairs.len())];
                    if touched.insert((u.index(), v.index())) {
                        deltas.push(EdgeDelta::Reweight {
                            u,
                            v,
                            weight: weight + 0.25,
                        });
                        break;
                    }
                }
            }
            _ => {
                for _ in 0..32 {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    if a == b {
                        continue;
                    }
                    let (u, v) = (NodeId::new(a.min(b)), NodeId::new(a.max(b)));
                    if g.find_edge(u, v).is_some() || !touched.insert((u.index(), v.index())) {
                        continue;
                    }
                    deltas.push(EdgeDelta::Insert {
                        u,
                        v,
                        weight: 1.0 + rng.gen::<f64>(),
                    });
                    break;
                }
            }
        }
    }
    deltas
}

fn recipe(algorithm: &str, threads: usize, seed: u64) -> BuildRecipe {
    let request = SpannerRequest {
        faults: 1,
        stretch: 3.0,
        iterations: Some(6),
        threads: Some(threads),
        ..SpannerRequest::default()
    };
    BuildRecipe::new(algorithm, request, seed)
}

/// A mixed (fault-set, query) battery over an `n`-vertex artifact: rotating
/// single-fault scopes, all three query kinds, plus the fault-free scope.
fn battery(name: &str, n: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for q in 0..80usize {
        let u = NodeId::new((q * 7 + 1) % n);
        let v = NodeId::new((q * 11 + 3) % n);
        let scope = if q % 3 == 0 {
            vec![NodeId::new((q * 5 + 2) % n)]
        } else {
            vec![]
        };
        queries.push(match q % 4 {
            0 => Query::certificate(name, scope, u, v),
            1 => Query::path(name, scope, u, v),
            _ => Query::distance(name, scope, u, v),
        });
    }
    queries
}

/// The core differential: stream seeded churn through `apply`, and after
/// every round check the repaired artifact against a from-scratch build on
/// the post-delta graph — structurally (PartialEq covers the edge set, the
/// provenance and the embedded source graph) and behaviorally (every query
/// batch, at workers 1, 2 and 8).
fn assert_repair_matches_rebuild(base: &Graph, algorithm: &str, policy: &RebuildPolicy, seed: u64) {
    for workers in [1usize, 2, 8] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let recipe = recipe(algorithm, workers, seed);
        let mut current =
            DynamicArtifact::build(base, recipe.clone()).expect("base build succeeds");
        for round in 0..4 {
            let deltas = churn_batch(current.artifact().source_graph(), &mut rng, 5);
            let (next, report) = current
                .apply(&deltas, policy)
                .expect("churn batches are valid against the current graph");
            assert_eq!(report.applied, deltas.len(), "every delta lands");
            current = next;

            let post = current.artifact().source_graph().clone();
            let fresh = DynamicArtifact::build(&post, recipe.clone()).expect("rebuild succeeds");
            assert_eq!(
                current.artifact(),
                fresh.artifact(),
                "{algorithm} round {round} workers {workers}: repaired artifact is not \
                 bit-identical to a from-scratch build on the post-delta graph"
            );

            let queries = battery("dyn", base.node_count());
            let mut repaired_engine = Engine::new().with_workers(workers);
            repaired_engine.register_dynamic("dyn", current.clone());
            let mut fresh_engine = Engine::new().with_workers(workers);
            fresh_engine.register_dynamic("dyn", fresh);
            assert_eq!(
                repaired_engine.run_batch(&queries),
                fresh_engine.run_batch(&queries),
                "{algorithm} round {round} workers {workers}: answers diverge"
            );
        }
    }
}

#[test]
fn gnp_repairs_match_from_scratch_builds_at_every_worker_count() {
    let mut rng = ChaCha8Rng::seed_from_u64(4021);
    let g = generate::connected_gnp(28, 0.18, generate::WeightKind::Unit, &mut rng);
    assert_repair_matches_rebuild(&g, "conversion", &RebuildPolicy::default(), 4021);
    assert_repair_matches_rebuild(&g, "corollary-2.2", &RebuildPolicy::default(), 4021);
}

#[test]
fn grid_repairs_match_from_scratch_builds_at_every_worker_count() {
    let g = generate::grid(5, 6);
    assert_repair_matches_rebuild(&g, "conversion", &RebuildPolicy::default(), 4022);
    assert_repair_matches_rebuild(&g, "corollary-2.2", &RebuildPolicy::default(), 4022);
}

#[test]
fn forced_patch_and_forced_rebuild_agree_with_each_other() {
    // The patch path and the rebuild path must land on the same artifact —
    // otherwise the policy knob would change answers, not just cost.
    let mut rng = ChaCha8Rng::seed_from_u64(4023);
    let g = generate::connected_gnp(24, 0.2, generate::WeightKind::Unit, &mut rng);
    let recipe = recipe("corollary-2.2", 2, 4023);
    let base = DynamicArtifact::build(&g, recipe).expect("base build succeeds");
    let deltas = churn_batch(&g, &mut rng, 3);

    let (patched, patch_report) = base
        .apply(&deltas, &RebuildPolicy::always_patch())
        .expect("patch applies");
    let (rebuilt, rebuild_report) = base
        .apply(&deltas, &RebuildPolicy::always_rebuild())
        .expect("rebuild applies");
    assert!(patch_report.action.is_patch(), "always_patch must patch");
    assert!(
        !rebuild_report.action.is_patch(),
        "always_rebuild must rebuild"
    );
    assert_eq!(patched.artifact(), rebuilt.artifact());
    assert_eq!(patched.version(), rebuilt.version());
    assert_eq!(patched.applied_seq(), rebuilt.applied_seq());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized streams, not just the seeded ones: any delta stream the
    /// churn generator can produce (seed chosen by proptest) must keep the
    /// repair-equals-rebuild invariant through multiple rounds.
    #[test]
    fn random_delta_streams_keep_repair_identical_to_rebuild(
        seed in any::<u64>(),
        rounds in 1usize..4,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(18, 0.25, generate::WeightKind::Unit, &mut rng);
        let recipe = recipe("corollary-2.2", 2, seed);
        let mut current =
            DynamicArtifact::build(&g, recipe.clone()).expect("base build succeeds");
        for _ in 0..rounds {
            let deltas = churn_batch(current.artifact().source_graph(), &mut rng, 4);
            let (next, _) = current
                .apply(&deltas, &RebuildPolicy::default())
                .expect("churn batches are valid");
            current = next;
        }
        let post = current.artifact().source_graph().clone();
        let fresh = DynamicArtifact::build(&post, recipe).expect("rebuild succeeds");
        prop_assert_eq!(current.artifact(), fresh.artifact());
    }
}
