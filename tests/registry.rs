//! The registry contract: every registered algorithm builds on a small
//! seeded G(n, p) instance of its declared graph family, and the resulting
//! report verifies under the oracle matching its declared fault model —
//! `is_fault_tolerant_k_spanner` for vertex faults on undirected inputs, the
//! edge-fault oracle for edge faults, and the Lemma 3.1 2-spanner oracle for
//! directed outputs.

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn verify_report(report: &SpannerReport, g: &Graph, dg: &DiGraph) {
    match &report.edges {
        SpannerEdges::Undirected(edges) => match report.fault_model {
            FaultModel::Vertex => {
                assert!(
                    verify::is_fault_tolerant_k_spanner(g, edges, report.stretch, report.faults),
                    "`{}` output is not a {}-fault-tolerant {}-spanner",
                    report.algorithm,
                    report.faults,
                    report.stretch
                );
            }
            FaultModel::Edge => {
                assert!(
                    verify::is_edge_fault_tolerant_k_spanner(
                        g,
                        edges,
                        report.stretch,
                        report.faults
                    ),
                    "`{}` output is not a {}-edge-fault-tolerant {}-spanner",
                    report.algorithm,
                    report.faults,
                    report.stretch
                );
            }
        },
        SpannerEdges::Directed(arcs) => {
            assert_eq!(report.stretch, 2.0, "directed outputs are 2-spanners");
            assert!(
                verify::is_ft_two_spanner(dg, arcs, report.faults),
                "`{}` output is not a {}-fault-tolerant 2-spanner",
                report.algorithm,
                report.faults
            );
        }
    }
}

#[test]
fn every_registered_algorithm_builds_and_verifies() {
    let mut rng = ChaCha8Rng::seed_from_u64(2011);
    let g = generate::connected_gnp(16, 0.4, generate::WeightKind::Unit, &mut rng);
    let dg = generate::directed_gnp(8, 0.5, generate::WeightKind::Unit, &mut rng);

    let registry = registry();
    assert_eq!(registry.len(), 11);

    for algorithm in registry.iter() {
        // Keep the distributed 2-spanner's repetition count small; every
        // other knob stays at its default.
        let request = SpannerRequest::new(1).with_repetitions(3);
        algorithm
            .supports(&request)
            .unwrap_or_else(|e| panic!("`{}` rejects the default request: {e}", algorithm.name()));

        let input = match algorithm.graph_family() {
            GraphFamily::Undirected => GraphInput::from(&g),
            GraphFamily::Directed => GraphInput::from(&dg),
        };
        let report = algorithm
            .build(input, &request, &mut rng)
            .unwrap_or_else(|e| panic!("`{}` failed to build: {e}", algorithm.name()));

        // Report invariants shared by every construction.
        assert_eq!(report.algorithm, algorithm.name());
        assert_eq!(report.faults, 1);
        assert_eq!(report.fault_model, algorithm.fault_model(&request));
        assert!(
            (report.stretch - algorithm.guaranteed_stretch(&request)).abs() < 1e-9,
            "`{}` reported stretch {} but declares {}",
            algorithm.name(),
            report.stretch,
            algorithm.guaranteed_stretch(&request)
        );
        assert!(!report.provenance.is_empty());
        assert_eq!(report.size(), report.edges.len());
        assert!(report.cost >= 0.0);

        // And the oracle matching the declared fault model must accept it.
        verify_report(&report, &g, &dg);
    }
}

#[test]
fn registry_rejects_inputs_of_the_wrong_family() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = generate::gnp(10, 0.4, generate::WeightKind::Unit, &mut rng);
    let dg = generate::directed_gnp(6, 0.5, generate::WeightKind::Unit, &mut rng);
    let request = SpannerRequest::new(1);

    for algorithm in registry().iter() {
        let wrong = match algorithm.graph_family() {
            GraphFamily::Undirected => GraphInput::from(&dg),
            GraphFamily::Directed => GraphInput::from(&g),
        };
        assert!(
            algorithm.build(wrong, &request, &mut rng).is_err(),
            "`{}` accepted an input of the wrong graph family",
            algorithm.name()
        );
    }
}

#[test]
fn edge_fault_requests_are_either_honored_or_cleanly_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let g = generate::connected_gnp(14, 0.4, generate::WeightKind::Unit, &mut rng);
    let dg = generate::directed_gnp(6, 0.5, generate::WeightKind::Unit, &mut rng);
    let request = SpannerRequest::new(1).with_fault_model(FaultModel::Edge);

    for algorithm in registry().iter() {
        let input = match algorithm.graph_family() {
            GraphFamily::Undirected => GraphInput::from(&g),
            GraphFamily::Directed => GraphInput::from(&dg),
        };
        match algorithm.supports(&request) {
            Ok(()) => {
                let report = algorithm.build(input, &request, &mut rng).unwrap();
                assert_eq!(
                    report.fault_model,
                    FaultModel::Edge,
                    "`{}` accepted an edge-fault request but built for vertex faults",
                    algorithm.name()
                );
                verify_report(&report, &g, &dg);
            }
            Err(e) => {
                // supports() and build() must agree.
                let build_err = algorithm.build(input, &request, &mut rng).unwrap_err();
                assert_eq!(e.to_string(), build_err.to_string());
            }
        }
    }
}
