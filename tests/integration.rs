//! Cross-crate integration tests: every spanner produced through the unified
//! `FtSpannerBuilder` API is re-verified with the independent oracles in
//! `ftspan_graph::verify`, and the centralized, distributed and baseline
//! constructions are checked for consistency against each other.

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn conversion_theorem_with_every_black_box() {
    // Theorem 2.1 is black-box: the output must be fault tolerant no matter
    // which spanner construction is plugged in — selected by name here.
    let mut r = rng(1);
    let g = generate::gnp(22, 0.45, generate::WeightKind::Unit, &mut r);
    for kind in BlackBoxKind::ALL {
        let report = FtSpannerBuilder::new("conversion")
            .faults(1)
            .stretch(5.0)
            .black_box(kind)
            .build_with_rng(GraphInput::from(&g), &mut r)
            .unwrap();
        assert!(
            verify::is_fault_tolerant_k_spanner(&g, report.edge_set().unwrap(), 5.0, 1),
            "conversion with the {kind} black box is not 1-fault-tolerant"
        );
        // The report's guarantee never exceeds what was asked for.
        assert!(report.stretch <= 5.0 + 1e-9);
    }
}

#[test]
fn fault_tolerant_spanner_beats_plain_spanner_under_faults() {
    // A plain greedy spanner of a graph with hubs breaks when a hub dies;
    // the converted spanner does not.
    let mut r = rng(2);
    let g = generate::gnp(24, 0.5, generate::WeightKind::Unit, &mut r);
    let ft = FtSpannerBuilder::new("corollary-2.2")
        .faults(1)
        .stretch(3.0)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    for v in 0..g.node_count() {
        let fault = faults::FaultSet::from_indices([v]);
        let s = verify::max_stretch_under_faults(&g, ft.edge_set().unwrap(), &fault);
        assert!(
            s <= 3.0 + 1e-9,
            "fault at {v} breaks the spanner (stretch {s})"
        );
    }
}

#[test]
fn weighted_graphs_are_supported_end_to_end() {
    let mut r = rng(3);
    let g = generate::connected_gnp(
        18,
        0.35,
        generate::WeightKind::Uniform { min: 0.5, max: 5.0 },
        &mut r,
    );
    let report = FtSpannerBuilder::new("corollary-2.2")
        .faults(2)
        .stretch(5.0)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    assert!(verify::is_fault_tolerant_k_spanner(
        &g,
        report.edge_set().unwrap(),
        5.0,
        2
    ));
    // The report's cost is the spanner weight and never exceeds the input's.
    let w = g.edge_set_weight(report.edge_set().unwrap()).unwrap();
    assert!((w - report.cost).abs() < 1e-9);
    assert!(w <= g.total_weight() + 1e-9);
}

#[test]
fn centralized_and_distributed_conversions_agree_on_guarantees() {
    let mut r = rng(4);
    let g = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut r);
    let central = FtSpannerBuilder::new("corollary-2.2")
        .faults(1)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    let distributed = FtSpannerBuilder::new("distributed-conversion")
        .faults(1)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    for report in [&central, &distributed] {
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            report.edge_set().unwrap(),
            3.0,
            1
        ));
    }
    // The distributed execution actually communicated; the centralized one
    // reports no LOCAL-model accounting at all.
    assert!(distributed.rounds.unwrap() > 0);
    assert!(distributed.messages.unwrap() > 0);
    assert_eq!(central.rounds, None);
}

#[test]
fn two_spanner_pipeline_matches_lemma_3_1_and_definition() {
    // The rounded LP solution must satisfy both the characterization
    // (Lemma 3.1) and the definitional fault-by-fault check.
    let mut r = rng(5);
    let g = generate::directed_gnp(9, 0.5, generate::WeightKind::Unit, &mut r);
    for faults in [0usize, 1, 2] {
        let report = FtSpannerBuilder::new("two-spanner-lp")
            .faults(faults)
            .build_with_rng(GraphInput::from(&g), &mut r)
            .unwrap();
        let arcs = report.arc_set().unwrap();
        assert!(verify::is_ft_two_spanner(&g, arcs, faults));
        assert!(verify::is_ft_two_spanner_by_definition(&g, arcs, faults));
    }
}

#[test]
fn knapsack_cover_lp_dominates_weak_lp() {
    // LP (4) has more constraints than LP (3), so its optimum can only be
    // larger (a tighter lower bound on OPT).
    use fault_tolerant_spanners::core::two_spanner::{solve_relaxation, RelaxationConfig};
    let mut r = rng(6);
    for _ in 0..3 {
        let g = generate::directed_gnp(10, 0.4, generate::WeightKind::Unit, &mut r);
        for faults in [1usize, 2] {
            let weak =
                solve_relaxation(&g, &RelaxationConfig::new(faults).without_knapsack_cover())
                    .unwrap();
            let strong = solve_relaxation(&g, &RelaxationConfig::new(faults)).unwrap();
            assert!(
                strong.objective >= weak.objective - 1e-6,
                "knapsack-cover LP ({}) below the weak LP ({})",
                strong.objective,
                weak.objective
            );
        }
    }
}

#[test]
fn approximation_cost_is_sandwiched_between_lp_and_buying_everything() {
    let mut r = rng(7);
    let g = generate::directed_gnp(
        11,
        0.5,
        generate::WeightKind::Uniform { min: 1.0, max: 6.0 },
        &mut r,
    );
    let report = FtSpannerBuilder::new("two-spanner-lp")
        .faults(1)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    assert!(report.lp_objective.unwrap() <= report.cost + 1e-6);
    assert!(report.cost <= g.total_cost() + 1e-9);
    assert!(report.ratio_vs_lp().unwrap() >= 1.0 - 1e-9);
}

#[test]
fn dk10_and_new_algorithm_are_both_valid_but_new_is_cheaper_on_average() {
    // Averaged over several instances the Theorem 3.3 algorithm should not be
    // more expensive than the DK10 baseline (its inflation is a factor r+1
    // smaller); individual instances may tie because of the repair step.
    let mut r = rng(8);
    let faults = 2;
    let mut ours_total = 0.0;
    let mut dk10_total = 0.0;
    for _ in 0..5 {
        let g = generate::directed_gnp(10, 0.5, generate::WeightKind::Unit, &mut r);
        let ours = FtSpannerBuilder::new("two-spanner-lp")
            .faults(faults)
            .build_with_rng(GraphInput::from(&g), &mut r)
            .unwrap();
        let base = FtSpannerBuilder::new("dk10")
            .faults(faults)
            .build_with_rng(GraphInput::from(&g), &mut r)
            .unwrap();
        assert!(verify::is_ft_two_spanner(
            &g,
            ours.arc_set().unwrap(),
            faults
        ));
        assert!(verify::is_ft_two_spanner(
            &g,
            base.arc_set().unwrap(),
            faults
        ));
        // Both roundings are inflated, but DK10 pays the extra factor r + 1.
        assert!(base.alpha.unwrap() > ours.alpha.unwrap());
        ours_total += ours.cost;
        dk10_total += base.cost;
    }
    assert!(
        ours_total <= dk10_total + 1e-9,
        "new algorithm ({ours_total}) more expensive than DK10 ({dk10_total}) on average"
    );
}

#[test]
fn distributed_two_spanner_is_valid_and_counts_rounds() {
    let mut r = rng(9);
    let g = generate::directed_gnp(10, 0.45, generate::WeightKind::Unit, &mut r);
    let report = FtSpannerBuilder::new("distributed-two-spanner")
        .faults(1)
        .repetitions(3)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    assert!(verify::is_ft_two_spanner(&g, report.arc_set().unwrap(), 1));
    assert_eq!(report.iterations, 3);
    assert!(report.rounds.unwrap() > 0);
}

#[test]
fn clpr_baseline_and_conversion_are_both_valid_on_the_same_graph() {
    let mut r = rng(10);
    let g = generate::gnp(14, 0.5, generate::WeightKind::Unit, &mut r);
    let ours = FtSpannerBuilder::new("corollary-2.2")
        .faults(1)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    let clpr = FtSpannerBuilder::new("clpr09")
        .faults(1)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    for report in [&ours, &clpr] {
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            report.edge_set().unwrap(),
            3.0,
            1
        ));
    }
    // The baseline does one run per fault set; ours does Θ(r³ log n) runs.
    assert_eq!(clpr.iterations, 1 + g.node_count());
}

#[test]
fn gap_gadget_end_to_end() {
    // On the Section 3.2 gadget every algorithm must buy the expensive arc.
    let mut r = rng(11);
    let g = generate::gap_gadget(3, 50.0).unwrap();
    let expensive_arc = fault_tolerant_spanners::graph::ArcId::new(0);

    for (name, extra_reps) in [
        ("two-spanner-lp", None),
        ("dk10", None),
        ("distributed-two-spanner", Some(3)),
    ] {
        let mut builder = FtSpannerBuilder::new(name).faults(3);
        if let Some(t) = extra_reps {
            builder = builder.repetitions(t);
        }
        let report = builder
            .build_with_rng(GraphInput::from(&g), &mut r)
            .unwrap();
        assert!(
            report.arc_set().unwrap().contains(expensive_arc),
            "`{name}` did not buy the forced expensive arc"
        );
    }
}

#[test]
fn thorup_zwick_works_as_a_conversion_black_box() {
    // The conversion theorem is black-box, so the Thorup-Zwick construction
    // (the ingredient of the CLPR09 baseline) must slot in unchanged.
    let mut r = rng(13);
    let g = generate::gnp(20, 0.45, generate::WeightKind::Unit, &mut r);
    let report = FtSpannerBuilder::new("conversion")
        .faults(1)
        .black_box(BlackBoxKind::ThorupZwick)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    assert!(verify::is_fault_tolerant_k_spanner(
        &g,
        report.edge_set().unwrap(),
        3.0,
        1
    ));
    assert!(report.size() >= vertex_fault_size_lower_bound(&g, 1));
}

#[test]
fn edge_fault_conversion_end_to_end() {
    let mut r = rng(14);
    let g = generate::connected_gnp(16, 0.35, generate::WeightKind::Unit, &mut r);
    let report = FtSpannerBuilder::new("edge-fault")
        .faults(2)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    assert_eq!(report.fault_model, FaultModel::Edge);
    let edges = report.edge_set().unwrap();
    assert!(verify::verify_edge_fault_tolerance_exhaustive(&g, edges, 3.0, 2).is_valid());
    assert!(report.size() >= vertex_fault_size_lower_bound(&g, 2));
    assert!(report.size() <= g.edge_count());
    // Adversarial heavy-edge failures are covered by the exhaustive check but
    // exercise the dedicated helper too.
    let heavy = faults::heavy_edge_faults(&g, 2);
    assert!(verify::is_k_spanner_under_edge_faults(
        &g, edges, 3.0, &heavy
    ));
}

#[test]
fn adaptive_conversion_end_to_end() {
    let mut r = rng(15);
    let g = generate::connected_gnp(20, 0.35, generate::WeightKind::Unit, &mut r);
    let report = FtSpannerBuilder::new("adaptive")
        .faults(1)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    assert_eq!(report.verified, Some(true));
    assert!(report.iterations <= report.theorem_iterations.unwrap());
    assert!(report.budget_fraction() <= 1.0);
    assert!(verify::is_fault_tolerant_k_spanner(
        &g,
        report.edge_set().unwrap(),
        3.0,
        1
    ));
    assert!(report.size() >= vertex_fault_size_lower_bound(&g, 1));
}

#[test]
fn greedy_cover_and_lp_rounding_are_both_valid_and_above_the_lp_bound() {
    let mut r = rng(16);
    let g = generate::directed_gnp(
        10,
        0.5,
        generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
        &mut r,
    );
    for faults in [0usize, 1, 2] {
        let rounded = FtSpannerBuilder::new("two-spanner-lp")
            .faults(faults)
            .build_with_rng(GraphInput::from(&g), &mut r)
            .unwrap();
        let greedy = FtSpannerBuilder::new("two-spanner-greedy")
            .faults(faults)
            .build_with_rng(GraphInput::from(&g), &mut r)
            .unwrap();
        assert!(verify::is_ft_two_spanner(
            &g,
            rounded.arc_set().unwrap(),
            faults
        ));
        assert!(verify::is_ft_two_spanner(
            &g,
            greedy.arc_set().unwrap(),
            faults
        ));
        // The LP optimum and the degree bound are lower bounds on any valid
        // solution, including the greedy one.
        assert!(greedy.cost >= rounded.lp_objective.unwrap() - 1e-6);
        assert!(greedy.cost >= directed_cost_lower_bound(&g, faults) - 1e-9);
        assert!(rounded.cost >= directed_cost_lower_bound(&g, faults) - 1e-9);
    }
}

#[test]
fn distributed_verification_agrees_with_centralized_oracles() {
    let mut r = rng(17);
    // Directed 2-spanner check against the greedy construction's output.
    let dg = generate::complete_digraph(8);
    let greedy = FtSpannerBuilder::new("two-spanner-greedy")
        .faults(2)
        .build_with_rng(GraphInput::from(&dg), &mut r)
        .unwrap();
    let arcs = greedy.arc_set().unwrap();
    assert!(verify::is_ft_two_spanner(&dg, arcs, 2));
    assert!(distributed_two_spanner_check(&dg, arcs, 2).is_valid());
    assert!(!distributed_two_spanner_check(&dg, &dg.empty_arc_set(), 2).is_valid());

    // Undirected stretch check against the centralized verifier.
    let g = generate::connected_gnp(22, 0.3, generate::WeightKind::Unit, &mut r);
    let spanner = GreedySpanner::new(3.0).build(&g, &mut r);
    assert_eq!(
        verify::is_k_spanner(&g, &spanner, 3.0),
        distributed_stretch_check(&g, &spanner, 3).is_valid()
    );
}

#[test]
fn graph_io_roundtrip_preserves_spanner_validity() {
    let mut r = rng(18);
    let g = generate::connected_gnp(
        20,
        0.3,
        generate::WeightKind::Uniform { min: 0.5, max: 2.5 },
        &mut r,
    );
    let spanner = GreedySpanner::new(3.0).build(&g, &mut r);
    assert!(verify::is_k_spanner(&g, &spanner, 3.0));

    // Writing and re-reading keeps vertex and edge identifiers stable, so the
    // same EdgeSet still describes a valid spanner of the loaded graph.
    let mut buf = Vec::new();
    io::write_graph(&g, &mut buf).unwrap();
    let loaded = io::read_graph(buf.as_slice()).unwrap();
    assert_eq!(loaded.edge_count(), g.edge_count());
    assert!(verify::is_k_spanner(&loaded, &spanner, 3.0));
}

#[test]
fn statistics_agree_with_the_verification_oracles() {
    let mut r = rng(19);
    let g = generate::connected_gnp(18, 0.3, generate::WeightKind::Unit, &mut r);
    let spanner = GreedySpanner::new(3.0).build(&g, &mut r);
    let s = stats::stretch_stats(&g, &spanner).unwrap();
    assert!((s.max - verify::max_stretch(&g, &spanner)).abs() < 1e-9);
    assert!(s.mean <= s.max + 1e-9);
    // The spanner contains a spanning structure, so its lightness is at least 1.
    assert!(tree::lightness(&g, &spanner).unwrap() >= 1.0 - 1e-9);
    // Degree statistics are consistent with the graph.
    let d = stats::degree_stats(&g);
    assert_eq!(d.histogram.iter().sum::<usize>(), g.node_count());
    assert_eq!(d.max, g.max_degree());
}

#[test]
fn fault_tolerance_is_limited_by_vertex_connectivity() {
    // On a graph with an articulation point, removing it disconnects the
    // graph; the fault-tolerant spanner must still match the (now infinite)
    // distances of G \ F, which the verifier accounts for. This test pins the
    // interaction between the connectivity helpers and the verifier.
    let g = generate::barbell(4);
    assert_eq!(components::vertex_connectivity(&g), 1);
    let cut = components::articulation_points(&g);
    assert_eq!(cut.len(), 2);
    let mut r = rng(20);
    let ft = FtSpannerBuilder::new("corollary-2.2")
        .faults(1)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    assert!(verify::is_fault_tolerant_k_spanner(
        &g,
        ft.edge_set().unwrap(),
        3.0,
        1
    ));
    // Failing a bridge endpoint disconnects both G and the spanner; the
    // stretch over surviving edges stays bounded.
    let fault = faults::FaultSet::from_nodes(vec![cut[0]]);
    assert!(verify::max_stretch_under_faults(&g, ft.edge_set().unwrap(), &fault) <= 3.0 + 1e-9);
}

#[test]
fn bounded_degree_variant_is_consistent_with_general_variant() {
    let mut r = rng(12);
    let ug = generate::random_near_regular(18, 4, &mut r);
    let g = DiGraph::from_graph(&ug);
    let lll = FtSpannerBuilder::new("two-spanner-lll")
        .faults(1)
        .degree_bound(g.max_degree())
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    let general = FtSpannerBuilder::new("two-spanner-lp")
        .faults(1)
        .build_with_rng(GraphInput::from(&g), &mut r)
        .unwrap();
    assert!(verify::is_ft_two_spanner(&g, lll.arc_set().unwrap(), 1));
    assert!(verify::is_ft_two_spanner(&g, general.arc_set().unwrap(), 1));
    // Both are measured against the same LP value (same relaxation).
    assert!((lll.lp_objective.unwrap() - general.lp_objective.unwrap()).abs() < 1e-4);
    assert!(lll.resamples.is_some());
}

/// The registry algorithms whose reports can serve as distance-query
/// artifacts (undirected constructions; the directed 2-spanner planners are
/// rejected by `FtSpanner::from_report`, covered separately below).
const ARTIFACT_ALGORITHMS: [&str; 6] = [
    "conversion",
    "corollary-2.2",
    "adaptive",
    "edge-fault",
    "clpr09",
    "distributed-conversion",
];

#[test]
fn session_distance_matches_independent_oracle_on_randomized_instances() {
    // Acceptance bar: >= 100 randomized (graph, algorithm, fault-set)
    // instances where FaultSession::distance equals an independent Dijkstra
    // on the materialized fault-restricted spanner subgraph — the session
    // machinery (CSR packing + masked traversal) against the oldest, dumbest
    // oracle in the workspace.
    let mut r = rng(100);
    let mut instances = 0usize;
    for graph_seed in 0..3u64 {
        let mut graph_rng = rng(1000 + graph_seed);
        let g = generate::connected_gnp(14, 0.3, generate::WeightKind::Unit, &mut graph_rng);
        for name in ARTIFACT_ALGORITHMS {
            let faults = 1usize;
            let artifact = FtSpannerBuilder::new(name)
                .faults(faults)
                .build_artifact_with_rng(&g, &mut r)
                .unwrap_or_else(|e| panic!("`{name}` failed to build an artifact: {e}"));
            assert_eq!(artifact.algorithm(), name);
            for _ in 0..6 {
                instances += 1;
                if artifact.fault_model() == FaultModel::Edge {
                    let fault_set = faults::sample_edge_fault_set(g.edge_count(), faults, &mut r);
                    let pairs: Vec<(NodeId, NodeId)> = fault_set
                        .edges()
                        .iter()
                        .map(|&id| {
                            let e = g.edge(id);
                            (e.u, e.v)
                        })
                        .collect();
                    let session = artifact.under_edge_faults(&pairs).unwrap();
                    // Independent oracle: drop the failed edges from the
                    // spanner edge set and run plain Dijkstra.
                    let surviving = fault_set.remove_from(artifact.spanner_edges());
                    let h = g.subgraph(&surviving).unwrap();
                    for u in g.nodes() {
                        let expected = shortest_path::dijkstra(&h, u).unwrap();
                        let got = session.distances_from(u).unwrap();
                        assert_eq!(got, expected, "`{name}` edge-fault session diverged");
                    }
                } else {
                    let fault_set = faults::sample_fault_set(g.node_count(), faults, &mut r);
                    let session = artifact.under_faults(fault_set.nodes()).unwrap();
                    // Independent oracle: materialize H \ F and run plain
                    // Dijkstra on it.
                    let h = g
                        .subgraph(artifact.spanner_edges())
                        .unwrap()
                        .remove_vertices(fault_set.nodes());
                    for u in g.nodes() {
                        let expected = shortest_path::dijkstra(&h, u).unwrap();
                        let got = session.distances_from(u).unwrap();
                        for v in g.nodes() {
                            let want = if fault_set.contains(u) || fault_set.contains(v) {
                                f64::INFINITY
                            } else {
                                expected[v.index()]
                            };
                            assert_eq!(
                                got[v.index()],
                                want,
                                "`{name}` session diverged at ({u}, {v})"
                            );
                        }
                    }
                    // And every certificate verifies against the declared k.
                    for (u, v) in [(0usize, 7), (2, 13)] {
                        let cert = session
                            .stretch_certificate(NodeId::new(u), NodeId::new(v))
                            .unwrap();
                        assert!(cert.holds(), "`{name}` certificate violated");
                        assert_eq!(cert.bound, artifact.stretch());
                    }
                }
            }
        }
    }
    assert!(
        instances >= 100,
        "only {instances} randomized instances were checked"
    );
}

#[test]
fn directed_planners_cannot_become_artifacts() {
    let mut r = rng(101);
    let dg = generate::directed_gnp(8, 0.5, generate::WeightKind::Unit, &mut r);
    let report = FtSpannerBuilder::new("two-spanner-greedy")
        .faults(1)
        .build_directed(&dg)
        .unwrap();
    let err = FtSpanner::from_report(&Graph::new(8), &report).unwrap_err();
    assert!(err.to_string().contains("two-spanner-greedy"));
}

#[test]
fn engine_batches_are_byte_identical_across_runs() {
    // Acceptance bar: Engine batch results are byte-identical across
    // repeated runs with the same seed — including across worker counts and
    // across a serialization round trip of the artifacts.
    let mut r = rng(102);
    let g = generate::connected_gnp(20, 0.25, generate::WeightKind::Unit, &mut r);
    let primary = FtSpannerBuilder::new("conversion")
        .faults(2)
        .seed(7)
        .build_artifact(&g)
        .unwrap();
    let secondary = FtSpannerBuilder::new("corollary-2.2")
        .faults(1)
        .seed(7)
        .build_artifact(&g)
        .unwrap();

    // Round-trip the primary artifact through its text serialization.
    let mut buf = Vec::new();
    primary.to_writer(&mut buf).unwrap();
    let reloaded = FtSpanner::from_reader(buf.as_slice()).unwrap();
    assert_eq!(primary, reloaded);

    let make_engine = |a: FtSpanner, b: FtSpanner| {
        let mut e = Engine::new();
        e.register("primary", a).register("secondary", b);
        e
    };
    let engine = make_engine(primary, secondary.clone());
    let engine_reloaded = make_engine(reloaded, secondary);

    // A seeded batch mixing artifacts, fault scopes and query kinds.
    let mut batch_rng = rng(103);
    let n = g.node_count();
    let batch: Vec<Query> = (0..300)
        .map(|i| {
            let name = if i % 3 == 0 { "secondary" } else { "primary" };
            let budget = if name == "primary" { 2 } else { 1 };
            let f = faults::sample_fault_set(n, i % (budget + 1), &mut batch_rng);
            let u = NodeId::new(i % n);
            let v = NodeId::new((i * 7 + 3) % n);
            match i % 4 {
                0 => Query::distance(name, f.nodes().to_vec(), u, v),
                1 => Query::path(name, f.nodes().to_vec(), u, v),
                _ => Query::certificate(name, f.nodes().to_vec(), u, v),
            }
        })
        .collect();

    let reference = format!("{:?}", engine.clone().with_workers(1).run_batch(&batch));
    for workers in [2usize, 4] {
        let run = format!(
            "{:?}",
            engine.clone().with_workers(workers).run_batch(&batch)
        );
        assert_eq!(reference, run, "worker count {workers} changed the bytes");
    }
    // Same batch, same seed, reloaded artifacts: still byte-identical.
    let reloaded_run = format!("{:?}", engine_reloaded.run_batch(&batch));
    assert_eq!(reference, reloaded_run);
    // And re-running on the same engine is idempotent.
    let rerun = format!("{:?}", engine.run_batch(&batch));
    assert_eq!(reference, rerun);
}

#[test]
fn builder_requests_round_trip_through_the_trait_api() {
    // The builder is sugar over registry() + FtSpannerAlgorithm::build: the
    // two paths must produce identical spanners for identical seeds.
    let mut seed_a = rng(21);
    let mut seed_b = rng(21);
    let g = generate::gnp(16, 0.5, generate::WeightKind::Unit, &mut seed_a);
    let g2 = generate::gnp(16, 0.5, generate::WeightKind::Unit, &mut seed_b);

    let via_builder = FtSpannerBuilder::new("conversion")
        .faults(1)
        .scale(0.5)
        .build_with_rng(GraphInput::from(&g), &mut seed_a)
        .unwrap();
    let request = SpannerRequest::new(1).with_scale(0.5);
    let via_registry = registry()
        .get("conversion")
        .unwrap()
        .build(GraphInput::from(&g2), &request, &mut seed_b)
        .unwrap();
    assert_eq!(via_builder.edges, via_registry.edges);
    assert_eq!(via_builder.provenance, via_registry.provenance);
}

#[test]
fn binary_and_text_serializations_agree_for_every_registry_algorithm() {
    // Differential round-trip battery: for every artifact-capable registry
    // algorithm, `text -> binary -> text` and `binary -> text -> binary`
    // reproduce the serialized bytes exactly, the restored artifacts compare
    // equal (same edges, provenance, guarantee) and answer queries
    // identically.
    let mut r = rng(300);
    let weighted = generate::connected_gnp(
        14,
        0.35,
        generate::WeightKind::Uniform { min: 0.5, max: 3.0 },
        &mut r,
    );
    // The distributed conversion refuses non-unit weights (its 3-spanner
    // black box clusters by hops), so it round-trips on a unit-weight copy
    // of the same topology.
    let mut unit = Graph::new(weighted.node_count());
    for (_, e) in weighted.edges() {
        unit.add_edge(e.u, e.v, 1.0).unwrap();
    }
    let mut covered = 0usize;
    for algorithm in registry().iter() {
        if algorithm.graph_family() != GraphFamily::Undirected {
            continue;
        }
        covered += 1;
        let g = if algorithm.name() == "distributed-conversion" {
            &unit
        } else {
            &weighted
        };
        let artifact = FtSpannerBuilder::new(algorithm.name())
            .faults(1)
            .seed(11)
            .build_artifact(g)
            .unwrap();

        // text -> binary -> text reproduces the text bytes.
        let mut text1 = Vec::new();
        artifact.to_writer(&mut text1).unwrap();
        let from_text = FtSpanner::from_reader(text1.as_slice()).unwrap();
        let mut bin1 = Vec::new();
        from_text.to_binary_writer(&mut bin1).unwrap();
        let via_binary = FtSpanner::from_binary_reader(bin1.as_slice()).unwrap();
        let mut text2 = Vec::new();
        via_binary.to_writer(&mut text2).unwrap();
        assert_eq!(
            text1,
            text2,
            "`{}`: text -> binary -> text changed the bytes",
            algorithm.name()
        );

        // binary -> text -> binary reproduces the binary bytes.
        let mut bin_direct = Vec::new();
        artifact.to_binary_writer(&mut bin_direct).unwrap();
        let restored = FtSpanner::from_binary_reader(bin_direct.as_slice()).unwrap();
        let mut text3 = Vec::new();
        restored.to_writer(&mut text3).unwrap();
        let via_text = FtSpanner::from_reader(text3.as_slice()).unwrap();
        let mut bin2 = Vec::new();
        via_text.to_binary_writer(&mut bin2).unwrap();
        assert_eq!(
            bin_direct,
            bin2,
            "`{}`: binary -> text -> binary changed the bytes",
            algorithm.name()
        );

        // Every representation is the same artifact with the same answers.
        assert_eq!(artifact, restored, "`{}` binary", algorithm.name());
        assert_eq!(artifact, via_binary, "`{}` text+binary", algorithm.name());
        assert_eq!(artifact.algorithm(), algorithm.name());
        let a = artifact.session();
        let b = restored.session();
        for u in [0usize, 5, 13] {
            assert_eq!(
                a.distances_from(NodeId::new(u)).unwrap(),
                b.distances_from(NodeId::new(u)).unwrap(),
                "`{}`: restored artifact answers diverged",
                algorithm.name()
            );
        }
    }
    // Every undirected construction in the registry was exercised.
    assert!(covered >= 6, "only {covered} artifact-capable algorithms");
}

#[test]
fn unchecked_sessions_serve_beyond_the_declared_budget() {
    // `under_faults_unchecked` exists to study degradation past the declared
    // budget: it must keep answering (consistently with a materialized
    // oracle) where the checked session refuses.
    let mut r = rng(301);
    let g = generate::connected_gnp(18, 0.35, generate::WeightKind::Unit, &mut r);
    let artifact = FtSpannerBuilder::new("conversion")
        .faults(1)
        .seed(13)
        .build_artifact(&g)
        .unwrap();
    let faults = [NodeId::new(1), NodeId::new(4), NodeId::new(9)]; // budget is 1
    assert!(matches!(
        artifact.under_faults(&faults),
        Err(fault_tolerant_spanners::core::CoreError::TooManyFaults {
            given: 3,
            budget: 1
        })
    ));
    let session = artifact.under_faults_unchecked(&faults).unwrap();
    assert_eq!(session.fault_count(), 3);

    // Distances match plain Dijkstra on the materialized surviving spanner.
    let h = g
        .subgraph(artifact.spanner_edges())
        .unwrap()
        .remove_vertices(&faults);
    for u in [0usize, 3, 12] {
        let expected = shortest_path::dijkstra(&h, NodeId::new(u)).unwrap();
        let got = session.distances_from(NodeId::new(u)).unwrap();
        for v in 0..g.node_count() {
            let dead = faults.contains(&NodeId::new(v));
            let want = if dead { f64::INFINITY } else { expected[v] };
            assert_eq!(got[v], want, "unchecked session diverged at ({u}, {v})");
        }
    }
    // Certificates still compute (holds() may legitimately be false out
    // here), and the cached wrapper stays transparent beyond the budget.
    let cert = session
        .stretch_certificate(NodeId::new(0), NodeId::new(12))
        .unwrap();
    assert!(cert.stretch >= 1.0 - 1e-9 || cert.spanner_distance.is_infinite());
    let mut cached = artifact.under_faults_unchecked(&faults).unwrap().cached(8);
    for u in 0..g.node_count() {
        for v in [2usize, 7, 15] {
            assert_eq!(
                session.distance(NodeId::new(u), NodeId::new(v)).unwrap(),
                cached.distance(NodeId::new(u), NodeId::new(v)).unwrap()
            );
        }
    }
    assert!(cached.hits() > 0);
    // The out-of-range error path is unchanged.
    assert!(artifact.under_faults_unchecked(&[NodeId::new(99)]).is_err());
}

#[test]
fn planner_groups_surface_typed_errors_without_poisoning_sessions() {
    // FaultModelMismatch and UnknownArtifact must surface through planned
    // (grouped) batches exactly as they do per query, while healthy queries
    // sharing the batch — including ones sharing the error queries' fault
    // scope on the *right* artifact — are answered normally.
    let mut r = rng(302);
    let g = generate::connected_gnp(16, 0.35, generate::WeightKind::Unit, &mut r);
    let vertex = FtSpannerBuilder::new("conversion")
        .faults(1)
        .seed(5)
        .build_artifact(&g)
        .unwrap();
    let edge = FtSpannerBuilder::new("edge-fault")
        .faults(1)
        .seed(5)
        .build_artifact(&g)
        .unwrap();
    let some_edge = {
        let (_, e) = g.edges().next().unwrap();
        (e.u, e.v)
    };
    let mut engine = Engine::new();
    engine.register("vertex", vertex).register("edge", edge);

    let scope = vec![NodeId::new(2)];
    let batch = vec![
        // Healthy vertex-scope query.
        Query::distance("vertex", scope.clone(), NodeId::new(0), NodeId::new(7)),
        // Same scope on the edge artifact: FaultModelMismatch.
        Query::distance("edge", scope.clone(), NodeId::new(0), NodeId::new(7)),
        // Edge faults on the vertex artifact: FaultModelMismatch.
        Query::distance("vertex", vec![], NodeId::new(0), NodeId::new(7))
            .with_edge_faults(vec![some_edge]),
        // Unknown artifact, same scope.
        Query::certificate("nowhere", scope.clone(), NodeId::new(0), NodeId::new(7)),
        // Healthy edge-scope query.
        Query::distance("edge", vec![], NodeId::new(0), NodeId::new(7))
            .with_edge_faults(vec![some_edge]),
        // Another healthy query in the first group.
        Query::certificate("vertex", scope, NodeId::new(3), NodeId::new(11)),
    ];
    for workers in [1usize, 4] {
        let results = engine.clone().with_workers(workers).run_batch(&batch);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(
                fault_tolerant_spanners::core::CoreError::FaultModelMismatch {
                    declared: FaultModel::Edge,
                    requested: FaultModel::Vertex,
                }
            )
        ));
        assert!(matches!(
            results[2],
            Err(
                fault_tolerant_spanners::core::CoreError::FaultModelMismatch {
                    declared: FaultModel::Vertex,
                    requested: FaultModel::Edge,
                }
            )
        ));
        assert!(matches!(
            results[3],
            Err(fault_tolerant_spanners::core::CoreError::UnknownArtifact { ref name }) if name == "nowhere"
        ));
        assert!(results[4].is_ok());
        assert!(results[5].is_ok());
        assert_eq!(results, engine.run_batch_naive(&batch));
    }
}
