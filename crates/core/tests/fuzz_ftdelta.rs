//! Fuzz-style battery for the `.ftdelta` binary decoder, mirroring the wire
//! battery in `crates/net/tests/fuzz_decode.rs`.
//!
//! Seeded (fully reproducible) adversarial inputs — random bytes, every
//! truncation point of a valid log, lying record lengths and counts,
//! version skew, mutated valid streams — must all decode to **typed**
//! [`CoreError`]s: no panics, no allocation bombs, no silent successes on
//! garbage.

use ftspan_core::{CoreError, DeltaLog, EdgeDelta};
use ftspan_graph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The record-length cap `from_binary_reader` enforces before allocating.
const MAX_RECORD_LEN: u32 = 64;

fn sample_log() -> DeltaLog {
    let mut log = DeltaLog::new();
    log.append(EdgeDelta::Insert {
        u: NodeId::new(3),
        v: NodeId::new(9),
        weight: 1.25,
    });
    log.append(EdgeDelta::Delete {
        u: NodeId::new(0),
        v: NodeId::new(5),
    });
    log.append(EdgeDelta::Reweight {
        u: NodeId::new(3),
        v: NodeId::new(9),
        weight: 4.0,
    });
    log.append(EdgeDelta::Insert {
        u: NodeId::new(1),
        v: NodeId::new(2),
        weight: 0.5,
    });
    log
}

fn encode(log: &DeltaLog) -> Vec<u8> {
    let mut out = Vec::new();
    log.to_binary_writer(&mut out).expect("encoding succeeds");
    out
}

/// A stream with a hand-built header, for forging versions and counts.
fn raw_stream(magic: &[u8; 4], version: u32, count: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(body);
    out
}

#[test]
fn a_valid_log_round_trips() {
    let log = sample_log();
    let wire = encode(&log);
    let back = DeltaLog::from_binary_reader(&wire[..]).expect("own encoding decodes");
    assert_eq!(back.records(), log.records());
    assert_eq!(back.last_seq(), log.last_seq());
    assert_eq!(back.next_seq(), log.next_seq());
}

#[test]
fn random_bytes_decode_to_typed_errors_without_panicking() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF426);
    for _ in 0..2000 {
        let len = rng.gen_range(0..300usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Random bytes essentially never start with `FTDL`, so the decoder
        // must return a typed error (and absolutely must not panic or hang).
        let result = DeltaLog::from_binary_reader(&bytes[..]);
        assert!(
            matches!(result, Err(CoreError::InvalidParameter { .. })),
            "random bytes decoded as a delta log: {bytes:?}"
        );
    }
}

#[test]
fn random_bodies_under_a_valid_header_never_panic() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF427);
    for _ in 0..2000 {
        let len = rng.gen_range(0..200usize);
        let body: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let count = rng.gen_range(0..8u64);
        let wire = raw_stream(b"FTDL", 1, count, &body);
        // Structurally valid header, garbage records: decoding must finish
        // (no panic, no unbounded allocation) with Ok or a typed error.
        let _ = DeltaLog::from_binary_reader(&wire[..]);
    }
}

#[test]
fn every_truncation_of_a_valid_stream_is_a_typed_error() {
    let wire = encode(&sample_log());
    for cut in 0..wire.len() {
        match DeltaLog::from_binary_reader(&wire[..cut]) {
            Err(CoreError::InvalidParameter { message }) => {
                assert!(
                    message.contains("truncated"),
                    "cut at {cut}/{}: error does not name the truncation: {message}",
                    wire.len()
                );
            }
            other => panic!(
                "cut at {cut}/{}: expected a typed truncation error, got {other:?}",
                wire.len()
            ),
        }
    }
}

#[test]
fn trailing_bytes_after_the_last_record_are_rejected() {
    let mut wire = encode(&sample_log());
    wire.push(0);
    match DeltaLog::from_binary_reader(&wire[..]) {
        Err(CoreError::InvalidParameter { message }) => {
            assert!(
                message.contains("trailing"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected a trailing-bytes error, got {other:?}"),
    }
}

#[test]
fn oversized_record_lengths_are_rejected_before_any_allocation() {
    for lying_len in [MAX_RECORD_LEN + 1, u32::MAX, u32::MAX / 2] {
        let mut body = Vec::new();
        body.extend_from_slice(&lying_len.to_le_bytes());
        body.extend_from_slice(b"tiny");
        let wire = raw_stream(b"FTDL", 1, 1, &body);
        match DeltaLog::from_binary_reader(&wire[..]) {
            Err(CoreError::InvalidParameter { message }) => {
                assert!(
                    message.contains(&lying_len.to_string()),
                    "error does not carry the lying length: {message}"
                );
            }
            other => panic!("declared {lying_len}: expected a typed error, got {other:?}"),
        }
    }
    // A lying *count* with no backing bytes must cost only the clamped
    // capacity, then fail as a truncation — not allocate per the count.
    let wire = raw_stream(b"FTDL", 1, u64::MAX, b"");
    assert!(matches!(
        DeltaLog::from_binary_reader(&wire[..]),
        Err(CoreError::InvalidParameter { .. })
    ));
}

#[test]
fn version_skew_is_a_typed_error_naming_both_versions() {
    for found in [0u32, 2, 7, u32::MAX] {
        let wire = raw_stream(b"FTDL", found, 0, b"");
        match DeltaLog::from_binary_reader(&wire[..]) {
            Err(CoreError::InvalidParameter { message }) => {
                assert!(
                    message.contains(&found.to_string()) && message.contains('1'),
                    "version {found}: error does not name both versions: {message}"
                );
            }
            other => panic!("version {found}: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_a_typed_error() {
    let mut wire = encode(&sample_log());
    wire[..4].copy_from_slice(b"HTTP");
    match DeltaLog::from_binary_reader(&wire[..]) {
        Err(CoreError::InvalidParameter { message }) => {
            assert!(message.contains("magic"), "unexpected message: {message}");
        }
        other => panic!("expected a bad-magic error, got {other:?}"),
    }
}

#[test]
fn non_monotone_sequences_are_rejected() {
    // Two otherwise-valid Delete records both claiming seq 1.
    let mut record = Vec::new();
    record.extend_from_slice(&1u64.to_le_bytes());
    record.push(1u8); // Delete tag
    record.extend_from_slice(&0u32.to_le_bytes());
    record.extend_from_slice(&5u32.to_le_bytes());
    let mut body = Vec::new();
    for _ in 0..2 {
        body.extend_from_slice(&(record.len() as u32).to_le_bytes());
        body.extend_from_slice(&record);
    }
    let wire = raw_stream(b"FTDL", 1, 2, &body);
    match DeltaLog::from_binary_reader(&wire[..]) {
        Err(CoreError::InvalidParameter { message }) => {
            assert!(
                message.contains("monotonicity"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected a monotonicity error, got {other:?}"),
    }
}

#[test]
fn mutated_valid_streams_never_panic_and_errors_stay_typed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF428);
    let original = encode(&sample_log());
    for _ in 0..4000 {
        let mut wire = original.clone();
        for _ in 0..rng.gen_range(1..9usize) {
            let at = rng.gen_range(0..wire.len());
            wire[at] = rng.gen();
        }
        // Any mutation outcome is acceptable except a panic, a hang, or an
        // allocation proportional to a lying length instead of real bytes.
        match DeltaLog::from_binary_reader(&wire[..]) {
            Ok(log) => {
                // A surviving decode must still be internally consistent.
                let mut prev = 0u64;
                for record in log.records() {
                    assert!(record.seq > prev, "accepted a non-monotone log");
                    prev = record.seq;
                }
            }
            Err(CoreError::InvalidParameter { .. }) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
}
