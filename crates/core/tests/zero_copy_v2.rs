//! Pins the zero-copy claim of the `.ftspan` version-2 layout: a successful
//! [`FtSpannerView::parse`] performs **no heap allocation at all** — the
//! sections are validated in place and borrowed from the caller's buffer —
//! and random record access through the view stays allocation-free too.
//!
//! The whole test binary runs under a counting global allocator (which is
//! why this battery lives in its own integration-test crate), so any
//! allocation sneaking into the parse or access paths fails the assertion
//! rather than silently eroding the mmap-ready property the format exists
//! for.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ftspan_core::algorithms::core_algorithms;
use ftspan_core::api::Registry;
use ftspan_core::{FtSpanner, FtSpannerView, SpannerRequest};
use ftspan_graph::generate;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Forwards to the system allocator while counting every allocation call.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is a relaxed atomic
// with no further invariants.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let value = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (value, after - before)
}

fn v2_image(seed: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generate::connected_gnp(120, 0.08, generate::WeightKind::Unit, &mut rng);
    let registry = Registry::from_algorithms(core_algorithms());
    let report = registry
        .get("conversion")
        .expect("conversion algorithm is registered")
        .build((&g).into(), &SpannerRequest::new(2), &mut rng)
        .expect("construction succeeds");
    let artifact = FtSpanner::from_report(&g, &report).expect("artifact builds");
    let mut buf = Vec::new();
    artifact
        .to_binary_v2_writer(&mut buf)
        .expect("serialization succeeds");
    buf
}

#[test]
fn parse_allocates_nothing() {
    let image = v2_image(2011);
    // Warm up once so lazy runtime initialization (test harness buffers and
    // the like) cannot be misattributed to the parse under measurement.
    FtSpannerView::parse(&image).expect("image is well-formed");

    let (view, allocations) = allocations_during(|| FtSpannerView::parse(&image));
    let view = view.expect("image is well-formed");
    assert_eq!(
        allocations, 0,
        "FtSpannerView::parse must validate and borrow without allocating"
    );
    assert!(view.edge_count() > 0);
    assert!(view.spanner_edge_count() > 0);
}

#[test]
fn record_access_allocates_nothing() {
    let image = v2_image(7);
    let view = FtSpannerView::parse(&image).expect("image is well-formed");

    let ((), allocations) = allocations_during(|| {
        let mut checksum = 0.0f64;
        for i in 0..view.edge_count() {
            let (u, v, w) = view.edge(i);
            checksum += w + (u.index() + v.index()) as f64;
        }
        for i in 0..view.spanner_edge_count() {
            checksum += view.spanner_edge(i).index() as f64;
        }
        assert!(checksum > 0.0);
    });
    assert_eq!(
        allocations, 0,
        "decoding records through the view must not allocate"
    );
}

#[test]
fn materialize_agrees_with_the_streaming_reader() {
    let image = v2_image(42);
    let view = FtSpannerView::parse(&image).expect("image is well-formed");
    let materialized = view.materialize().expect("materialization succeeds");
    let streamed = FtSpanner::from_binary_reader(image.as_slice()).expect("reader succeeds");
    assert_eq!(materialized, streamed);
}
