//! Fuzz-style battery for the `.ftspan` artifact codecs — the text format,
//! the v1 section stream and the v2 fixed-width table — mirroring the
//! `.ftdelta` battery in `fuzz_ftdelta.rs` and the wire battery in
//! `crates/net/tests/fuzz_decode.rs`.
//!
//! Seeded (fully reproducible) adversarial inputs — random bytes, every
//! truncation point of a valid artifact, lying section lengths and counts,
//! mutated headers, spliced section tables — must all decode to **typed**
//! [`CoreError`]s: no panics, no allocation bombs, no silent successes on
//! garbage.

use ftspan_core::serve::FtSpannerView;
use ftspan_core::{BuildRecipe, CoreError, DynamicArtifact, FtSpanner, SpannerRequest};
use ftspan_graph::generate;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small real artifact, built core-only (no facade registry needed).
fn sample_artifact() -> FtSpanner {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA7);
    let g = generate::connected_gnp(
        14,
        0.3,
        generate::WeightKind::Uniform { min: 0.5, max: 2.0 },
        &mut rng,
    );
    let request = SpannerRequest {
        iterations: Some(4),
        threads: Some(1),
        ..SpannerRequest::default()
    };
    let recipe = BuildRecipe::new("corollary-2.2", request, 0xA7);
    DynamicArtifact::build(&g, recipe)
        .expect("sample build succeeds")
        .artifact()
        .clone()
}

fn encode_v1(artifact: &FtSpanner) -> Vec<u8> {
    let mut out = Vec::new();
    artifact
        .to_binary_writer(&mut out)
        .expect("v1 encoding succeeds");
    out
}

fn encode_v2(artifact: &FtSpanner) -> Vec<u8> {
    let mut out = Vec::new();
    artifact
        .to_binary_v2_writer(&mut out)
        .expect("v2 encoding succeeds");
    out
}

fn encode_text(artifact: &FtSpanner) -> Vec<u8> {
    let mut out = Vec::new();
    artifact
        .to_writer(&mut out)
        .expect("text encoding succeeds");
    out
}

/// A v1 stream with a hand-built header and body, for forging.
fn raw_v1(magic: &[u8; 4], version: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// A single length-prefixed v1 section.
fn v1_section(tag: &[u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn assert_typed(result: ftspan_core::Result<FtSpanner>, context: &str) {
    match result {
        Err(CoreError::InvalidParameter { .. }) => {}
        Ok(_) => panic!("{context}: garbage decoded as an artifact"),
        Err(other) => panic!("{context}: unexpected error class {other:?}"),
    }
}

#[test]
fn all_three_codecs_round_trip_the_sample_artifact() {
    let artifact = sample_artifact();
    let v1 = FtSpanner::from_binary_reader(&encode_v1(&artifact)[..]).expect("v1 decodes");
    assert_eq!(v1, artifact);
    let v2 = FtSpanner::from_binary_reader(&encode_v2(&artifact)[..]).expect("v2 decodes");
    assert_eq!(v2, artifact);
    let v2_slice = FtSpanner::from_binary_slice(&encode_v2(&artifact)).expect("slice decodes");
    assert_eq!(v2_slice, artifact);
    let text = FtSpanner::from_reader(&encode_text(&artifact)[..]).expect("text decodes");
    assert_eq!(text, artifact);
}

#[test]
fn random_bytes_decode_to_typed_errors_without_panicking() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF450);
    for _ in 0..2000 {
        let len = rng.gen_range(0..400usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        assert_typed(FtSpanner::from_binary_reader(&bytes[..]), "random bytes");
        // The slice path must agree that garbage is garbage.
        assert_typed(FtSpanner::from_binary_slice(&bytes), "random bytes (slice)");
        if FtSpannerView::parse(&bytes).is_ok() {
            panic!("random bytes parsed as a v2 view");
        }
        // Random text through the line-oriented codec.
        assert_typed(FtSpanner::from_reader(&bytes[..]), "random bytes (text)");
    }
}

#[test]
fn every_truncation_of_a_valid_v1_stream_is_a_typed_error() {
    let wire = encode_v1(&sample_artifact());
    for cut in 0..wire.len() {
        assert_typed(
            FtSpanner::from_binary_reader(&wire[..cut]),
            &format!("v1 cut at {cut}/{}", wire.len()),
        );
    }
}

#[test]
fn every_truncation_of_a_valid_v2_image_is_a_typed_error() {
    let wire = encode_v2(&sample_artifact());
    for cut in 0..wire.len() {
        assert_typed(
            FtSpanner::from_binary_slice(&wire[..cut]),
            &format!("v2 cut at {cut}/{}", wire.len()),
        );
        assert!(
            FtSpannerView::parse(&wire[..cut]).is_err(),
            "v2 view parsed a truncation at {cut}"
        );
    }
}

#[test]
fn every_line_truncation_of_a_valid_text_artifact_is_a_typed_error() {
    let wire = encode_text(&sample_artifact());
    let text = std::str::from_utf8(&wire).expect("text codec writes UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let partial = lines[..keep].join("\n");
        assert_typed(
            FtSpanner::from_reader(partial.as_bytes()),
            &format!("text truncated to {keep}/{} lines", lines.len()),
        );
    }
}

#[test]
fn trailing_bytes_after_either_binary_format_are_rejected() {
    let artifact = sample_artifact();
    let mut v1 = encode_v1(&artifact);
    v1.push(0);
    match FtSpanner::from_binary_reader(&v1[..]) {
        Err(CoreError::InvalidParameter { message }) => {
            assert!(
                message.contains("trailing"),
                "unexpected message: {message}"
            )
        }
        other => panic!("expected a trailing-bytes error, got {other:?}"),
    }
    let mut v2 = encode_v2(&artifact);
    v2.push(1); // non-zero so it cannot pass as alignment padding
    assert_typed(FtSpanner::from_binary_slice(&v2), "v2 trailing byte");
}

#[test]
fn bad_magic_and_version_skew_are_typed_errors() {
    let wire = encode_v1(&sample_artifact());
    let mut bad = wire.clone();
    bad[..4].copy_from_slice(b"HTTP");
    match FtSpanner::from_binary_reader(&bad[..]) {
        Err(CoreError::InvalidParameter { message }) => {
            assert!(message.contains("magic"), "unexpected message: {message}")
        }
        other => panic!("expected a bad-magic error, got {other:?}"),
    }
    for found in [0u32, 3, 7, u32::MAX] {
        let forged = raw_v1(b"FTSP", found, &wire[8..]);
        match FtSpanner::from_binary_reader(&forged[..]) {
            Err(CoreError::InvalidParameter { message }) => {
                assert!(
                    message.contains(&found.to_string()),
                    "version {found}: error does not name the version: {message}"
                );
            }
            other => panic!("version {found}: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn lying_v1_section_lengths_fail_before_any_allocation() {
    // A META section claiming a multi-gigabyte payload backed by 4 bytes:
    // the reader's take-bounded section loader must fail on the missing
    // bytes, not allocate the claimed length.
    for lying_len in [u64::MAX, u64::MAX / 2, 1 << 40] {
        let mut body = Vec::new();
        body.extend_from_slice(b"META");
        body.extend_from_slice(&lying_len.to_le_bytes());
        body.extend_from_slice(b"tiny");
        let wire = raw_v1(b"FTSP", 1, &body);
        assert_typed(
            FtSpanner::from_binary_reader(&wire[..]),
            &format!("META claiming {lying_len} bytes"),
        );
    }
}

#[test]
fn implausible_v1_node_counts_are_refused_without_allocating() {
    // A structurally valid META plus a GRPH section declaring u32::MAX
    // vertices over zero edges: the node bound must refuse the Graph
    // allocation with a typed error.
    let mut meta = Vec::new();
    meta.extend_from_slice(&1u32.to_le_bytes()); // algorithm len
    meta.push(b'x');
    meta.extend_from_slice(&1u32.to_le_bytes()); // provenance len
    meta.push(b'y');
    meta.push(0u8); // vertex model
    meta.extend_from_slice(&1u64.to_le_bytes()); // faults
    meta.extend_from_slice(&3.0f64.to_le_bytes()); // stretch
    let mut grph = Vec::new();
    grph.extend_from_slice(&u32::MAX.to_le_bytes()); // n
    grph.extend_from_slice(&0u32.to_le_bytes()); // m
    let mut body = v1_section(b"META", &meta);
    body.extend_from_slice(&v1_section(b"GRPH", &grph));
    body.extend_from_slice(&v1_section(b"SPAN", &0u32.to_le_bytes()));
    body.extend_from_slice(&v1_section(b"END\0", &[]));
    let wire = raw_v1(b"FTSP", 1, &body);
    match FtSpanner::from_binary_reader(&wire[..]) {
        Err(CoreError::InvalidParameter { message }) => {
            assert!(
                message.contains("implausible"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected the node-bound refusal, got {other:?}"),
    }
}

#[test]
fn forged_text_headers_cannot_bomb_the_vertex_allocation() {
    // Minimized reproducer from the fuzz battery: a graph line claiming
    // u32::MAX vertices and edges used to allocate the full adjacency array
    // (~100 GiB) before reading a single edge line. It must now fail as a
    // typed error with allocations bounded by the bytes actually present.
    let forged = "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3\n\
                  graph 4294967295 4294967295\n";
    assert_typed(
        FtSpanner::from_reader(forged.as_bytes()),
        "text header claiming 2^32 vertices",
    );
    // Same lie with the edge count it can actually back: still refused by
    // the node bound, after the (tiny) edge list is read.
    let forged = "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3\n\
                  graph 4294967295 1\n0 1 1.0\nspanner 0\nend\n";
    match FtSpanner::from_reader(forged.as_bytes()) {
        Err(CoreError::InvalidParameter { message }) => {
            assert!(
                message.contains("implausible"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected the node-bound refusal, got {other:?}"),
    }
}

#[test]
fn v2_header_and_table_violations_are_typed_errors() {
    let wire = encode_v2(&sample_artifact());
    // Section count forged to 7.
    let mut forged = wire.clone();
    forged[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert_typed(FtSpanner::from_binary_slice(&forged), "v2 section count 7");
    // Reserved header word non-zero.
    let mut forged = wire.clone();
    forged[12] = 1;
    assert_typed(FtSpanner::from_binary_slice(&forged), "v2 reserved header");
    // First table entry: reserved word non-zero.
    let mut forged = wire.clone();
    forged[16 + 4] = 1;
    assert_typed(FtSpanner::from_binary_slice(&forged), "v2 reserved entry");
    // First table entry: misaligned offset.
    let mut forged = wire.clone();
    let off = u64::from_le_bytes(forged[24..32].try_into().unwrap());
    forged[24..32].copy_from_slice(&(off + 1).to_le_bytes());
    assert_typed(
        FtSpanner::from_binary_slice(&forged),
        "v2 misaligned offset",
    );
    // First table entry: length lying far past the file.
    let mut forged = wire.clone();
    forged[32..40].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert_typed(FtSpanner::from_binary_slice(&forged), "v2 lying length");
    // Spliced table: swap the first two entries (tag order is fixed).
    let mut forged = wire.clone();
    let (a, b) = (16usize, 16 + 24);
    for i in 0..24 {
        forged.swap(a + i, b + i);
    }
    assert_typed(FtSpanner::from_binary_slice(&forged), "v2 spliced table");
}

#[test]
fn v2_padding_must_be_zero() {
    // The sample artifact's META section holds strings, so some section end
    // is almost surely unaligned; flip every padding byte and expect a
    // typed rejection (a reader that ignored padding would admit smuggled
    // bytes into an otherwise-valid image).
    let wire = encode_v2(&sample_artifact());
    assert!(FtSpannerView::parse(&wire).is_ok(), "own encoding parses");
    let mut rejected = 0usize;
    for at in 16 + 6 * 24..wire.len() {
        if wire[at] == 0 {
            let mut forged = wire.clone();
            forged[at] = 0xAA;
            if FtSpanner::from_binary_slice(&forged).is_err() {
                rejected += 1;
            }
        }
    }
    assert!(
        rejected > 0,
        "no padding byte rejected a non-zero overwrite"
    );
}

#[test]
fn mutated_v1_streams_never_panic_and_errors_stay_typed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF451);
    let original = encode_v1(&sample_artifact());
    for _ in 0..3000 {
        let mut wire = original.clone();
        for _ in 0..rng.gen_range(1..9usize) {
            let at = rng.gen_range(0..wire.len());
            wire[at] = rng.gen();
        }
        match FtSpanner::from_binary_reader(&wire[..]) {
            Ok(artifact) => {
                // A surviving decode must still be internally consistent.
                assert!(artifact.spanner_edge_count() <= artifact.source_edge_count());
            }
            Err(CoreError::InvalidParameter { .. }) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
}

#[test]
fn mutated_v2_images_never_panic_and_errors_stay_typed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF452);
    let original = encode_v2(&sample_artifact());
    for _ in 0..3000 {
        let mut wire = original.clone();
        for _ in 0..rng.gen_range(1..9usize) {
            let at = rng.gen_range(0..wire.len());
            wire[at] = rng.gen();
        }
        match FtSpanner::from_binary_slice(&wire) {
            Ok(artifact) => {
                assert!(artifact.spanner_edge_count() <= artifact.source_edge_count());
            }
            Err(CoreError::InvalidParameter { .. }) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
}

#[test]
fn mutated_text_artifacts_never_panic_and_errors_stay_typed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF453);
    let original = encode_text(&sample_artifact());
    for _ in 0..2000 {
        let mut wire = original.clone();
        for _ in 0..rng.gen_range(1..6usize) {
            let at = rng.gen_range(0..wire.len());
            wire[at] = rng.gen();
        }
        match FtSpanner::from_reader(&wire[..]) {
            Ok(artifact) => {
                assert!(artifact.spanner_edge_count() <= artifact.source_edge_count());
            }
            Err(CoreError::InvalidParameter { .. }) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
}

#[test]
fn random_bodies_under_valid_headers_never_panic() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF454);
    for _ in 0..2000 {
        let len = rng.gen_range(0..300usize);
        let body: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let v1 = raw_v1(b"FTSP", 1, &body);
        let _ = FtSpanner::from_binary_reader(&v1[..]);
        let v2 = raw_v1(b"FTSP", 2, &body);
        let _ = FtSpanner::from_binary_slice(&v2);
        let _ = FtSpannerView::parse(&v2);
    }
}
