//! Theorem 3.4: the `O(log Δ)` bounded-degree approximation via the
//! constructive Lovász Local Lemma.
//!
//! For unit arc costs and maximum (in- and out-) degree `Δ`, the rounding of
//! Algorithm 1 with the smaller inflation `α = C log Δ` still works — but the
//! failure probability of a single arc is only `Δ^{-Ω(C)}`, too large for a
//! union bound over all arcs. The paper instead observes that each bad event
//! depends on only `O(Δ³)` others and applies the constructive Local Lemma of
//! Moser & Tardos: resample the threshold variables of a violated event until
//! no event is violated. Two families of events are tracked, exactly as in
//! the paper's proof:
//!
//! * `A_{u,v}` — arc `(u, v)` is not satisfied (not bought and covered by
//!   fewer than `r + 1` two-paths);
//! * `B_u` — the arcs charged to vertex `u` cost more than
//!   `4α·(Σ_out x + Σ_in x)`, which would break the `O(log Δ) · LP` cost
//!   bound.

use super::relaxation::{solve_relaxation, RelaxationConfig};
use super::rounding::select_with_thresholds;
use crate::{CoreError, Result};
use ftspan_graph::verify::{count_spanner_two_paths, two_spanner_violations};
use ftspan_graph::{ArcSet, DiGraph, NodeId};
use rand::Rng;
use rand::RngCore;

/// Configuration of the bounded-degree (Theorem 3.4) algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LllConfig {
    /// Number of vertex faults `r` to tolerate.
    pub faults: usize,
    /// The constant `C` in the inflation factor `α = C · ln Δ`.
    pub alpha_constant: f64,
    /// Maximum number of Moser–Tardos resampling steps before falling back to
    /// the repair step.
    pub max_resamples: usize,
    /// Maximum number of cutting-plane rounds for the relaxation.
    pub max_cut_rounds: usize,
    /// Worker threads for the relaxation's separation-oracle rounds (see
    /// [`RelaxationConfig::threads`]); the solve is identical at any count.
    pub threads: usize,
}

impl LllConfig {
    /// The paper's configuration for `faults` failures.
    pub fn new(faults: usize) -> Self {
        LllConfig {
            faults,
            alpha_constant: 4.0,
            max_resamples: 10_000,
            max_cut_rounds: 50,
            threads: 1,
        }
    }

    /// Grants the separation oracle up to `threads` workers (clamped to at
    /// least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the constant `C` of `α = C ln Δ`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive.
    pub fn with_alpha_constant(mut self, c: f64) -> Self {
        assert!(c > 0.0, "alpha constant must be positive");
        self.alpha_constant = c;
        self
    }
}

/// Output of the bounded-degree algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct LllResult {
    /// The arcs of the `r`-fault-tolerant 2-spanner.
    pub arcs: ArcSet,
    /// Total cost (= number of arcs, costs are unit).
    pub cost: f64,
    /// Optimal value of the LP relaxation (lower bound on OPT).
    pub lp_objective: f64,
    /// The inflation factor `α = C ln Δ` that was used.
    pub alpha: f64,
    /// The maximum degree `Δ` of the input.
    pub max_degree: usize,
    /// Number of Moser–Tardos resampling steps performed.
    pub resamples: usize,
    /// Number of arcs added by the final repair step (0 when the resampling
    /// terminated with no bad event, which is the Local Lemma guarantee).
    pub repaired_arcs: usize,
}

impl LllResult {
    /// The realized approximation ratio relative to the LP lower bound.
    pub fn ratio_vs_lp(&self) -> f64 {
        if self.lp_objective <= f64::EPSILON {
            1.0
        } else {
            self.cost / self.lp_objective
        }
    }
}

/// The Theorem 3.4 algorithm: `O(log Δ)`-approximation for the unit-cost
/// `r`-fault-tolerant 2-spanner problem on graphs of maximum degree `Δ`.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] if some arc cost is not 1 (the theorem
///   is specific to unit costs) or the graph has no vertices.
/// * [`CoreError::Lp`] if the relaxation cannot be solved.
pub fn bounded_degree_two_spanner(
    graph: &DiGraph,
    config: &LllConfig,
    rng: &mut dyn RngCore,
) -> Result<LllResult> {
    if graph.node_count() == 0 {
        return Err(CoreError::InvalidParameter {
            message: "cannot build a 2-spanner of a graph with no vertices".to_string(),
        });
    }
    if graph.arcs().any(|(_, a)| (a.cost - 1.0).abs() > 1e-12) {
        return Err(CoreError::InvalidParameter {
            message: "the bounded-degree algorithm requires unit arc costs".to_string(),
        });
    }

    let relax_cfg = RelaxationConfig {
        faults: config.faults,
        knapsack_cover: true,
        max_cut_rounds: config.max_cut_rounds,
        separation_tolerance: 1e-7,
        threads: config.threads.max(1),
    };
    let fractional = solve_relaxation(graph, &relax_cfg)?;
    let x = &fractional.x;

    let delta = graph.max_degree().max(2);
    let alpha = config.alpha_constant * (delta as f64).ln().max(1.0);

    let n = graph.node_count();
    let mut thresholds: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();

    // Precompute the per-vertex fractional degree sums used by the B_u events.
    let mut out_sum = vec![0.0f64; n];
    let mut in_sum = vec![0.0f64; n];
    for (id, arc) in graph.arcs() {
        out_sum[arc.tail.index()] += x[id.index()];
        in_sum[arc.head.index()] += x[id.index()];
    }

    let mut resamples = 0usize;
    let arcs = loop {
        let arcs = select_with_thresholds(graph, x, alpha, &thresholds);
        let bad_vertices = cost_events(graph, x, alpha, &thresholds, &out_sum, &in_sum);
        let bad_arcs = two_spanner_violations(graph, &arcs, config.faults);

        if bad_arcs.is_empty() && bad_vertices.is_empty() {
            break arcs;
        }
        if resamples >= config.max_resamples {
            break arcs;
        }
        resamples += 1;

        // Resample the variables of one bad event (Moser-Tardos).
        if let Some(&arc_id) = bad_arcs.first() {
            let arc = graph.arc(arc_id);
            thresholds[arc.tail.index()] = rng.gen();
            thresholds[arc.head.index()] = rng.gen();
            for w in graph
                .two_path_midpoints(arc.tail, arc.head)
                .collect::<Vec<_>>()
            {
                thresholds[w.index()] = rng.gen();
            }
        } else if let Some(&u) = bad_vertices.first() {
            thresholds[u.index()] = rng.gen();
            let neighbors: Vec<NodeId> = graph
                .out_neighbors(NodeId::new(u.index()))
                .chain(graph.in_neighbors(NodeId::new(u.index())))
                .collect();
            for w in neighbors {
                thresholds[w.index()] = rng.gen();
            }
        }
    };

    // Guarantee validity even if the resampling budget ran out.
    let mut arcs = arcs;
    let mut repaired = 0usize;
    for a in two_spanner_violations(graph, &arcs, config.faults) {
        arcs.insert(a);
        repaired += 1;
    }

    // Sanity: every satisfied arc is indeed covered (debug builds only).
    debug_assert!(graph.arcs().all(|(id, arc)| {
        arcs.contains(id)
            || count_spanner_two_paths(graph, &arcs, arc.tail, arc.head) > config.faults
    }));

    let cost = graph.arc_set_cost(&arcs)?;
    Ok(LllResult {
        arcs,
        cost,
        lp_objective: fractional.objective,
        alpha,
        max_degree: delta,
        resamples,
        repaired_arcs: repaired,
    })
}

/// Vertices `u` whose charged rounding cost exceeds the Theorem 3.4 budget
/// `4α(Σ_out x + Σ_in x)` — the `B_u` events.
fn cost_events(
    graph: &DiGraph,
    x: &[f64],
    alpha: f64,
    thresholds: &[f64],
    out_sum: &[f64],
    in_sum: &[f64],
) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut z = vec![0usize; n];
    for (id, arc) in graph.arcs() {
        let xv = x[id.index()];
        // Z+ of the tail counts this arc when the head's threshold is low...
        if thresholds[arc.head.index()] <= alpha * xv {
            z[arc.tail.index()] += 1;
        }
        // ...and Z- of the head counts it when the tail's threshold is low.
        if thresholds[arc.tail.index()] <= alpha * xv {
            z[arc.head.index()] += 1;
        }
    }
    (0..n)
        .filter(|&u| {
            let budget = 4.0 * alpha * (out_sum[u] + in_sum[u]);
            (z[u] as f64) > budget.max(1.0)
        })
        .map(NodeId::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_non_unit_costs() {
        let g = generate::gap_gadget(2, 10.0).unwrap();
        let err = bounded_degree_two_spanner(&g, &LllConfig::new(1), &mut rng(1));
        assert!(matches!(err, Err(CoreError::InvalidParameter { .. })));
    }

    #[test]
    fn rejects_empty_graph() {
        let g = DiGraph::new(0);
        assert!(bounded_degree_two_spanner(&g, &LllConfig::new(1), &mut rng(2)).is_err());
    }

    #[test]
    fn produces_valid_spanners_on_bounded_degree_graphs() {
        let mut r = rng(3);
        for faults in [0usize, 1] {
            let ug = generate::random_near_regular(20, 5, &mut r);
            let g = DiGraph::from_graph(&ug);
            let result = bounded_degree_two_spanner(&g, &LllConfig::new(faults), &mut r).unwrap();
            assert!(
                verify::is_ft_two_spanner(&g, &result.arcs, faults),
                "LLL output invalid for r = {faults}"
            );
            assert!(result.cost <= g.total_cost() + 1e-9);
            assert!(result.lp_objective <= result.cost + 1e-6);
            assert_eq!(result.max_degree, g.max_degree().max(2));
        }
    }

    #[test]
    fn alpha_scales_with_degree_not_n() {
        let mut r = rng(4);
        let ug = generate::random_near_regular(30, 4, &mut r);
        let g = DiGraph::from_graph(&ug);
        let result = bounded_degree_two_spanner(&g, &LllConfig::new(1), &mut r).unwrap();
        let expected_alpha = 4.0 * (g.max_degree().max(2) as f64).ln().max(1.0);
        assert!((result.alpha - expected_alpha).abs() < 1e-9);
        // In particular alpha is far below 4 ln n for a large sparse graph.
        assert!(result.alpha <= 4.0 * (g.node_count() as f64).ln() + 1e-9);
    }

    #[test]
    fn resampling_terminates_and_reports_counts() {
        let mut r = rng(5);
        let ug = generate::random_near_regular(16, 4, &mut r);
        let g = DiGraph::from_graph(&ug);
        let cfg = LllConfig::new(1).with_alpha_constant(2.0);
        let result = bounded_degree_two_spanner(&g, &cfg, &mut r).unwrap();
        assert!(result.resamples <= cfg.max_resamples);
        assert!(verify::is_ft_two_spanner(&g, &result.arcs, 1));
        assert!(result.ratio_vs_lp() >= 1.0 - 1e-9);
    }

    #[test]
    fn tiny_alpha_falls_back_to_repair_but_stays_valid() {
        let mut r = rng(6);
        let ug = generate::random_near_regular(14, 4, &mut r);
        let g = DiGraph::from_graph(&ug);
        let cfg = LllConfig {
            faults: 1,
            alpha_constant: 0.01,
            max_resamples: 10,
            max_cut_rounds: 20,
            threads: 1,
        };
        let result = bounded_degree_two_spanner(&g, &cfg, &mut r).unwrap();
        assert!(verify::is_ft_two_spanner(&g, &result.arcs, 1));
    }
}
