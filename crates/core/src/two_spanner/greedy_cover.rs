//! An LP-free greedy heuristic for minimum-cost `r`-fault-tolerant
//! 2-spanners.
//!
//! The paper's Theorem 3.3 algorithm solves LP (4) and rounds it; that is
//! the right tool for an approximation guarantee, but a practical deployment
//! often wants a fast combinatorial heuristic to compare against (and the
//! experiment harness wants a third point between the LP lower bound and the
//! rounded solution). The heuristic here builds the spanner arc by arc,
//! always maintaining the Lemma 3.1 invariant:
//!
//! for every arc `(u, v)` processed so far, either `(u, v)` is in the
//! spanner or at least `r + 1` length-2 paths from `u` to `v` are fully
//! contained in it.
//!
//! Arcs are processed in non-increasing order of cost. For each arc the
//! heuristic compares buying the arc itself against completing the `r + 1`
//! cheapest 2-paths (counting only the cost of path arcs not already
//! bought), and picks the cheaper option. Because arcs are only ever added,
//! the invariant persists and the final set is a valid `r`-fault-tolerant
//! 2-spanner by Lemma 3.1 — with certainty, not just with high probability.

use crate::two_spanner::paths::TwoPathIndex;
use ftspan_graph::{ArcSet, DiGraph};

/// The output of [`greedy_ft_two_spanner`].
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyCoverResult {
    /// The selected arcs.
    pub arcs: ArcSet,
    /// Total cost of the selected arcs.
    pub cost: f64,
    /// Number of arcs that were bought directly (rather than covered by
    /// 2-paths).
    pub bought_directly: usize,
    /// Number of arcs that are covered by `r + 1` two-paths instead of being
    /// bought.
    pub covered_by_paths: usize,
}

impl GreedyCoverResult {
    /// Number of selected arcs.
    pub fn size(&self) -> usize {
        self.arcs.len()
    }
}

/// Builds an `r`-fault-tolerant 2-spanner of the directed cost graph `graph`
/// with the greedy cover heuristic described in the module documentation.
///
/// The result is always valid (it satisfies the Lemma 3.1 characterization by
/// construction); no approximation factor is guaranteed, which is exactly why
/// the experiments report it next to the LP-based algorithm.
///
/// # Example
///
/// ```
/// use ftspan_core::two_spanner::greedy_ft_two_spanner;
/// use ftspan_graph::{generate, verify};
///
/// let g = generate::complete_digraph(8);
/// let result = greedy_ft_two_spanner(&g, 2);
/// assert!(verify::is_ft_two_spanner(&g, &result.arcs, 2));
/// assert!(result.cost <= g.total_cost());
/// ```
pub fn greedy_ft_two_spanner(graph: &DiGraph, r: usize) -> GreedyCoverResult {
    let index = TwoPathIndex::build(graph);
    let mut selected = graph.empty_arc_set();
    let mut bought_directly = 0usize;
    let mut covered_by_paths = 0usize;

    // Process arcs from most to least expensive: expensive arcs benefit the
    // most from being covered by paths, and the cheap arcs bought for their
    // paths are then available to cover later arcs for free.
    let mut order: Vec<_> = graph.arcs().map(|(id, a)| (id, a.cost)).collect();
    order.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });

    for (arc_id, arc_cost) in order {
        if selected.contains(arc_id) {
            // Already bought as part of covering an earlier arc; the
            // invariant for this arc holds trivially.
            continue;
        }
        let paths = index.paths(arc_id);
        if paths.len() < r + 1 {
            // Not enough midpoints to ever cover the arc: it must be bought.
            selected.insert(arc_id);
            bought_directly += 1;
            continue;
        }
        // Marginal cost of completing each 2-path (0 for arcs already bought).
        let mut marginal: Vec<(f64, usize)> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut c = 0.0;
                if !selected.contains(p.first) {
                    c += graph.arc(p.first).cost;
                }
                if !selected.contains(p.second) {
                    c += graph.arc(p.second).cost;
                }
                (c, i)
            })
            .collect();
        marginal.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let path_cost: f64 = marginal.iter().take(r + 1).map(|(c, _)| *c).sum();

        if path_cost < arc_cost {
            for &(_, i) in marginal.iter().take(r + 1) {
                let p = paths[i];
                selected.insert(p.first);
                selected.insert(p.second);
            }
            covered_by_paths += 1;
        } else {
            selected.insert(arc_id);
            bought_directly += 1;
        }
    }

    let cost = graph
        .arc_set_cost(&selected)
        .expect("selected arcs come from the graph");
    GreedyCoverResult {
        arcs: selected,
        cost,
        bought_directly,
        covered_by_paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn output_is_always_valid_on_random_digraphs() {
        for seed in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generate::directed_gnp(
                14,
                0.4,
                generate::WeightKind::Uniform { min: 0.5, max: 3.0 },
                &mut rng,
            );
            for r in 0..3usize {
                let result = greedy_ft_two_spanner(&g, r);
                assert!(
                    verify::is_ft_two_spanner(&g, &result.arcs, r),
                    "invalid greedy cover at seed {seed}, r = {r}"
                );
                assert!(result.cost <= g.total_cost() + 1e-9);
                // Every arc is decided at most once (bought, covered, or
                // skipped because an earlier decision already bought it).
                assert!(result.bought_directly + result.covered_by_paths <= g.arc_count());
            }
        }
    }

    #[test]
    fn gap_gadget_keeps_the_cheap_cover_when_possible() {
        // With r = 1 and three midpoints, covering the expensive arc by two
        // 2-paths costs 4, far below M = 100.
        let g = generate::gap_gadget(3, 100.0).unwrap();
        let result = greedy_ft_two_spanner(&g, 1);
        assert!(verify::is_ft_two_spanner(&g, &result.arcs, 1));
        assert!(result.cost < 100.0);
        assert_eq!(result.covered_by_paths, 1);

        // With r = 3 only three midpoints exist, so the expensive arc cannot
        // be covered by r + 1 = 4 paths and must be bought.
        let forced = greedy_ft_two_spanner(&g, 3);
        assert!(verify::is_ft_two_spanner(&g, &forced.arcs, 3));
        assert!(forced.cost >= 100.0);
    }

    #[test]
    fn complete_digraph_matches_degree_lower_bound_shape() {
        let g = generate::complete_digraph(7);
        for r in 0..3usize {
            let result = greedy_ft_two_spanner(&g, r);
            assert!(verify::is_ft_two_spanner(&g, &result.arcs, r));
            let lower = crate::lower_bounds::directed_size_lower_bound(&g, r);
            assert!(result.size() >= lower);
            // The greedy solution is never more than buying everything.
            assert!(result.size() <= g.arc_count());
        }
    }

    #[test]
    fn unit_cost_star_digraph_buys_everything() {
        // A digraph where no arc has any 2-path must be bought wholesale.
        let mut g = DiGraph::new(5);
        for v in 1..5 {
            g.add_arc(
                ftspan_graph::NodeId::new(0),
                ftspan_graph::NodeId::new(v),
                1.0,
            )
            .unwrap();
        }
        let result = greedy_ft_two_spanner(&g, 1);
        assert_eq!(result.size(), 4);
        assert_eq!(result.bought_directly, 4);
        assert_eq!(result.covered_by_paths, 0);
        assert_eq!(result.cost, 4.0);
    }

    #[test]
    fn empty_digraph_yields_empty_result() {
        let g = DiGraph::new(3);
        let result = greedy_ft_two_spanner(&g, 2);
        assert_eq!(result.size(), 0);
        assert_eq!(result.cost, 0.0);
    }
}
