//! The length-2 path index `P_{u,v}`.

use ftspan_graph::{ArcId, DiGraph, NodeId};

/// A directed length-2 path `u -> w -> v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoPath {
    /// The intermediate vertex `w`.
    pub midpoint: NodeId,
    /// The arc `u -> w`.
    pub first: ArcId,
    /// The arc `w -> v`.
    pub second: ArcId,
}

/// For every arc `(u, v)` of a digraph, the set `P_{u,v}` of length-2 paths
/// from `u` to `v` (excluding the arc itself), exactly as used by LP (3) and
/// LP (4) of the paper.
///
/// # Example
///
/// ```
/// use ftspan_core::two_spanner::TwoPathIndex;
/// use ftspan_graph::{generate, ArcId};
///
/// let g = generate::gap_gadget(3, 10.0)?;
/// let index = TwoPathIndex::build(&g);
/// // The expensive arc (u, v) is arc 0 and has 3 parallel 2-paths.
/// assert_eq!(index.paths(ArcId::new(0)).len(), 3);
/// # Ok::<(), ftspan_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPathIndex {
    per_arc: Vec<Vec<TwoPath>>,
}

impl TwoPathIndex {
    /// Builds the index for every arc of `graph`.
    pub fn build(graph: &DiGraph) -> Self {
        let mut per_arc = Vec::with_capacity(graph.arc_count());
        for (_, arc) in graph.arcs() {
            let mut paths = Vec::new();
            for (w, first) in graph.out_incident(arc.tail) {
                if w == arc.head {
                    continue;
                }
                if let Some(second) = graph.find_arc(w, arc.head) {
                    paths.push(TwoPath {
                        midpoint: w,
                        first,
                        second,
                    });
                }
            }
            per_arc.push(paths);
        }
        TwoPathIndex { per_arc }
    }

    /// The 2-paths covering arc `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of bounds.
    pub fn paths(&self, a: ArcId) -> &[TwoPath] {
        &self.per_arc[a.index()]
    }

    /// Number of arcs indexed.
    pub fn arc_count(&self) -> usize {
        self.per_arc.len()
    }

    /// Total number of (arc, 2-path) pairs — the number of flow variables in
    /// the LP relaxations.
    pub fn total_paths(&self) -> usize {
        self.per_arc.iter().map(Vec::len).sum()
    }

    /// The largest number of 2-paths over any single arc.
    pub fn max_paths_per_arc(&self) -> usize {
        self.per_arc.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;

    #[test]
    fn gap_gadget_paths() {
        let g = generate::gap_gadget(4, 100.0).unwrap();
        let idx = TwoPathIndex::build(&g);
        assert_eq!(idx.arc_count(), 9);
        assert_eq!(idx.paths(ArcId::new(0)).len(), 4);
        assert_eq!(idx.max_paths_per_arc(), 4);
        // Unit arcs (u, w_i) and (w_i, v) have no 2-path alternatives.
        for a in 1..9 {
            assert!(idx.paths(ArcId::new(a)).is_empty());
        }
        assert_eq!(idx.total_paths(), 4);
    }

    #[test]
    fn complete_digraph_paths() {
        let g = generate::complete_digraph(5);
        let idx = TwoPathIndex::build(&g);
        // Every arc (u, v) has n - 2 = 3 midpoints in K_5.
        for (a, _) in g.arcs() {
            assert_eq!(idx.paths(a).len(), 3);
        }
        assert_eq!(idx.total_paths(), 20 * 3);
    }

    #[test]
    fn paths_reference_real_arcs() {
        let g = generate::complete_digraph(4);
        let idx = TwoPathIndex::build(&g);
        for (a, arc) in g.arcs() {
            for p in idx.paths(a) {
                assert_eq!(g.arc(p.first).tail, arc.tail);
                assert_eq!(g.arc(p.first).head, p.midpoint);
                assert_eq!(g.arc(p.second).tail, p.midpoint);
                assert_eq!(g.arc(p.second).head, arc.head);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = ftspan_graph::DiGraph::new(3);
        let idx = TwoPathIndex::build(&g);
        assert_eq!(idx.arc_count(), 0);
        assert_eq!(idx.total_paths(), 0);
        assert_eq!(idx.max_paths_per_arc(), 0);
    }
}
