//! Minimum-cost `r`-fault-tolerant 2-spanners (Section 3 of the paper).
//!
//! The problem: given a directed graph with arc costs (and unit lengths),
//! find a minimum-cost arc subset `H` such that after *any* `r` vertex
//! failures, every surviving arc of the input is either in `H` or has a
//! surviving path of length 2 in `H`. Lemma 3.1 shows this is equivalent to
//! the static condition "every arc is bought or covered by at least `r + 1`
//! two-paths", which is what everything below works with.
//!
//! * [`paths`] — the length-2 path index `P_{u,v}`.
//! * [`relaxation`] — LP (3), the knapsack-cover inequalities of LP (4), and
//!   the Lemma 3.2 separation oracle.
//! * [`rounding`] — Algorithm 1 (per-vertex random thresholds) and the
//!   Theorem 3.3 `O(log n)`-approximation driver.
//! * [`lll`] — the Theorem 3.4 `O(log Δ)` bounded-degree variant using
//!   Moser–Tardos resampling.
//! * [`greedy_cover`] — an LP-free greedy heuristic that maintains the
//!   Lemma 3.1 invariant directly (always valid, no approximation
//!   guarantee); the practical comparison point in the experiments.

pub mod greedy_cover;
pub mod lll;
pub mod paths;
pub mod relaxation;
pub mod rounding;

pub use greedy_cover::{greedy_ft_two_spanner, GreedyCoverResult};
pub use lll::{bounded_degree_two_spanner, LllConfig, LllResult};
pub use paths::{TwoPath, TwoPathIndex};
pub use relaxation::{solve_relaxation, FractionalSolution, RelaxationConfig};
pub use rounding::{approximate_two_spanner, round_thresholds, ApproxConfig, ApproxResult};
