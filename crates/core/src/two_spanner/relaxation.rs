//! The LP relaxations of Section 3: LP (3), the knapsack-cover inequalities
//! of LP (4), and the Lemma 3.2 separation oracle.
//!
//! Variables: a capacity variable `x_a ∈ [0, 1]` for every arc `a`, and a
//! flow variable `f_{a,P} ≥ 0` for every arc `a = (u, v)` and every length-2
//! path `P ∈ P_{u,v}`. Because a 2-path is identified by its midpoint, each
//! capacity constraint of the paper collapses to the pair of constraints
//! `f_{a,P} ≤ x_{first(P)}` and `f_{a,P} ≤ x_{second(P)}`.
//!
//! LP (3) additionally has, per arc, the covering constraint
//! `(r+1)·x_a + Σ_P f_{a,P} ≥ r+1`. LP (4) adds the knapsack-cover
//! inequalities `(r+1−|W|)·x_a + Σ_{P∉W} f_{a,P} ≥ r+1−|W|` for every
//! `W ⊆ P_{u,v}` with `|W| ≤ r`; these are generated lazily by the
//! internal knapsack-cover oracle, which implements the separation routine of
//! Lemma 3.2 (it suffices to check, for each arc and each `w ≤ r`, the `w`
//! paths carrying the most flow).

use super::paths::TwoPathIndex;
use crate::par;
use crate::Result;
use ftspan_graph::{ArcId, DiGraph};
use ftspan_lp::{
    cutting_plane_solve_with_resolve_budget, Constraint, ConstraintOp, CutStats, LpProblem,
    SeparationOracle, SimplexSolver,
};

/// Configuration of the LP relaxation solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxationConfig {
    /// Number of vertex faults `r` to tolerate.
    pub faults: usize,
    /// Whether to add the knapsack-cover inequalities of LP (4). With
    /// `false` only LP (3) is solved — this is what the DK10 baseline and the
    /// integrality-gap experiment use.
    pub knapsack_cover: bool,
    /// Maximum number of cutting-plane rounds.
    pub max_cut_rounds: usize,
    /// Violation tolerance of the separation oracle.
    pub separation_tolerance: f64,
    /// Worker threads for the separation oracle's per-arc scan (the Lemma 3.2
    /// round is independent per arc). Cuts are emitted in arc order, so the
    /// solve is identical at any worker count.
    pub threads: usize,
}

impl RelaxationConfig {
    /// The paper's LP (4) configuration for `faults` failures.
    pub fn new(faults: usize) -> Self {
        RelaxationConfig {
            faults,
            knapsack_cover: true,
            max_cut_rounds: 50,
            separation_tolerance: 1e-7,
            threads: 1,
        }
    }

    /// The weaker LP (3) (no knapsack-cover inequalities).
    pub fn without_knapsack_cover(mut self) -> Self {
        self.knapsack_cover = false;
        self
    }

    /// Grants the separation oracle up to `threads` workers (clamped to at
    /// least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// An optimal fractional solution of the relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalSolution {
    /// Capacity value `x_a` per arc (indexed by arc id).
    pub x: Vec<f64>,
    /// Flow values per arc and per 2-path, in the order of
    /// [`TwoPathIndex::paths`].
    pub flows: Vec<Vec<f64>>,
    /// The optimal objective value — a lower bound on the cost of every
    /// integral `r`-fault-tolerant 2-spanner.
    pub objective: f64,
    /// Cutting-plane statistics (1 round and 0 cuts when knapsack-cover
    /// inequalities are disabled).
    pub cuts: CutStats,
}

/// Index layout of the LP variables: arcs first, then flow variables grouped
/// by arc.
#[derive(Debug, Clone)]
struct VariableLayout {
    arc_count: usize,
    /// Start offset of the flow block of each arc (relative to `arc_count`).
    flow_offsets: Vec<usize>,
    total_vars: usize,
}

impl VariableLayout {
    fn new(index: &TwoPathIndex) -> Self {
        let arc_count = index.arc_count();
        let mut flow_offsets = Vec::with_capacity(arc_count);
        let mut cursor = 0usize;
        for a in 0..arc_count {
            flow_offsets.push(cursor);
            cursor += index.paths(ArcId::new(a)).len();
        }
        VariableLayout {
            arc_count,
            flow_offsets,
            total_vars: arc_count + cursor,
        }
    }

    fn x_var(&self, arc: usize) -> usize {
        arc
    }

    fn f_var(&self, arc: usize, path: usize) -> usize {
        self.arc_count + self.flow_offsets[arc] + path
    }
}

/// The Lemma 3.2 separation oracle for knapsack-cover inequalities.
#[derive(Debug)]
struct KnapsackCoverOracle {
    layout: VariableLayout,
    paths_per_arc: Vec<usize>,
    faults: usize,
    tolerance: f64,
    threads: usize,
}

impl KnapsackCoverOracle {
    /// The most violated knapsack-cover cut for one arc, if any.
    fn separate_arc(&self, values: &[f64], arc: usize) -> Option<Constraint> {
        let r = self.faults;
        let path_count = self.paths_per_arc[arc];
        if path_count == 0 {
            return None;
        }
        let x = values[self.layout.x_var(arc)];
        // Flow values sorted in non-increasing order, remembering which
        // path they belong to.
        let mut flows: Vec<(usize, f64)> = (0..path_count)
            .map(|p| (p, values[self.layout.f_var(arc, p)]))
            .collect();
        flows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        // For each prefix size w (= |W|), check the inequality with W the
        // w largest flows; keep only the most violated one for this arc.
        let mut best: Option<(f64, usize)> = None; // (violation, w)
        let mut prefix_sum = 0.0;
        let total: f64 = flows.iter().map(|&(_, f)| f).sum();
        for w in 1..=r.min(path_count) {
            prefix_sum += flows[w - 1].1;
            let need = (r + 1 - w) as f64;
            let lhs = need * x + (total - prefix_sum);
            let violation = need - lhs;
            if violation > self.tolerance {
                match best {
                    Some((v, _)) if v >= violation => {}
                    _ => best = Some((violation, w)),
                }
            }
        }
        let (_, w) = best?;
        let need = (r + 1 - w) as f64;
        let excluded: std::collections::HashSet<usize> =
            flows.iter().take(w).map(|&(p, _)| p).collect();
        let mut coeffs = vec![(self.layout.x_var(arc), need)];
        for p in 0..path_count {
            if !excluded.contains(&p) {
                coeffs.push((self.layout.f_var(arc, p), 1.0));
            }
        }
        Some(Constraint::new(coeffs, ConstraintOp::Ge, need))
    }
}

impl SeparationOracle for KnapsackCoverOracle {
    fn separate(&mut self, values: &[f64]) -> Vec<Constraint> {
        // The Lemma 3.2 round is independent per arc; fan the scan across the
        // pool and keep the cuts in arc order so the cutting-plane solve is
        // identical at any worker count.
        par::map(self.threads, self.layout.arc_count, |arc| {
            self.separate_arc(values, arc)
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Builds LP (3) for `graph` and `faults`, returning the problem and the
/// variable layout.
fn build_base_lp(
    graph: &DiGraph,
    index: &TwoPathIndex,
    faults: usize,
) -> (LpProblem, VariableLayout) {
    let layout = VariableLayout::new(index);
    let mut lp = LpProblem::minimize(layout.total_vars);

    // Objective and multiplicity constraints on the x variables.
    for (a, arc) in graph.arcs() {
        lp.set_objective(layout.x_var(a.index()), arc.cost);
        lp.set_upper_bound(layout.x_var(a.index()), 1.0);
    }

    let r1 = (faults + 1) as f64;
    for (a, _) in graph.arcs() {
        let ai = a.index();
        let paths = index.paths(a);
        // Capacity constraints: f_{a,P} <= x_e for both arcs of P.
        for (p, path) in paths.iter().enumerate() {
            let f = layout.f_var(ai, p);
            lp.add_constraint(
                vec![(f, 1.0), (layout.x_var(path.first.index()), -1.0)],
                ConstraintOp::Le,
                0.0,
            );
            lp.add_constraint(
                vec![(f, 1.0), (layout.x_var(path.second.index()), -1.0)],
                ConstraintOp::Le,
                0.0,
            );
        }
        // Covering constraint: (r+1) x_a + sum_P f_{a,P} >= r+1.
        let mut coeffs = vec![(layout.x_var(ai), r1)];
        for p in 0..paths.len() {
            coeffs.push((layout.f_var(ai, p), 1.0));
        }
        lp.add_constraint(coeffs, ConstraintOp::Ge, r1);
    }
    (lp, layout)
}

/// Solves the LP relaxation of the minimum-cost `r`-fault-tolerant 2-spanner
/// problem on `graph`.
///
/// With [`RelaxationConfig::knapsack_cover`] enabled this is LP (4), solved
/// by cutting planes with the Lemma 3.2 separation oracle; otherwise it is
/// plain LP (3).
///
/// # Errors
///
/// Returns an error if the LP solver fails; for well-formed digraphs the
/// relaxation is always feasible (set every `x_a = 1`), so an error indicates
/// a numerical problem.
pub fn solve_relaxation(graph: &DiGraph, config: &RelaxationConfig) -> Result<FractionalSolution> {
    let index = TwoPathIndex::build(graph);
    let (mut lp, layout) = build_base_lp(graph, &index, config.faults);
    let solver = SimplexSolver::default();

    let (solution, cuts) = if config.knapsack_cover {
        // Knapsack-cover cut systems are heavily degenerate and a re-solve
        // can crawl for hundreds of thousands of pivots with negligible
        // objective movement. Cap the pivot budget of the *re-solves* only
        // (the base LP keeps the full default budget): when a round exceeds
        // it, the previous round's optimum is returned, which is the exact
        // optimum of a valid (slightly weaker) relaxation — still a correct
        // lower bound and rounding input.
        let resolve_solver = SimplexSolver {
            max_iterations: 40_000,
            ..solver
        };
        let mut oracle = KnapsackCoverOracle {
            paths_per_arc: (0..index.arc_count())
                .map(|a| index.paths(ArcId::new(a)).len())
                .collect(),
            layout: layout.clone(),
            faults: config.faults,
            tolerance: config.separation_tolerance,
            threads: config.threads.max(1),
        };
        cutting_plane_solve_with_resolve_budget(
            &mut lp,
            &solver,
            &resolve_solver,
            &mut oracle,
            config.max_cut_rounds,
        )?
    } else {
        let s = solver.solve(&lp)?;
        (
            s,
            CutStats {
                rounds: 1,
                cuts_added: 0,
                separated_to_optimality: true,
            },
        )
    };

    let x: Vec<f64> = (0..graph.arc_count())
        .map(|a| solution.values[layout.x_var(a)].clamp(0.0, 1.0))
        .collect();
    let flows: Vec<Vec<f64>> = (0..graph.arc_count())
        .map(|a| {
            (0..index.paths(ArcId::new(a)).len())
                .map(|p| solution.values[layout.f_var(a, p)].max(0.0))
                .collect()
        })
        .collect();
    Ok(FractionalSolution {
        x,
        flows,
        objective: solution.objective,
        cuts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;

    #[test]
    fn gap_gadget_lp3_is_fooled_but_lp4_is_not() {
        // Section 3.2: the costly-arc gadget has an Ω(r) gap for LP (3) but
        // the knapsack-cover inequalities force the expensive arc to be
        // bought fractionally in full.
        let r = 3;
        let expensive = 60.0;
        let g = generate::gap_gadget(r, expensive).unwrap();

        let weak =
            solve_relaxation(&g, &RelaxationConfig::new(r).without_knapsack_cover()).unwrap();
        let strong = solve_relaxation(&g, &RelaxationConfig::new(r)).unwrap();

        // LP (3): x_(u,v) = 1/(r+1) suffices, so the objective is about
        // expensive/(r+1) + 2r.
        let weak_expected = expensive / (r as f64 + 1.0) + 2.0 * r as f64;
        assert!(
            (weak.objective - weak_expected).abs() < 1e-4,
            "LP(3) objective {} expected {}",
            weak.objective,
            weak_expected
        );
        // LP (4): only r 2-paths exist, so the knapsack-cover constraint with
        // W = all paths forces x_(u,v) = 1; the optimum buys everything.
        let strong_expected = expensive + 2.0 * r as f64;
        assert!(
            (strong.objective - strong_expected).abs() < 1e-4,
            "LP(4) objective {} expected {}",
            strong.objective,
            strong_expected
        );
        assert!(strong.cuts.cuts_added > 0);
        assert!(strong.cuts.separated_to_optimality);
    }

    #[test]
    fn complete_digraph_lp_is_below_the_integral_optimum() {
        // On K_n with unit costs, every integral r-fault-tolerant 2-spanner
        // must give each vertex out-degree at least min(n-1, r+1) (otherwise
        // some omitted out-arc has fewer than r+1 two-paths), so OPT >=
        // (r+1)·n arcs. The symmetric fractional solution of LP (3) sets
        // every x_e = (r+1)/(n+r-1), which is strictly cheaper — the LP gap
        // the E5 experiment quantifies.
        let n = 7usize;
        let r = 3usize;
        let g = generate::complete_digraph(n);
        let weak =
            solve_relaxation(&g, &RelaxationConfig::new(r).without_knapsack_cover()).unwrap();
        let symmetric = (n * (n - 1)) as f64 * (r + 1) as f64 / (n + r - 1) as f64;
        // The dense simplex accumulates a little floating-point drift on this
        // ~1000-row instance; allow a small absolute slack.
        assert!(
            weak.objective <= symmetric + 1e-2,
            "LP(3) objective {} exceeds the symmetric feasible value {}",
            weak.objective,
            symmetric
        );
        let integral_lower_bound = ((r + 1) * n) as f64;
        assert!(
            weak.objective < integral_lower_bound,
            "LP(3) objective {} should be below the integral lower bound {}",
            weak.objective,
            integral_lower_bound
        );
    }

    #[test]
    fn lp_objective_is_lower_bound_on_buying_everything() {
        let g = generate::complete_digraph(5);
        let sol = solve_relaxation(&g, &RelaxationConfig::new(1)).unwrap();
        assert!(sol.objective <= g.total_cost() + 1e-6);
        assert_eq!(sol.x.len(), g.arc_count());
        assert_eq!(sol.flows.len(), g.arc_count());
    }

    #[test]
    fn zero_faults_matches_plain_two_spanner_relaxation() {
        // With r = 0 the covering constraint is x_a + sum f >= 1: the classic
        // fractional 2-spanner LP. On the gadget the cheap 2-paths cover the
        // expensive arc entirely.
        let g = generate::gap_gadget(2, 50.0).unwrap();
        let sol = solve_relaxation(&g, &RelaxationConfig::new(0)).unwrap();
        assert!(sol.objective <= 2.0 * 2.0 + 1.0 + 1e-6);
        // The expensive arc should not be (fully) bought.
        assert!(sol.x[0] < 0.6);
    }

    #[test]
    fn arcs_without_two_paths_must_be_bought() {
        // A single arc with no 2-paths: the LP must set x = 1 regardless of r.
        let g = ftspan_graph::DiGraph::from_arcs(2, [(0, 1, 7.0)]).unwrap();
        for r in [0usize, 2] {
            let sol = solve_relaxation(&g, &RelaxationConfig::new(r)).unwrap();
            assert!((sol.x[0] - 1.0).abs() < 1e-6);
            assert!((sol.objective - 7.0).abs() < 1e-6);
        }
    }
}
