//! Algorithm 1 (threshold rounding) and the Theorem 3.3 driver.

use super::relaxation::{solve_relaxation, FractionalSolution, RelaxationConfig};
use crate::{CoreError, Result};
use ftspan_graph::verify::two_spanner_violations;
use ftspan_graph::{ArcSet, DiGraph};
use ftspan_lp::CutStats;
use rand::Rng;
use rand::RngCore;

/// Algorithm 1 of the paper: every vertex `v` draws an independent uniform
/// threshold `T_v ∈ [0, 1]`, and the output buys every arc `(u, v)` with
/// `min(T_u, T_v) ≤ α · x_{(u,v)}`.
///
/// Returns the selected arcs and the drawn thresholds (the thresholds are
/// re-used by the Lovász-Local-Lemma resampling of Theorem 3.4).
///
/// # Panics
///
/// Panics if `x` does not have one entry per arc of `graph`.
pub fn round_thresholds(
    graph: &DiGraph,
    x: &[f64],
    alpha: f64,
    rng: &mut dyn RngCore,
) -> (ArcSet, Vec<f64>) {
    assert_eq!(
        x.len(),
        graph.arc_count(),
        "fractional solution does not match the digraph"
    );
    let thresholds: Vec<f64> = (0..graph.node_count()).map(|_| rng.gen::<f64>()).collect();
    let arcs = select_with_thresholds(graph, x, alpha, &thresholds);
    (arcs, thresholds)
}

/// The deterministic part of Algorithm 1: applies fixed thresholds to a
/// fractional solution.
pub(crate) fn select_with_thresholds(
    graph: &DiGraph,
    x: &[f64],
    alpha: f64,
    thresholds: &[f64],
) -> ArcSet {
    let mut arcs = graph.empty_arc_set();
    for (id, arc) in graph.arcs() {
        let t = thresholds[arc.tail.index()].min(thresholds[arc.head.index()]);
        if t <= alpha * x[id.index()] {
            arcs.insert(id);
        }
    }
    arcs
}

/// Configuration of the Theorem 3.3 approximation algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// Number of vertex faults `r` to tolerate.
    pub faults: usize,
    /// The constant `C` in the inflation factor `α = C · ln n`.
    pub alpha_constant: f64,
    /// Whether to strengthen the relaxation with knapsack-cover inequalities
    /// (LP (4), the paper's choice). Disabling this reproduces the weaker
    /// relaxation whose rounding needs `α = Θ(r log n)` (the DK10 baseline).
    pub knapsack_cover: bool,
    /// Maximum number of cutting-plane rounds for the relaxation.
    pub max_cut_rounds: usize,
    /// If `true` (default), any arc still violating the Lemma 3.1
    /// characterization after rounding is added outright. The paper's
    /// analysis makes this unnecessary with high probability; the repair
    /// keeps the implementation's output *always* valid and its extent is
    /// reported in [`ApproxResult::repaired_arcs`].
    pub repair: bool,
    /// Worker threads for the relaxation's separation-oracle rounds (see
    /// [`RelaxationConfig::threads`]); the solve is identical at any count.
    pub threads: usize,
}

impl ApproxConfig {
    /// The paper's configuration for `faults` failures (`α = 3 ln n`,
    /// knapsack-cover on, repair on).
    pub fn new(faults: usize) -> Self {
        ApproxConfig {
            faults,
            alpha_constant: 3.0,
            knapsack_cover: true,
            max_cut_rounds: 50,
            repair: true,
            threads: 1,
        }
    }

    /// Grants the separation oracle up to `threads` workers (clamped to at
    /// least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the constant `C` of `α = C ln n`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive.
    pub fn with_alpha_constant(mut self, c: f64) -> Self {
        assert!(c > 0.0, "alpha constant must be positive");
        self.alpha_constant = c;
        self
    }

    /// Disables the post-rounding repair step.
    pub fn without_repair(mut self) -> Self {
        self.repair = false;
        self
    }
}

/// Output of the Theorem 3.3 approximation.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxResult {
    /// The arcs of the `r`-fault-tolerant 2-spanner.
    pub arcs: ArcSet,
    /// Total cost of the selected arcs.
    pub cost: f64,
    /// Optimal value of the LP relaxation — a lower bound on OPT, so
    /// `cost / lp_objective` bounds the realized approximation ratio.
    pub lp_objective: f64,
    /// The inflation factor `α` that was used.
    pub alpha: f64,
    /// Number of arcs added by the repair step (0 in the typical case).
    pub repaired_arcs: usize,
    /// Cutting-plane statistics of the relaxation solve.
    pub cut_stats: CutStats,
    /// The fractional solution the rounding started from.
    pub fractional: FractionalSolution,
}

impl ApproxResult {
    /// The realized approximation ratio relative to the LP lower bound
    /// (`infinity` if the LP value is 0, which only happens on graphs with no
    /// arcs of positive cost).
    pub fn ratio_vs_lp(&self) -> f64 {
        if self.lp_objective <= f64::EPSILON {
            if self.cost <= f64::EPSILON {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.cost / self.lp_objective
        }
    }
}

/// The Theorem 3.3 algorithm: solve LP (4) and round with per-vertex
/// thresholds inflated by `α = C ln n`, yielding an
/// `O(log n)`-approximation for minimum-cost `r`-fault-tolerant 2-spanner
/// (independent of `r`).
///
/// # Errors
///
/// Returns [`CoreError::Lp`] if the relaxation cannot be solved and
/// [`CoreError::InvalidParameter`] if the graph has no vertices.
///
/// # Example
///
/// ```
/// use ftspan_core::two_spanner::{approximate_two_spanner, ApproxConfig};
/// use ftspan_graph::{generate, verify};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
/// let g = generate::directed_gnp(12, 0.5, generate::WeightKind::Unit, &mut rng);
/// let result = approximate_two_spanner(&g, &ApproxConfig::new(1), &mut rng)?;
/// assert!(verify::is_ft_two_spanner(&g, &result.arcs, 1));
/// assert!(result.cost <= g.total_cost());
/// # Ok(())
/// # }
/// ```
pub fn approximate_two_spanner(
    graph: &DiGraph,
    config: &ApproxConfig,
    rng: &mut dyn RngCore,
) -> Result<ApproxResult> {
    if graph.node_count() == 0 {
        return Err(CoreError::InvalidParameter {
            message: "cannot build a 2-spanner of a graph with no vertices".to_string(),
        });
    }
    let relax_cfg = RelaxationConfig {
        faults: config.faults,
        knapsack_cover: config.knapsack_cover,
        max_cut_rounds: config.max_cut_rounds,
        separation_tolerance: 1e-7,
        threads: config.threads.max(1),
    };
    let fractional = solve_relaxation(graph, &relax_cfg)?;
    let alpha = config.alpha_constant * (graph.node_count().max(2) as f64).ln();
    let (arcs, _thresholds) = round_thresholds(graph, &fractional.x, alpha, rng);
    finalize(graph, config, fractional, alpha, arcs)
}

/// Rounds an externally-computed fractional solution (used by the distributed
/// algorithm, which assembles `x` from per-cluster LPs before rounding
/// locally).
pub fn round_fractional_solution(
    graph: &DiGraph,
    config: &ApproxConfig,
    fractional: FractionalSolution,
    rng: &mut dyn RngCore,
) -> Result<ApproxResult> {
    let alpha = config.alpha_constant * (graph.node_count().max(2) as f64).ln();
    let (arcs, _thresholds) = round_thresholds(graph, &fractional.x, alpha, rng);
    finalize(graph, config, fractional, alpha, arcs)
}

fn finalize(
    graph: &DiGraph,
    config: &ApproxConfig,
    fractional: FractionalSolution,
    alpha: f64,
    mut arcs: ArcSet,
) -> Result<ApproxResult> {
    let mut repaired = 0usize;
    if config.repair {
        // Adding a violating arc itself always satisfies it (Lemma 3.1), and
        // never invalidates other arcs, so a single pass suffices.
        for arc in two_spanner_violations(graph, &arcs, config.faults) {
            arcs.insert(arc);
            repaired += 1;
        }
    }
    let cost = graph.arc_set_cost(&arcs)?;
    Ok(ApproxResult {
        cost,
        lp_objective: fractional.objective,
        alpha,
        repaired_arcs: repaired,
        cut_stats: fractional.cuts,
        fractional,
        arcs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;
    use ftspan_graph::verify;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn rounding_includes_saturated_arcs() {
        let g = generate::complete_digraph(4);
        let x = vec![1.0; g.arc_count()];
        let (arcs, thresholds) = round_thresholds(&g, &x, 2.0, &mut rng(1));
        // alpha * x = 2 >= any threshold, so every arc is selected.
        assert_eq!(arcs.len(), g.arc_count());
        assert_eq!(thresholds.len(), g.node_count());
    }

    #[test]
    fn rounding_excludes_zero_arcs() {
        let g = generate::complete_digraph(4);
        let x = vec![0.0; g.arc_count()];
        let (arcs, _) = round_thresholds(&g, &x, 10.0, &mut rng(2));
        // Thresholds are > 0 almost surely, so nothing is selected.
        assert!(arcs.is_empty());
    }

    #[test]
    fn approximation_is_valid_and_bounded_on_random_digraphs() {
        let mut r = rng(3);
        for faults in [0usize, 1, 2] {
            let g = generate::directed_gnp(10, 0.5, generate::WeightKind::Unit, &mut r);
            let result = approximate_two_spanner(&g, &ApproxConfig::new(faults), &mut r).unwrap();
            assert!(
                verify::is_ft_two_spanner(&g, &result.arcs, faults),
                "output is not an {faults}-fault-tolerant 2-spanner"
            );
            assert!(result.cost <= g.total_cost() + 1e-9);
            assert!(result.lp_objective <= result.cost + 1e-6);
            assert!(result.ratio_vs_lp() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn approximation_handles_costs() {
        let mut r = rng(4);
        let g = generate::directed_gnp(
            10,
            0.6,
            generate::WeightKind::Uniform {
                min: 1.0,
                max: 10.0,
            },
            &mut r,
        );
        let result = approximate_two_spanner(&g, &ApproxConfig::new(1), &mut r).unwrap();
        assert!(verify::is_ft_two_spanner(&g, &result.arcs, 1));
        assert!(result.cost <= g.total_cost() + 1e-9);
    }

    #[test]
    fn gap_gadget_forces_expensive_arc() {
        let mut r = rng(5);
        let g = generate::gap_gadget(2, 40.0).unwrap();
        let result = approximate_two_spanner(&g, &ApproxConfig::new(2), &mut r).unwrap();
        // The only valid 2-fault-tolerant spanner buys everything.
        assert_eq!(result.arcs.len(), g.arc_count());
        assert!((result.cost - g.total_cost()).abs() < 1e-9);
        // And the LP lower bound agrees (no integrality gap here thanks to
        // the knapsack-cover inequalities).
        assert!((result.lp_objective - g.total_cost()).abs() < 1e-4);
    }

    #[test]
    fn without_repair_reports_violations_instead_of_fixing() {
        // With a tiny alpha the rounding drops almost everything; without
        // repair the result is allowed to be invalid, with repair it never is.
        let mut r = rng(6);
        let g = generate::complete_digraph(6);
        let cfg = ApproxConfig::new(2)
            .with_alpha_constant(0.01)
            .without_repair();
        let result = approximate_two_spanner(&g, &cfg, &mut r).unwrap();
        let violations = verify::two_spanner_violations(&g, &result.arcs, 2);
        // Tiny alpha: the spanner is essentially empty, so there must be
        // uncovered arcs.
        assert!(!violations.is_empty());

        let mut r2 = rng(6);
        let repaired =
            approximate_two_spanner(&g, &ApproxConfig::new(2).with_alpha_constant(0.01), &mut r2)
                .unwrap();
        assert!(verify::is_ft_two_spanner(&g, &repaired.arcs, 2));
        assert!(repaired.repaired_arcs > 0);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = ftspan_graph::DiGraph::new(0);
        let err = approximate_two_spanner(&g, &ApproxConfig::new(1), &mut rng(7));
        assert!(err.is_err());
    }

    #[test]
    fn ratio_handles_zero_cost_graphs() {
        let g = ftspan_graph::DiGraph::from_arcs(3, [(0, 1, 0.0), (1, 2, 0.0)]).unwrap();
        let result = approximate_two_spanner(&g, &ApproxConfig::new(0), &mut rng(8)).unwrap();
        assert!(result.ratio_vs_lp().is_finite());
    }
}
