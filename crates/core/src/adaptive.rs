//! Adaptive iteration counts for the conversion theorem.
//!
//! Theorem 2.1's `α = Θ(r³ log n)` iterations come from a conservative union
//! bound; in practice far fewer iterations already give a valid
//! `r`-fault-tolerant spanner (the `ablation_alpha` benchmark quantifies
//! this). [`adaptive_fault_tolerant_spanner`] turns that observation into an
//! algorithm: it runs the conversion in small batches and stops as soon as
//! the accumulated union passes a verification battery (sampled random fault
//! sets plus adversarial heuristics, or exhaustive enumeration on small
//! instances).
//!
//! The result is still only correct with respect to the checks that were run
//! — exactly like the paper's "with high probability" guarantee — but it is
//! typically several times smaller and faster to build than the
//! worst-case-α construction, which is what a practical deployment wants.

use crate::conversion::{ConversionParams, FaultTolerantConverter};
use ftspan_graph::faults::{articulation_faults, count_fault_sets, high_degree_faults};
use ftspan_graph::{verify, EdgeSet, Graph};
use ftspan_spanners::SpannerAlgorithm;
use rand::RngCore;

/// How the adaptive construction decides that the union is good enough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingRule {
    /// Exhaustively check every fault set of size at most `r` after each
    /// batch. Only sensible when `Σ_{i≤r} C(n, i)` is small; the constructor
    /// [`AdaptiveConfig::new`] picks this automatically below
    /// [`AdaptiveConfig::EXHAUSTIVE_LIMIT`] fault sets.
    Exhaustive,
    /// Check the given number of sampled random fault sets plus the
    /// adversarial high-degree and articulation-point fault sets.
    Sampled {
        /// Number of random fault sets per verification round.
        samples: usize,
    },
}

/// Configuration of the adaptive conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Number of vertex faults `r` to tolerate.
    pub faults: usize,
    /// Iterations added per batch before re-verifying.
    pub batch: usize,
    /// The verification battery run after each batch.
    pub stopping: StoppingRule,
}

impl AdaptiveConfig {
    /// Above this many fault sets the constructor switches from exhaustive to
    /// sampled verification.
    pub const EXHAUSTIVE_LIMIT: u128 = 20_000;

    /// A configuration for `faults` failures on an `n`-vertex graph, with a
    /// batch size of `max(4, r² )` and an automatically chosen stopping rule.
    pub fn new(faults: usize, n: usize) -> Self {
        let stopping = if count_fault_sets(n, faults) <= Self::EXHAUSTIVE_LIMIT {
            StoppingRule::Exhaustive
        } else {
            StoppingRule::Sampled { samples: 40 }
        };
        AdaptiveConfig {
            faults,
            batch: (faults * faults).max(4),
            stopping,
        }
    }

    /// Overrides the batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// Overrides the stopping rule.
    pub fn with_stopping(mut self, stopping: StoppingRule) -> Self {
        self.stopping = stopping;
        self
    }
}

/// The output of [`adaptive_fault_tolerant_spanner`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    /// The constructed spanner edges.
    pub edges: EdgeSet,
    /// Total iterations of the underlying conversion that were run.
    pub iterations: usize,
    /// The iteration budget Theorem 2.1 would have used (`α`).
    pub theorem_iterations: usize,
    /// `true` if the final verification round passed; `false` means the full
    /// theorem budget was exhausted without the battery passing (the edges
    /// are still returned).
    pub verified: bool,
}

impl AdaptiveResult {
    /// Number of edges in the constructed spanner.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Fraction of the theorem's iteration budget that was actually used.
    pub fn budget_fraction(&self) -> f64 {
        if self.theorem_iterations == 0 {
            1.0
        } else {
            self.iterations as f64 / self.theorem_iterations as f64
        }
    }
}

fn passes(
    graph: &Graph,
    edges: &EdgeSet,
    stretch: f64,
    faults: usize,
    rule: StoppingRule,
    rng: &mut dyn RngCore,
    threads: usize,
) -> bool {
    // One CSR packing per battery, shared by every check; the fault-set
    // sweeps fan out across the construction's workers.
    let oracle = verify::StretchOracle::new(graph, edges).with_threads(threads);
    match rule {
        StoppingRule::Exhaustive => oracle.verify_exhaustive(stretch, faults).is_valid(),
        StoppingRule::Sampled { samples } => {
            let sampled = oracle.verify_sampled(stretch, faults, samples, rng);
            if !sampled.is_valid() {
                return false;
            }
            for adversarial in [
                high_degree_faults(graph, faults),
                articulation_faults(graph, faults),
            ] {
                let dead = adversarial.to_dead_mask(graph.node_count());
                if oracle.max_stretch_masked(Some(&dead), None) > stretch + 1e-9 {
                    return false;
                }
            }
            true
        }
    }
}

/// Runs the Theorem 2.1 conversion in batches, stopping as soon as the union
/// passes the configured verification battery.
///
/// The stretch used for verification is `algorithm.stretch()`. The total
/// number of iterations never exceeds the theorem's own budget
/// `α = Θ(r³ log n)`, so the worst case matches the non-adaptive
/// construction.
///
/// # Example
///
/// ```
/// use ftspan_core::adaptive::{adaptive_fault_tolerant_spanner, AdaptiveConfig};
/// use ftspan_spanners::GreedySpanner;
/// use ftspan_graph::{generate, verify};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let g = generate::gnp(20, 0.5, generate::WeightKind::Unit, &mut rng);
/// let config = AdaptiveConfig::new(1, g.node_count());
/// let result = adaptive_fault_tolerant_spanner(&g, &GreedySpanner::new(3.0), &config, &mut rng);
/// assert!(result.verified);
/// assert!(verify::is_fault_tolerant_k_spanner(&g, &result.edges, 3.0, 1));
/// assert!(result.iterations <= result.theorem_iterations);
/// ```
pub fn adaptive_fault_tolerant_spanner<A>(
    graph: &Graph,
    algorithm: &A,
    config: &AdaptiveConfig,
    rng: &mut dyn RngCore,
) -> AdaptiveResult
where
    A: SpannerAlgorithm + ?Sized,
{
    adaptive_fault_tolerant_spanner_with_threads(graph, algorithm, config, rng, 1)
}

/// [`adaptive_fault_tolerant_spanner`] with both phases parallel: the
/// conversion batches fan their iterations across up to `threads` workers and
/// the verification batteries sweep fault sets across the same pool.
///
/// Every parallel stage follows the [`crate::par`] discipline, and the
/// stop-early decision only consumes stage outputs, so the result is
/// byte-identical at any worker count.
pub fn adaptive_fault_tolerant_spanner_with_threads<A>(
    graph: &Graph,
    algorithm: &A,
    config: &AdaptiveConfig,
    rng: &mut dyn RngCore,
    threads: usize,
) -> AdaptiveResult
where
    A: SpannerAlgorithm + ?Sized,
{
    let stretch = algorithm.stretch();
    let n = graph.node_count();
    let theorem_iterations = ConversionParams::new(config.faults).iterations_for(n);

    let mut union = graph.empty_edge_set();
    let mut iterations = 0usize;
    let mut verified = false;

    while iterations < theorem_iterations {
        let batch = config.batch.min(theorem_iterations - iterations);
        let params = ConversionParams::new(config.faults).with_iterations(batch);
        let partial =
            FaultTolerantConverter::new(params).build_with_threads(graph, algorithm, rng, threads);
        union.union_with(&partial.edges);
        iterations += batch;
        if passes(
            graph,
            &union,
            stretch,
            config.faults,
            config.stopping,
            rng,
            threads,
        ) {
            verified = true;
            break;
        }
    }
    if !verified {
        // One final check so `verified` reflects the returned edge set.
        verified = passes(
            graph,
            &union,
            stretch,
            config.faults,
            config.stopping,
            rng,
            threads,
        );
    }

    AdaptiveResult {
        edges: union,
        iterations,
        theorem_iterations,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;
    use ftspan_spanners::GreedySpanner;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn config_picks_exhaustive_for_small_instances() {
        let small = AdaptiveConfig::new(1, 20);
        assert_eq!(small.stopping, StoppingRule::Exhaustive);
        let large = AdaptiveConfig::new(3, 500);
        assert!(matches!(large.stopping, StoppingRule::Sampled { .. }));
        assert_eq!(AdaptiveConfig::new(3, 10).batch, 9);
        assert_eq!(AdaptiveConfig::new(1, 10).batch, 4);
    }

    #[test]
    #[should_panic]
    fn zero_batch_rejected() {
        AdaptiveConfig::new(1, 10).with_batch(0);
    }

    #[test]
    fn adaptive_uses_fewer_iterations_than_the_theorem() {
        let mut r = rng(31);
        let g = generate::gnp(22, 0.5, generate::WeightKind::Unit, &mut r);
        let config = AdaptiveConfig::new(1, g.node_count());
        let result = adaptive_fault_tolerant_spanner(&g, &GreedySpanner::new(3.0), &config, &mut r);
        assert!(result.verified);
        assert!(result.iterations < result.theorem_iterations);
        assert!(result.budget_fraction() < 1.0);
        assert!(ftspan_graph::verify::is_fault_tolerant_k_spanner(
            &g,
            &result.edges,
            3.0,
            1
        ));
    }

    #[test]
    fn adaptive_handles_r2_with_exhaustive_stopping() {
        let mut r = rng(32);
        let g = generate::connected_gnp(14, 0.4, generate::WeightKind::Unit, &mut r);
        let config = AdaptiveConfig::new(2, g.node_count()).with_batch(16);
        assert_eq!(config.stopping, StoppingRule::Exhaustive);
        let result = adaptive_fault_tolerant_spanner(&g, &GreedySpanner::new(3.0), &config, &mut r);
        // With exhaustive stopping, `verified` is a proof of validity.
        assert!(result.verified);
        assert!(ftspan_graph::verify::is_fault_tolerant_k_spanner(
            &g,
            &result.edges,
            3.0,
            2
        ));
        assert!(result.iterations <= result.theorem_iterations);
    }

    #[test]
    fn sampled_stopping_returns_a_spanner_that_passes_its_battery() {
        let mut r = rng(34);
        let g = generate::connected_gnp(24, 0.3, generate::WeightKind::Unit, &mut r);
        let config = AdaptiveConfig::new(2, g.node_count())
            .with_stopping(StoppingRule::Sampled { samples: 25 })
            .with_batch(16);
        let result = adaptive_fault_tolerant_spanner(&g, &GreedySpanner::new(3.0), &config, &mut r);
        // Sampled verification is evidence, not proof: the returned edges
        // must at least be a plain 3-spanner and satisfy the adversarial
        // heuristics the battery checks.
        assert!(result.verified);
        assert!(ftspan_graph::verify::is_k_spanner(&g, &result.edges, 3.0));
        for adversarial in [high_degree_faults(&g, 2), articulation_faults(&g, 2)] {
            assert!(verify::is_k_spanner_under_faults(
                &g,
                &result.edges,
                3.0,
                &adversarial
            ));
        }
    }

    #[test]
    fn adaptive_on_edgeless_graph_terminates_immediately() {
        let mut r = rng(33);
        let g = Graph::new(6);
        let config = AdaptiveConfig::new(2, 6);
        let result = adaptive_fault_tolerant_spanner(&g, &GreedySpanner::new(3.0), &config, &mut r);
        assert!(result.verified);
        assert_eq!(result.size(), 0);
        assert_eq!(
            result.iterations,
            config.batch.min(result.theorem_iterations)
        );
    }
}
