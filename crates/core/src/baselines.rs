//! Prior-work baselines the paper compares against.
//!
//! * [`ClprStyleBaseline`] — the conceptual form of the Chechik–Langberg–
//!   Peleg–Roditty (STOC 2009) construction, as described in Section 1.1 of
//!   the paper: apply a spanner construction to `G \ F` for every possible
//!   fault set `F` and take the union. Its size grows with the number of
//!   fault sets (exponentially in `r`), which is exactly the behaviour the
//!   conversion theorem improves on; experiment E3 measures the contrast.
//!   (The real CLPR09 algorithm shares the work between fault sets via the
//!   Thorup–Zwick hierarchy, but its size bound keeps the `k^{r+1}` factor —
//!   see DESIGN.md for the substitution note.)
//! * [`dk10_two_spanner`] — the Dinitz–Krauthgamer (arXiv 2010)
//!   `O(r log n)`-approximation for the 2-spanner case: the same threshold
//!   rounding, but applied to the weaker relaxation (no knapsack-cover
//!   inequalities) and therefore needing inflation `α = Θ(r log n)`.
//! * [`buy_everything`] — the trivial upper bound.

use crate::conversion::ConversionResult;
use crate::par;
use crate::two_spanner::{approximate_two_spanner, ApproxConfig, ApproxResult};
use crate::Result;
use ftspan_graph::faults::{enumerate_fault_sets, sample_fault_sets, FaultSet};
use ftspan_graph::{ArcSet, DiGraph, EdgeId, Graph};
use ftspan_spanners::SpannerAlgorithm;
use rand::RngCore;

/// How the CLPR-style baseline enumerates fault sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSetMode {
    /// All fault sets of size at most `r` (exponentially many; small
    /// instances only).
    Exhaustive,
    /// A fixed number of random fault sets of size exactly `r`.
    Sampled(usize),
}

/// The union-over-fault-sets baseline in the spirit of CLPR09.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClprStyleBaseline {
    /// Number of vertex faults to tolerate.
    pub faults: usize,
    /// Fault-set enumeration strategy.
    pub mode: FaultSetMode,
}

impl ClprStyleBaseline {
    /// Exhaustive baseline for `faults` failures.
    pub fn new(faults: usize) -> Self {
        ClprStyleBaseline {
            faults,
            mode: FaultSetMode::Exhaustive,
        }
    }

    /// Uses `count` sampled fault sets instead of exhaustive enumeration.
    pub fn sampled(faults: usize, count: usize) -> Self {
        ClprStyleBaseline {
            faults,
            mode: FaultSetMode::Sampled(count),
        }
    }

    /// Builds the baseline spanner: for each fault set `F`, run `algorithm`
    /// on `G \ F` and union the results.
    ///
    /// The output is returned in the same [`ConversionResult`] shape as the
    /// conversion theorem so the experiments can compare them directly (the
    /// `per_iteration` entries record one entry per fault set).
    pub fn build<A>(&self, graph: &Graph, algorithm: &A, rng: &mut dyn RngCore) -> ConversionResult
    where
        A: SpannerAlgorithm + ?Sized,
    {
        self.build_with_threads(graph, algorithm, rng, 1)
    }

    /// [`ClprStyleBaseline::build`] with the per-fault-set black-box runs
    /// fanned out across up to `threads` workers (the [`crate::par`]
    /// discipline: sequentially derived per-task streams, in-order merge —
    /// output byte-identical at any worker count).
    pub fn build_with_threads<A>(
        &self,
        graph: &Graph,
        algorithm: &A,
        rng: &mut dyn RngCore,
        threads: usize,
    ) -> ConversionResult
    where
        A: SpannerAlgorithm + ?Sized,
    {
        let n = graph.node_count();
        let fault_sets: Vec<FaultSet> = match self.mode {
            FaultSetMode::Exhaustive => enumerate_fault_sets(n, self.faults).collect(),
            FaultSetMode::Sampled(count) => sample_fault_sets(n, self.faults, count, rng),
        };
        let seeds = par::derive_seeds(rng, fault_sets.len());

        let outcomes = par::map(threads, fault_sets.len(), |i| {
            let mut task_rng = par::stream(seeds[i]);
            let dead = fault_sets[i].to_dead_mask(n);
            let (sub, edge_map) = induced_subgraph(graph, &dead);
            let spanner = algorithm.build(&sub, &mut task_rng);
            let edges: Vec<EdgeId> = spanner
                .iter()
                .map(|sub_edge| edge_map[sub_edge.index()])
                .collect();
            let stats = crate::conversion::IterationStats {
                surviving_vertices: n - fault_sets[i].len(),
                surviving_edges: sub.edge_count(),
                spanner_edges: spanner.len(),
                new_edges: 0, // filled during the in-order merge below
            };
            (edges, stats)
        });

        let mut union = graph.empty_edge_set();
        let mut per_iteration = Vec::with_capacity(fault_sets.len());
        for (edges, mut stats) in outcomes {
            for parent in edges {
                if union.insert(parent) {
                    stats.new_edges += 1;
                }
            }
            per_iteration.push(stats);
        }
        ConversionResult {
            edges: union,
            iterations: fault_sets.len(),
            per_iteration,
        }
    }
}

fn induced_subgraph(graph: &Graph, dead: &[bool]) -> (Graph, Vec<EdgeId>) {
    let mut sub = Graph::new(graph.node_count());
    let mut map = Vec::new();
    for (id, e) in graph.edges() {
        if !dead[e.u.index()] && !dead[e.v.index()] {
            sub.add_edge(e.u, e.v, e.weight)
                .expect("edges of a valid graph remain valid in a subgraph");
            map.push(id);
        }
    }
    (sub, map)
}

/// The DK10 baseline for minimum-cost `r`-fault-tolerant 2-spanner: the same
/// rounding scheme, but on the relaxation *without* knapsack-cover
/// inequalities and with inflation `α = C · (r + 1) · ln n` — giving an
/// `O(r log n)` approximation instead of `O(log n)`.
///
/// # Errors
///
/// Same conditions as [`crate::two_spanner::approximate_two_spanner`].
pub fn dk10_two_spanner(
    graph: &DiGraph,
    faults: usize,
    rng: &mut dyn RngCore,
) -> Result<ApproxResult> {
    dk10_two_spanner_with_threads(graph, faults, rng, 1)
}

/// [`dk10_two_spanner`] with the relaxation's separation oracle granted up to
/// `threads` workers (identical output at any count).
pub fn dk10_two_spanner_with_threads(
    graph: &DiGraph,
    faults: usize,
    rng: &mut dyn RngCore,
    threads: usize,
) -> Result<ApproxResult> {
    let config = ApproxConfig {
        faults,
        alpha_constant: 3.0 * (faults + 1) as f64,
        knapsack_cover: false,
        max_cut_rounds: 1,
        repair: true,
        threads: threads.max(1),
    };
    approximate_two_spanner(graph, &config, rng)
}

/// The trivial baseline: buy every arc. Always a valid `r`-fault-tolerant
/// 2-spanner; its cost is the denominator-free upper bound experiments report
/// alongside the LP lower bound.
pub fn buy_everything(graph: &DiGraph) -> ArcSet {
    graph.full_arc_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use ftspan_spanners::GreedySpanner;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn exhaustive_clpr_baseline_is_fault_tolerant() {
        let mut r = rng(1);
        let g = generate::gnp(15, 0.5, generate::WeightKind::Unit, &mut r);
        let baseline = ClprStyleBaseline::new(1);
        let result = baseline.build(&g, &GreedySpanner::new(3.0), &mut r);
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            &result.edges,
            3.0,
            1
        ));
        // One iteration per fault set of size <= 1.
        assert_eq!(
            result.iterations as u128,
            ftspan_graph::faults::count_fault_sets(15, 1)
        );
    }

    #[test]
    fn sampled_clpr_baseline_bounds_work() {
        let mut r = rng(2);
        let g = generate::gnp(20, 0.4, generate::WeightKind::Unit, &mut r);
        let baseline = ClprStyleBaseline::sampled(2, 10);
        let result = baseline.build(&g, &GreedySpanner::new(3.0), &mut r);
        assert_eq!(result.iterations, 10);
        assert!(result.size() <= g.edge_count());
        // Every iteration removed exactly 2 vertices.
        for it in &result.per_iteration {
            assert_eq!(it.surviving_vertices, 18);
        }
    }

    #[test]
    fn clpr_baseline_grows_with_r() {
        let mut r = rng(3);
        let g = generate::gnp(12, 0.6, generate::WeightKind::Unit, &mut r);
        let small = ClprStyleBaseline::new(0).build(&g, &GreedySpanner::new(3.0), &mut r);
        let large = ClprStyleBaseline::new(2).build(&g, &GreedySpanner::new(3.0), &mut r);
        assert!(large.iterations > small.iterations);
        assert!(large.size() >= small.size());
    }

    #[test]
    fn dk10_baseline_is_valid_but_pays_more_inflation() {
        let mut r = rng(4);
        let g = generate::directed_gnp(10, 0.5, generate::WeightKind::Unit, &mut r);
        let result = dk10_two_spanner(&g, 1, &mut r).unwrap();
        assert!(verify::is_ft_two_spanner(&g, &result.arcs, 1));
        // alpha = 3 * (r+1) * ln n, i.e. twice the Theorem 3.3 inflation.
        let expected = 3.0 * 2.0 * (10f64).ln();
        assert!((result.alpha - expected).abs() < 1e-9);
    }

    #[test]
    fn buy_everything_is_always_valid() {
        let g = generate::complete_digraph(6);
        let all = buy_everything(&g);
        assert_eq!(all.len(), g.arc_count());
        for r in 0..4 {
            assert!(verify::is_ft_two_spanner(&g, &all, r));
        }
    }
}
