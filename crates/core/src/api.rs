//! The unified construction API: one trait, one request type, one report
//! type for *every* fault-tolerant spanner construction in the workspace.
//!
//! The paper's central idea is a black-box conversion — a *regular interface*
//! over spanner algorithms — yet the constructions themselves (conversion,
//! 2-spanner approximations, baselines, distributed variants) historically
//! each had a differently-shaped entry point. This module closes that gap:
//!
//! * [`FtSpannerAlgorithm`] — the object-safe trait every construction
//!   implements: `build(GraphInput, &SpannerRequest, &mut dyn RngCore)`
//!   in, [`SpannerReport`] out.
//! * [`SpannerRequest`] — the unified knob set (faults `r`, stretch `k`,
//!   [`FaultModel`], black-box choice, iteration/budget overrides).
//! * [`SpannerReport`] — the unified result: the selected edges (undirected
//!   or directed), size/cost, per-iteration statistics, wall-clock time and
//!   an algorithm provenance string.
//! * [`Registry`] — a string-keyed collection of algorithms so examples and
//!   bench binaries can select constructions by name at runtime; the facade
//!   crate assembles the full registry (centralized + distributed).
//!
//! Implementations for the centralized constructions live in
//! [`crate::algorithms`]; the distributed ones in `ftspan-local`.

use crate::conversion::IterationStats;
use crate::{CoreError, Result};
use ftspan_graph::csr::CsrSubgraph;
use ftspan_graph::stream::GeneratorSpec;
use ftspan_graph::{ArcSet, DiGraph, EdgeSet, Graph};
use ftspan_spanners::BlackBoxKind;
use rand::RngCore;
use std::time::Duration;

/// Which failures a construction protects against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultModel {
    /// Up to `r` vertices may fail (the paper's setting).
    #[default]
    Vertex,
    /// Up to `r` edges may fail (the library's extension).
    Edge,
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultModel::Vertex => "vertex",
            FaultModel::Edge => "edge",
        })
    }
}

/// Which graph family a construction consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFamily {
    /// Undirected graphs with non-negative lengths (stretch `k ≥ 3`).
    Undirected,
    /// Directed graphs with arc costs (the minimum-cost 2-spanner setting).
    Directed,
}

impl std::fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GraphFamily::Undirected => "undirected",
            GraphFamily::Directed => "directed",
        })
    }
}

/// A borrowed input graph, undirected or directed.
///
/// This is what algorithms consume during a build. Callers holding an owned
/// payload — a graph, a pre-packed CSR, or a seeded
/// [`GeneratorSpec`] — should go
/// through [`GraphSource`], which packs the CSR once at the API boundary
/// and lends the algorithm a `GraphInput` view of it.
#[derive(Debug, Clone, Copy)]
pub enum GraphInput<'a> {
    /// An undirected instance.
    Undirected(&'a Graph),
    /// A directed instance.
    Directed(&'a DiGraph),
}

impl<'a> GraphInput<'a> {
    /// The family of this input.
    pub fn family(&self) -> GraphFamily {
        match self {
            GraphInput::Undirected(_) => GraphFamily::Undirected,
            GraphInput::Directed(_) => GraphFamily::Directed,
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        match self {
            GraphInput::Undirected(g) => g.node_count(),
            GraphInput::Directed(g) => g.node_count(),
        }
    }

    /// The undirected graph, or an error mentioning `algorithm`.
    pub fn expect_undirected(&self, algorithm: &str) -> Result<&'a Graph> {
        match self {
            GraphInput::Undirected(g) => Ok(g),
            GraphInput::Directed(_) => Err(CoreError::InvalidParameter {
                message: format!(
                    "algorithm `{algorithm}` builds spanners of undirected graphs; \
                     got a directed input"
                ),
            }),
        }
    }

    /// The directed graph, or an error mentioning `algorithm`.
    pub fn expect_directed(&self, algorithm: &str) -> Result<&'a DiGraph> {
        match self {
            GraphInput::Directed(g) => Ok(g),
            GraphInput::Undirected(_) => Err(CoreError::InvalidParameter {
                message: format!(
                    "algorithm `{algorithm}` solves the directed 2-spanner problem; \
                     got an undirected input"
                ),
            }),
        }
    }
}

impl<'a> From<&'a Graph> for GraphInput<'a> {
    fn from(graph: &'a Graph) -> Self {
        GraphInput::Undirected(graph)
    }
}

impl<'a> From<&'a DiGraph> for GraphInput<'a> {
    fn from(graph: &'a DiGraph) -> Self {
        GraphInput::Directed(graph)
    }
}

/// An *owned* graph input: what a caller hands to the construction boundary
/// (`FtSpannerBuilder::on_graph` in the facade), as opposed to the borrowed
/// [`GraphInput`] the algorithms themselves consume.
///
/// Besides owned [`Graph`]/[`DiGraph`] instances, a source can be a
/// pre-packed CSR (skipping the adjacency-list graph entirely until the
/// boundary) or a seeded [`GeneratorSpec`] (nothing is materialized until
/// the build runs — the spec streams its edges straight into a CSR). The
/// boundary resolves every variant into a graph *plus a CSR packed exactly
/// once*, which serving artifacts adopt instead of re-packing.
///
/// `From` impls exist for all four payloads, so `impl Into<GraphSource>`
/// APIs accept any of them directly.
#[derive(Debug, Clone)]
pub enum GraphSource {
    /// An owned undirected instance.
    Undirected(Graph),
    /// An owned directed instance (2-spanner setting; no CSR involved).
    Directed(DiGraph),
    /// A pre-packed *full* CSR view (`edge_count == parent_edge_count`).
    /// Partial views are rejected at resolution: spanner edge sets refer to
    /// parent-graph edge identifiers the view could not speak for.
    Csr(CsrSubgraph),
    /// A seeded generator description; evaluated lazily at resolution.
    Generated(GeneratorSpec),
}

impl GraphSource {
    /// The family this source resolves to.
    pub fn family(&self) -> GraphFamily {
        match self {
            GraphSource::Directed(_) => GraphFamily::Directed,
            _ => GraphFamily::Undirected,
        }
    }

    /// Number of vertices the source will resolve to (available without
    /// evaluating generators).
    pub fn node_count(&self) -> usize {
        match self {
            GraphSource::Undirected(g) => g.node_count(),
            GraphSource::Directed(g) => g.node_count(),
            GraphSource::Csr(c) => c.node_count(),
            GraphSource::Generated(spec) => spec.node_count(),
        }
    }

    /// Resolves the source into concrete graph data, packing the
    /// undirected CSR exactly once.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for a partial CSR view or
    ///   inconsistent generator parameters.
    /// * [`CoreError::Graph`] if a CSR view cannot be reconstructed into a
    ///   simple graph (duplicate or missing edge identifiers).
    pub fn resolve(self) -> Result<ResolvedSource> {
        match self {
            GraphSource::Undirected(graph) => {
                let csr = CsrSubgraph::from_graph(&graph);
                Ok(ResolvedSource::Undirected { graph, csr })
            }
            GraphSource::Directed(graph) => Ok(ResolvedSource::Directed(graph)),
            GraphSource::Csr(csr) => {
                let graph = csr.to_graph().map_err(CoreError::Graph)?;
                Ok(ResolvedSource::Undirected { graph, csr })
            }
            GraphSource::Generated(spec) => {
                let (graph, csr) = spec.generate_with_csr().map_err(CoreError::Graph)?;
                Ok(ResolvedSource::Undirected { graph, csr })
            }
        }
    }
}

impl From<Graph> for GraphSource {
    fn from(graph: Graph) -> Self {
        GraphSource::Undirected(graph)
    }
}

impl From<DiGraph> for GraphSource {
    fn from(graph: DiGraph) -> Self {
        GraphSource::Directed(graph)
    }
}

impl From<CsrSubgraph> for GraphSource {
    fn from(csr: CsrSubgraph) -> Self {
        GraphSource::Csr(csr)
    }
}

impl From<GeneratorSpec> for GraphSource {
    fn from(spec: GeneratorSpec) -> Self {
        GraphSource::Generated(spec)
    }
}

/// A [`GraphSource`] after resolution: concrete graph data with the
/// undirected CSR packed once at the boundary.
#[derive(Debug, Clone)]
pub enum ResolvedSource {
    /// An undirected instance and its full CSR packing.
    Undirected {
        /// The adjacency-list graph the algorithms consume.
        graph: Graph,
        /// The same graph packed as a full CSR, ready for serving
        /// artifacts to adopt without re-packing.
        csr: CsrSubgraph,
    },
    /// A directed instance.
    Directed(DiGraph),
}

impl ResolvedSource {
    /// A borrowed [`GraphInput`] over the resolved data, as the
    /// [`FtSpannerAlgorithm`] trait expects.
    pub fn as_input(&self) -> GraphInput<'_> {
        match self {
            ResolvedSource::Undirected { graph, .. } => GraphInput::Undirected(graph),
            ResolvedSource::Directed(graph) => GraphInput::Directed(graph),
        }
    }
}

/// The unified parameter set understood by every [`FtSpannerAlgorithm`].
///
/// Every knob has a sensible default; algorithms ignore knobs that do not
/// apply to them (a conversion has no LP inflation constant, a 2-spanner has
/// no stretch knob — its stretch is 2 by definition) and document which ones
/// they read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannerRequest {
    /// Number of faults `r` to tolerate (vertices or edges, per
    /// [`Self::fault_model`]). Default 1.
    pub faults: usize,
    /// Target stretch `k` for the conversion-family algorithms. Directed
    /// 2-spanner algorithms have stretch fixed at 2 and ignore this.
    /// Default 3.
    pub stretch: f64,
    /// Whether vertices or edges fail. Only the conversion-family algorithms
    /// support [`FaultModel::Edge`]. Algorithms whose model is fixed by
    /// construction ignore this knob (`edge-fault` always protects edges;
    /// vertex-only algorithms reject [`FaultModel::Edge`] requests) — the
    /// report's [`SpannerReport::fault_model`] is authoritative for what the
    /// output tolerates. Default [`FaultModel::Vertex`].
    pub fault_model: FaultModel,
    /// The black-box spanner construction used by the conversion-family
    /// algorithms. Default [`BlackBoxKind::Greedy`] (Corollary 2.2's choice).
    pub black_box: BlackBoxKind,
    /// Overrides the iteration count `α` (conversion family) when set.
    pub iterations: Option<usize>,
    /// Multiplier on the default iteration budget (conversion family).
    /// Default 1.0.
    pub scale: f64,
    /// Overrides the constant `C` in the LP rounding inflation (`α = C ln n`
    /// or `C ln Δ`) when set.
    pub alpha_constant: Option<f64>,
    /// Advisory maximum degree of the input; when set, bounded-degree
    /// algorithms validate the input against it.
    pub degree_bound: Option<usize>,
    /// Maximum cutting-plane rounds for LP-based algorithms. Default 50.
    pub max_cut_rounds: usize,
    /// Repetition count `t` of the distributed 2-spanner (Algorithm 2);
    /// `None` uses the paper's `⌈3 ln n⌉`.
    pub repetitions: Option<usize>,
    /// Batch size of the adaptive conversion; `None` picks `max(4, r²)`.
    pub batch: Option<usize>,
    /// Sample count for sampled verification batteries / sampled fault-set
    /// enumeration; `None` lets each algorithm pick its default (and keeps
    /// the CLPR09 baseline exhaustive).
    pub samples: Option<usize>,
    /// Whether LP-rounding algorithms repair any arc left uncovered, keeping
    /// the output always valid. Default `true`.
    pub repair: bool,
    /// Worker threads for the construction's parallel hot paths (per-fault-set
    /// iterations, verification sweeps, separation-oracle rounds). `None`
    /// uses one worker per available CPU; `Some(1)` runs sequentially.
    /// Results are **byte-identical at any worker count** — parallel tasks
    /// draw from derived per-task random streams and land in input order —
    /// so this knob only affects wall-clock time. Default `None`.
    pub threads: Option<usize>,
}

impl Default for SpannerRequest {
    fn default() -> Self {
        SpannerRequest {
            faults: 1,
            stretch: 3.0,
            fault_model: FaultModel::Vertex,
            black_box: BlackBoxKind::Greedy,
            iterations: None,
            scale: 1.0,
            alpha_constant: None,
            degree_bound: None,
            max_cut_rounds: 50,
            repetitions: None,
            batch: None,
            samples: None,
            repair: true,
            threads: None,
        }
    }
}

impl SpannerRequest {
    /// A request tolerating `faults` failures, all other knobs default.
    pub fn new(faults: usize) -> Self {
        SpannerRequest {
            faults,
            ..Self::default()
        }
    }

    /// Sets the target stretch `k`.
    ///
    /// # Panics
    ///
    /// Panics if `stretch < 1`.
    pub fn with_stretch(mut self, stretch: f64) -> Self {
        assert!(stretch >= 1.0, "stretch must be at least 1");
        self.stretch = stretch;
        self
    }

    /// Sets the fault model.
    pub fn with_fault_model(mut self, model: FaultModel) -> Self {
        self.fault_model = model;
        self
    }

    /// Sets the conversion black box.
    pub fn with_black_box(mut self, kind: BlackBoxKind) -> Self {
        self.black_box = kind;
        self
    }

    /// Overrides the iteration count `α`.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Scales the default iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "iteration scale must be positive");
        self.scale = scale;
        self
    }

    /// Overrides the LP inflation constant.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive.
    pub fn with_alpha_constant(mut self, c: f64) -> Self {
        assert!(c > 0.0, "alpha constant must be positive");
        self.alpha_constant = Some(c);
        self
    }

    /// Declares the input's maximum degree (validated by bounded-degree
    /// algorithms).
    pub fn with_degree_bound(mut self, delta: usize) -> Self {
        self.degree_bound = Some(delta);
        self
    }

    /// Sets the maximum cutting-plane rounds.
    pub fn with_max_cut_rounds(mut self, rounds: usize) -> Self {
        self.max_cut_rounds = rounds;
        self
    }

    /// Sets the distributed 2-spanner repetition count `t`.
    pub fn with_repetitions(mut self, t: usize) -> Self {
        self.repetitions = Some(t.max(1));
        self
    }

    /// Sets the adaptive conversion's batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = Some(batch);
        self
    }

    /// Sets the sample count for sampled verification / enumeration.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = Some(samples);
        self
    }

    /// Disables the post-rounding repair step.
    pub fn without_repair(mut self) -> Self {
        self.repair = false;
        self
    }

    /// Sets the worker-thread count for parallel construction hot paths
    /// (clamped to at least 1; results are identical at any count).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The effective worker count: the configured value, or one worker per
    /// available CPU when unset.
    pub fn effective_threads(&self) -> usize {
        ftspan_graph::par::resolve_threads(self.threads)
    }
}

/// The edges selected by a construction, in the representation native to its
/// graph family.
#[derive(Debug, Clone, PartialEq)]
pub enum SpannerEdges {
    /// Edges of an undirected spanner.
    Undirected(EdgeSet),
    /// Arcs of a directed 2-spanner.
    Directed(ArcSet),
}

impl SpannerEdges {
    /// Number of selected edges/arcs.
    pub fn len(&self) -> usize {
        match self {
            SpannerEdges::Undirected(e) => e.len(),
            SpannerEdges::Directed(a) => a.len(),
        }
    }

    /// `true` if nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The undirected edge set, if this is an undirected result.
    pub fn as_undirected(&self) -> Option<&EdgeSet> {
        match self {
            SpannerEdges::Undirected(e) => Some(e),
            SpannerEdges::Directed(_) => None,
        }
    }

    /// The directed arc set, if this is a directed result.
    pub fn as_directed(&self) -> Option<&ArcSet> {
        match self {
            SpannerEdges::Directed(a) => Some(a),
            SpannerEdges::Undirected(_) => None,
        }
    }
}

/// The unified output of every [`FtSpannerAlgorithm`].
///
/// Mandatory fields are filled by every algorithm; the optional ones carry
/// whichever diagnostics the construction naturally produces (LP lower
/// bounds, LOCAL-model round counts, resampling counts, …) so experiment
/// harnesses can report algorithms side by side without downcasting.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannerReport {
    /// Registry name of the algorithm that produced this report.
    pub algorithm: String,
    /// Human-readable provenance, e.g.
    /// `"Theorem 2.1 conversion over greedy (k = 3, r = 2)"`.
    pub provenance: String,
    /// The fault model the output tolerates.
    pub fault_model: FaultModel,
    /// The number of faults `r` the output tolerates.
    pub faults: usize,
    /// The stretch guarantee of the output.
    pub stretch: f64,
    /// The selected edges.
    pub edges: SpannerEdges,
    /// Total weight (undirected) or cost (directed) of the selection.
    pub cost: f64,
    /// Iterations / repetitions the construction ran.
    pub iterations: usize,
    /// Per-iteration statistics where the construction is iterative.
    pub per_iteration: Vec<IterationStats>,
    /// Wall-clock time of the construction.
    pub elapsed: Duration,
    /// LP relaxation optimum (a lower bound on OPT), for LP-based algorithms.
    pub lp_objective: Option<f64>,
    /// The rounding inflation `α` that was used, for LP-based algorithms.
    pub alpha: Option<f64>,
    /// Arcs added by a repair step (0 when rounding succeeded outright).
    pub repaired_arcs: usize,
    /// Moser–Tardos resampling steps (bounded-degree algorithm only).
    pub resamples: Option<usize>,
    /// Knapsack-cover cutting planes added (LP-based algorithms only).
    pub cuts_added: Option<usize>,
    /// LOCAL-model communication rounds (distributed algorithms only).
    pub rounds: Option<usize>,
    /// LOCAL-model messages delivered (distributed algorithms only).
    pub messages: Option<usize>,
    /// Whether a built-in verification battery passed (adaptive conversion).
    pub verified: Option<bool>,
    /// The worst-case iteration budget of the underlying theorem, where the
    /// construction may stop early (adaptive conversion).
    pub theorem_iterations: Option<usize>,
}

impl SpannerReport {
    /// A report skeleton with the mandatory fields set and every optional
    /// diagnostic empty; constructions fill in what they measured.
    pub fn new(
        algorithm: &str,
        provenance: String,
        fault_model: FaultModel,
        faults: usize,
        stretch: f64,
        edges: SpannerEdges,
        cost: f64,
    ) -> Self {
        SpannerReport {
            algorithm: algorithm.to_string(),
            provenance,
            fault_model,
            faults,
            stretch,
            edges,
            cost,
            iterations: 0,
            per_iteration: Vec::new(),
            elapsed: Duration::ZERO,
            lp_objective: None,
            alpha: None,
            repaired_arcs: 0,
            resamples: None,
            cuts_added: None,
            rounds: None,
            messages: None,
            verified: None,
            theorem_iterations: None,
        }
    }

    /// Number of selected edges/arcs.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edge set (`None` for directed results).
    pub fn edge_set(&self) -> Option<&EdgeSet> {
        self.edges.as_undirected()
    }

    /// The directed arc set (`None` for undirected results).
    pub fn arc_set(&self) -> Option<&ArcSet> {
        self.edges.as_directed()
    }

    /// Realized cost over the LP lower bound (`1.0` when both are zero,
    /// `None` when the algorithm produced no LP bound).
    pub fn ratio_vs_lp(&self) -> Option<f64> {
        let lp = self.lp_objective?;
        Some(if lp <= f64::EPSILON {
            if self.cost <= f64::EPSILON {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.cost / lp
        })
    }

    /// Mean vertices surviving the oversampling per iteration (conversion
    /// family; `0.0` when no per-iteration statistics were recorded).
    pub fn mean_surviving_vertices(&self) -> f64 {
        if self.per_iteration.is_empty() {
            return 0.0;
        }
        self.per_iteration
            .iter()
            .map(|s| s.surviving_vertices as f64)
            .sum::<f64>()
            / self.per_iteration.len() as f64
    }

    /// Mean edges surviving the oversampling per iteration (edge-fault
    /// conversion; `0.0` when no per-iteration statistics were recorded).
    pub fn mean_surviving_edges(&self) -> f64 {
        if self.per_iteration.is_empty() {
            return 0.0;
        }
        self.per_iteration
            .iter()
            .map(|s| s.surviving_edges as f64)
            .sum::<f64>()
            / self.per_iteration.len() as f64
    }

    /// Fraction of the theorem's iteration budget actually used (`1.0` for
    /// non-adaptive constructions).
    pub fn budget_fraction(&self) -> f64 {
        match self.theorem_iterations {
            Some(0) | None => 1.0,
            Some(budget) => self.iterations as f64 / budget as f64,
        }
    }
}

/// A fault-tolerant spanner construction behind the uniform interface.
///
/// Implementations are stateless descriptors (the per-call parameters all
/// live in the [`SpannerRequest`]), so a single registry instance can serve
/// any number of builds, including concurrently.
pub trait FtSpannerAlgorithm: Send + Sync {
    /// The stable registry key, e.g. `"conversion"` or `"two-spanner-lp"`.
    fn name(&self) -> &'static str;

    /// The paper result this construction implements, e.g. `"Theorem 2.1"`.
    fn reference(&self) -> &'static str;

    /// One-line human description for listings.
    fn summary(&self) -> &'static str;

    /// The graph family this construction consumes.
    fn graph_family(&self) -> GraphFamily;

    /// The fault model of the *output* for the given request (conversion-family
    /// algorithms honor [`SpannerRequest::fault_model`]; everything else is
    /// vertex-fault only).
    fn fault_model(&self, request: &SpannerRequest) -> FaultModel {
        let _ = request;
        FaultModel::Vertex
    }

    /// The stretch the output guarantees for `request` (2-spanner algorithms
    /// return 2 regardless of [`SpannerRequest::stretch`]).
    fn guaranteed_stretch(&self, request: &SpannerRequest) -> f64 {
        request.stretch
    }

    /// Validates that this construction can serve `request` (independent of
    /// any concrete input graph). [`Self::build`] performs the same check.
    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        let _ = request;
        Ok(())
    }

    /// Builds the fault-tolerant spanner.
    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport>;
}

/// A string-keyed collection of [`FtSpannerAlgorithm`]s.
///
/// The facade crate's `registry()` returns the full set (centralized and
/// distributed); `ftspan-core` exposes only the centralized ones via
/// [`crate::algorithms::core_algorithms`].
pub struct Registry {
    entries: Vec<Box<dyn FtSpannerAlgorithm>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            entries: Vec::new(),
        }
    }

    /// Builds a registry from the given algorithms.
    ///
    /// # Panics
    ///
    /// Panics if two algorithms share a name.
    pub fn from_algorithms(entries: Vec<Box<dyn FtSpannerAlgorithm>>) -> Self {
        let mut registry = Registry::new();
        for entry in entries {
            registry.register(entry);
        }
        registry
    }

    /// Adds an algorithm.
    ///
    /// # Panics
    ///
    /// Panics if an algorithm with the same name is already registered.
    pub fn register(&mut self, algorithm: Box<dyn FtSpannerAlgorithm>) {
        assert!(
            self.get(algorithm.name()).is_none(),
            "duplicate registry entry `{}`",
            algorithm.name()
        );
        self.entries.push(algorithm);
    }

    /// Looks an algorithm up by name.
    pub fn get(&self, name: &str) -> Option<&dyn FtSpannerAlgorithm> {
        self.entries
            .iter()
            .find(|a| a.name() == name)
            .map(|a| a.as_ref())
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|a| a.name()).collect()
    }

    /// Iterates over the registered algorithms.
    pub fn iter(&self) -> impl Iterator<Item = &dyn FtSpannerAlgorithm> {
        self.entries.iter().map(|a| a.as_ref())
    }

    /// Number of registered algorithms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no algorithm is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders_compose() {
        let request = SpannerRequest::new(2)
            .with_stretch(5.0)
            .with_fault_model(FaultModel::Edge)
            .with_black_box(BlackBoxKind::BaswanaSen)
            .with_scale(0.5)
            .with_iterations(40)
            .with_samples(10)
            .without_repair();
        assert_eq!(request.faults, 2);
        assert_eq!(request.stretch, 5.0);
        assert_eq!(request.fault_model, FaultModel::Edge);
        assert_eq!(request.black_box, BlackBoxKind::BaswanaSen);
        assert_eq!(request.scale, 0.5);
        assert_eq!(request.iterations, Some(40));
        assert_eq!(request.samples, Some(10));
        assert!(!request.repair);
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        SpannerRequest::new(1).with_scale(0.0);
    }

    #[test]
    fn graph_input_family_dispatch() {
        let g = Graph::new(3);
        let dg = DiGraph::new(3);
        let ug = GraphInput::from(&g);
        let dig = GraphInput::from(&dg);
        assert_eq!(ug.family(), GraphFamily::Undirected);
        assert_eq!(dig.family(), GraphFamily::Directed);
        assert!(ug.expect_undirected("x").is_ok());
        assert!(ug.expect_directed("x").is_err());
        assert!(dig.expect_directed("x").is_ok());
        assert!(dig.expect_undirected("x").is_err());
        assert_eq!(ug.node_count(), 3);
    }

    #[test]
    fn report_ratio_and_budget_edge_cases() {
        let g = Graph::new(2);
        let mut report = SpannerReport::new(
            "test",
            "test".to_string(),
            FaultModel::Vertex,
            1,
            3.0,
            SpannerEdges::Undirected(g.empty_edge_set()),
            0.0,
        );
        assert_eq!(report.ratio_vs_lp(), None);
        report.lp_objective = Some(0.0);
        assert_eq!(report.ratio_vs_lp(), Some(1.0));
        report.cost = 2.0;
        assert_eq!(report.ratio_vs_lp(), Some(f64::INFINITY));
        assert_eq!(report.budget_fraction(), 1.0);
        report.iterations = 5;
        report.theorem_iterations = Some(20);
        assert_eq!(report.budget_fraction(), 0.25);
        assert_eq!(report.mean_surviving_vertices(), 0.0);
        assert!(report.edge_set().is_some());
        assert!(report.arc_set().is_none());
        assert!(report.edges.is_empty());
    }
}
