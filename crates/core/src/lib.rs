//! Fault-tolerant spanners: the constructions of Dinitz & Krauthgamer
//! ("Fault-Tolerant Spanners: Better and Simpler", PODC 2011).
//!
//! A subgraph `H ⊆ G` is an *`r`-fault-tolerant `k`-spanner* if for every set
//! `F` of at most `r` vertices, `H \ F` is a `k`-spanner of `G \ F`. This
//! crate implements both of the paper's constructions plus the baselines it
//! compares against:
//!
//! * [`conversion`] — **Theorem 2.1 / Corollary 2.2** (stretch `k ≥ 3`):
//!   a black-box transformation turning any `k`-spanner algorithm with size
//!   `f(n)` into an `r`-fault-tolerant one of size `O(r³ log n · f(2n/r))`,
//!   by repeatedly *oversampling* a random fault set and building a spanner
//!   on what remains.
//! * [`two_spanner`] — **Theorem 3.3 / 3.4** (stretch `k = 2`, directed,
//!   arbitrary costs): an `O(log n)`-approximation for minimum-cost
//!   `r`-fault-tolerant 2-spanner via a knapsack-cover-strengthened LP
//!   relaxation and per-vertex threshold rounding, plus the `O(log Δ)`
//!   bounded-degree variant using the constructive Lovász Local Lemma.
//! * [`baselines`] — the prior-work comparison points: a CLPR09-style
//!   union-over-fault-sets construction and the DK10 rounding with
//!   `α = Θ(r log n)`.
//! * [`edge_faults`] — the edge-fault analogue of the conversion theorem
//!   (an extension beyond the paper; every edge joins the oversampled fault
//!   set instead of every vertex).
//! * [`adaptive`] — a practical variant of the conversion that stops as soon
//!   as the union passes a verification battery, instead of always running
//!   the full `Θ(r³ log n)` iterations.
//! * [`lower_bounds`] — folklore degree-based lower bounds on the size and
//!   cost of any fault-tolerant spanner, reported by the experiments.
//! * [`serve`] — the query side: the [`FtSpanner`] artifact (CSR-packed,
//!   with provenance and a declared `(k, r, FaultModel)` guarantee) and
//!   fault-scoped [`FaultSession`]s answering `distance` / `path` /
//!   `stretch_certificate` queries, plus text round-trip serialization.
//!
//! # Quickstart
//!
//! ```
//! use ftspan_core::conversion::{ConversionParams, FaultTolerantConverter};
//! use ftspan_spanners::GreedySpanner;
//! use ftspan_graph::{generate, verify};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let g = generate::gnp(20, 0.4, generate::WeightKind::Unit, &mut rng);
//! let converter = FaultTolerantConverter::new(ConversionParams::new(1));
//! let result = converter.build(&g, &GreedySpanner::new(3.0), &mut rng);
//! // The result tolerates any single vertex fault with stretch 3 (verified
//! // exhaustively here because the graph is small).
//! assert!(verify::is_fault_tolerant_k_spanner(&g, &result.edges, 3.0, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod algorithms;
pub mod api;
pub mod baselines;
pub mod conversion;
pub mod dynamic;
pub mod edge_faults;
mod error;
pub mod lower_bounds;
pub mod par;
pub mod serve;
pub mod two_spanner;

pub use api::{
    FaultModel, FtSpannerAlgorithm, GraphFamily, GraphInput, GraphSource, Registry, ResolvedSource,
    SpannerEdges, SpannerReport, SpannerRequest,
};
pub use dynamic::{
    ApplyAction, ApplyReport, BuildRecipe, DeltaLog, DynamicArtifact, EdgeDelta, RebuildPolicy,
    RebuildReason, SequencedDelta,
};
pub use error::CoreError;
pub use serve::{
    CacheStats, CachedSession, FaultSession, FtSpanner, FtSpannerView, StretchCertificate,
};

/// Result alias for fault-tolerant spanner constructions.
pub type Result<T> = std::result::Result<T, CoreError>;
