//! [`FtSpannerAlgorithm`] implementations for every centralized construction
//! in this crate.
//!
//! Each implementation is a stateless descriptor that translates the unified
//! [`SpannerRequest`] into the construction's native parameters, runs it, and
//! normalizes the result into a [`SpannerReport`]. The distributed
//! constructions get the same treatment in `ftspan-local`; the facade crate
//! merges both sets into one registry.

use crate::adaptive::{adaptive_fault_tolerant_spanner_with_threads, AdaptiveConfig, StoppingRule};
use crate::api::{
    FaultModel, FtSpannerAlgorithm, GraphFamily, GraphInput, SpannerEdges, SpannerReport,
    SpannerRequest,
};
use crate::baselines::{dk10_two_spanner_with_threads, ClprStyleBaseline};
use crate::conversion::{ConversionParams, ConversionResult, FaultTolerantConverter};
use crate::edge_faults::{edge_fault_tolerant_spanner_with_threads, EdgeFaultParams};
use crate::two_spanner::{
    approximate_two_spanner, bounded_degree_two_spanner, greedy_ft_two_spanner, ApproxConfig,
    ApproxResult, LllConfig,
};
use crate::{CoreError, Result};
use ftspan_graph::Graph;
use rand::RngCore;
use std::time::Instant;

pub(crate) fn conversion_params(request: &SpannerRequest) -> ConversionParams {
    let mut params = ConversionParams::new(request.faults).with_scale(request.scale);
    if let Some(iterations) = request.iterations {
        params = params.with_iterations(iterations);
    }
    params
}

fn approx_config(request: &SpannerRequest) -> ApproxConfig {
    let mut config = ApproxConfig::new(request.faults);
    if let Some(c) = request.alpha_constant {
        config = config.with_alpha_constant(c);
    }
    config.max_cut_rounds = request.max_cut_rounds;
    config.repair = request.repair;
    config.threads = request.effective_threads();
    config
}

fn undirected_report(
    algorithm: &dyn FtSpannerAlgorithm,
    graph: &Graph,
    request: &SpannerRequest,
    provenance: String,
    stretch: f64,
    result: ConversionResult,
) -> SpannerReport {
    let cost = graph
        .edge_set_weight(&result.edges)
        .expect("constructed edges belong to the input graph");
    let mut report = SpannerReport::new(
        algorithm.name(),
        provenance,
        FaultModel::Vertex,
        request.faults,
        stretch,
        SpannerEdges::Undirected(result.edges),
        cost,
    );
    report.iterations = result.iterations;
    report.per_iteration = result.per_iteration;
    report
}

fn directed_report(
    algorithm: &dyn FtSpannerAlgorithm,
    request: &SpannerRequest,
    provenance: String,
    result: ApproxResult,
) -> SpannerReport {
    let mut report = SpannerReport::new(
        algorithm.name(),
        provenance,
        FaultModel::Vertex,
        request.faults,
        2.0,
        SpannerEdges::Directed(result.arcs),
        result.cost,
    );
    report.iterations = 1;
    report.lp_objective = Some(result.lp_objective);
    report.alpha = Some(result.alpha);
    report.repaired_arcs = result.repaired_arcs;
    report.cuts_added = Some(result.cut_stats.cuts_added);
    report
}

fn reject_edge_model(name: &str, request: &SpannerRequest) -> Result<()> {
    if request.fault_model == FaultModel::Edge {
        return Err(CoreError::InvalidParameter {
            message: format!(
                "algorithm `{name}` tolerates vertex faults only; \
                 use `edge-fault` (or `conversion`, which dispatches on the fault model) \
                 for edge faults"
            ),
        });
    }
    Ok(())
}

/// Theorem 2.1: the black-box conversion. Honors the request's fault model
/// (vertex faults run the paper's construction, edge faults the library's
/// edge-sampling extension), stretch, black box, and iteration knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConversionAlgorithm;

impl FtSpannerAlgorithm for ConversionAlgorithm {
    fn name(&self) -> &'static str {
        "conversion"
    }

    fn reference(&self) -> &'static str {
        "Theorem 2.1"
    }

    fn summary(&self) -> &'static str {
        "black-box conversion: union of spanners over oversampled fault sets"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Undirected
    }

    fn fault_model(&self, request: &SpannerRequest) -> FaultModel {
        request.fault_model
    }

    fn guaranteed_stretch(&self, request: &SpannerRequest) -> f64 {
        request.black_box.instantiate(request.stretch).stretch()
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        match request.fault_model {
            FaultModel::Vertex => build_vertex_conversion(self, input, request, rng),
            FaultModel::Edge => build_edge_conversion(self, input, request, rng),
        }
    }
}

fn build_vertex_conversion(
    algorithm: &dyn FtSpannerAlgorithm,
    input: GraphInput<'_>,
    request: &SpannerRequest,
    rng: &mut dyn RngCore,
) -> Result<SpannerReport> {
    let graph = input.expect_undirected(algorithm.name())?;
    let black_box = request.black_box.instantiate(request.stretch);
    let converter = FaultTolerantConverter::new(conversion_params(request));
    let start = Instant::now();
    let result =
        converter.build_with_threads(graph, black_box.as_ref(), rng, request.effective_threads());
    let elapsed = start.elapsed();
    let provenance = format!(
        "Theorem 2.1 conversion over {} (k = {}, r = {})",
        request.black_box,
        black_box.stretch(),
        request.faults
    );
    let mut report = undirected_report(
        algorithm,
        graph,
        request,
        provenance,
        black_box.stretch(),
        result,
    );
    report.elapsed = elapsed;
    Ok(report)
}

fn build_edge_conversion(
    algorithm: &dyn FtSpannerAlgorithm,
    input: GraphInput<'_>,
    request: &SpannerRequest,
    rng: &mut dyn RngCore,
) -> Result<SpannerReport> {
    let graph = input.expect_undirected(algorithm.name())?;
    let black_box = request.black_box.instantiate(request.stretch);
    let mut params = EdgeFaultParams::new(request.faults).with_scale(request.scale);
    if let Some(iterations) = request.iterations {
        params = params.with_iterations(iterations);
    }
    let start = Instant::now();
    let result = edge_fault_tolerant_spanner_with_threads(
        graph,
        black_box.as_ref(),
        &params,
        rng,
        request.effective_threads(),
    );
    let elapsed = start.elapsed();
    let cost = graph
        .edge_set_weight(&result.edges)
        .expect("constructed edges belong to the input graph");
    let provenance = format!(
        "edge-fault conversion over {} (k = {}, r = {})",
        request.black_box,
        black_box.stretch(),
        request.faults
    );
    let n = graph.node_count();
    let mut report = SpannerReport::new(
        algorithm.name(),
        provenance,
        FaultModel::Edge,
        request.faults,
        black_box.stretch(),
        SpannerEdges::Undirected(result.edges),
        cost,
    );
    report.iterations = result.iterations;
    // Only the surviving-edge column is measured by the edge-sampling
    // construction; the vertex set survives every iteration untouched.
    report.per_iteration = result
        .surviving_edges
        .iter()
        .map(|&surviving_edges| crate::conversion::IterationStats {
            surviving_vertices: n,
            surviving_edges,
            spanner_edges: 0,
            new_edges: 0,
        })
        .collect();
    report.elapsed = elapsed;
    Ok(report)
}

/// Corollary 2.2: the conversion instantiated with the greedy spanner of
/// Althöfer et al. (the black-box knob is fixed; stretch and iteration knobs
/// are honored).
#[derive(Debug, Clone, Copy, Default)]
pub struct Corollary22Algorithm;

impl FtSpannerAlgorithm for Corollary22Algorithm {
    fn name(&self) -> &'static str {
        "corollary-2.2"
    }

    fn reference(&self) -> &'static str {
        "Corollary 2.2"
    }

    fn summary(&self) -> &'static str {
        "conversion over the greedy spanner: size O(r^{2-2/(k+1)} n^{1+2/(k+1)} log n)"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Undirected
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        reject_edge_model(self.name(), request)
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_undirected(self.name())?;
        let converter = FaultTolerantConverter::new(conversion_params(request));
        let black_box = ftspan_spanners::GreedySpanner::new(request.stretch);
        let start = Instant::now();
        let result =
            converter.build_with_threads(graph, &black_box, rng, request.effective_threads());
        let elapsed = start.elapsed();
        let provenance = format!(
            "Corollary 2.2 (greedy, k = {}, r = {})",
            request.stretch, request.faults
        );
        let mut report =
            undirected_report(self, graph, request, provenance, request.stretch, result);
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// The adaptive conversion: Theorem 2.1 run in batches with a verification
/// battery as stopping rule. Honors stretch, black box, batch and sample
/// knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveAlgorithm;

impl FtSpannerAlgorithm for AdaptiveAlgorithm {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn reference(&self) -> &'static str {
        "Theorem 2.1 (adaptive iteration count)"
    }

    fn summary(&self) -> &'static str {
        "conversion that stops as soon as a verification battery passes"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Undirected
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        reject_edge_model(self.name(), request)
    }

    fn guaranteed_stretch(&self, request: &SpannerRequest) -> f64 {
        request.black_box.instantiate(request.stretch).stretch()
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_undirected(self.name())?;
        let black_box = request.black_box.instantiate(request.stretch);
        let mut config = AdaptiveConfig::new(request.faults, graph.node_count());
        if let Some(batch) = request.batch {
            config = config.with_batch(batch);
        }
        if let Some(samples) = request.samples {
            config = config.with_stopping(StoppingRule::Sampled { samples });
        }
        let start = Instant::now();
        let result = adaptive_fault_tolerant_spanner_with_threads(
            graph,
            black_box.as_ref(),
            &config,
            rng,
            request.effective_threads(),
        );
        let elapsed = start.elapsed();
        let cost = graph
            .edge_set_weight(&result.edges)
            .expect("constructed edges belong to the input graph");
        let provenance = format!(
            "adaptive Theorem 2.1 conversion over {} (k = {}, r = {})",
            request.black_box,
            black_box.stretch(),
            request.faults
        );
        let mut report = SpannerReport::new(
            self.name(),
            provenance,
            FaultModel::Vertex,
            request.faults,
            black_box.stretch(),
            SpannerEdges::Undirected(result.edges),
            cost,
        );
        report.iterations = result.iterations;
        report.theorem_iterations = Some(result.theorem_iterations);
        report.verified = Some(result.verified);
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// The edge-fault conversion under its own registry name (the `conversion`
/// entry reaches the same construction when the request's fault model is
/// [`FaultModel::Edge`]). The fault model is fixed by construction: the
/// request's `fault_model` knob is ignored and the report always declares
/// [`FaultModel::Edge`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeFaultAlgorithm;

impl FtSpannerAlgorithm for EdgeFaultAlgorithm {
    fn name(&self) -> &'static str {
        "edge-fault"
    }

    fn reference(&self) -> &'static str {
        "Theorem 2.1 (edge-fault extension)"
    }

    fn summary(&self) -> &'static str {
        "edge-sampling conversion tolerating r edge faults in Θ(r² log n) iterations"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Undirected
    }

    fn fault_model(&self, _request: &SpannerRequest) -> FaultModel {
        FaultModel::Edge
    }

    fn guaranteed_stretch(&self, request: &SpannerRequest) -> f64 {
        request.black_box.instantiate(request.stretch).stretch()
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        build_edge_conversion(self, input, request, rng)
    }
}

/// The CLPR09-style union-over-fault-sets baseline. Exhaustive by default;
/// [`SpannerRequest::samples`] switches to that many sampled fault sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClprBaselineAlgorithm;

impl FtSpannerAlgorithm for ClprBaselineAlgorithm {
    fn name(&self) -> &'static str {
        "clpr09"
    }

    fn reference(&self) -> &'static str {
        "CLPR09 baseline (Section 1.1)"
    }

    fn summary(&self) -> &'static str {
        "union of black-box spanners over explicit fault sets (exponential in r)"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Undirected
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        reject_edge_model(self.name(), request)
    }

    fn guaranteed_stretch(&self, request: &SpannerRequest) -> f64 {
        request.black_box.instantiate(request.stretch).stretch()
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_undirected(self.name())?;
        let black_box = request.black_box.instantiate(request.stretch);
        let baseline = match request.samples {
            Some(samples) => ClprStyleBaseline::sampled(request.faults, samples),
            None => ClprStyleBaseline::new(request.faults),
        };
        let start = Instant::now();
        let result = baseline.build_with_threads(
            graph,
            black_box.as_ref(),
            rng,
            request.effective_threads(),
        );
        let elapsed = start.elapsed();
        let provenance = format!(
            "CLPR09-style union over {} fault sets ({}, k = {}, r = {})",
            result.iterations,
            request.black_box,
            black_box.stretch(),
            request.faults
        );
        let mut report = undirected_report(
            self,
            graph,
            request,
            provenance,
            black_box.stretch(),
            result,
        );
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// Theorem 3.3: the knapsack-cover LP rounding, an `O(log n)`-approximation
/// for minimum-cost `r`-fault-tolerant 2-spanner.
#[derive(Debug, Clone, Copy, Default)]
pub struct LpTwoSpannerAlgorithm;

impl FtSpannerAlgorithm for LpTwoSpannerAlgorithm {
    fn name(&self) -> &'static str {
        "two-spanner-lp"
    }

    fn reference(&self) -> &'static str {
        "Theorem 3.3"
    }

    fn summary(&self) -> &'static str {
        "knapsack-cover LP + threshold rounding: O(log n)-approximate min-cost 2-spanner"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Directed
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        reject_edge_model(self.name(), request)
    }

    fn guaranteed_stretch(&self, _request: &SpannerRequest) -> f64 {
        2.0
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_directed(self.name())?;
        let config = approx_config(request);
        let start = Instant::now();
        let result = approximate_two_spanner(graph, &config, rng)?;
        let elapsed = start.elapsed();
        let provenance = format!(
            "Theorem 3.3 LP(4) rounding (alpha = {:.2}, r = {})",
            result.alpha, request.faults
        );
        let mut report = directed_report(self, request, provenance, result);
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// The DK10 baseline: threshold rounding on the weak relaxation with
/// inflation `Θ(r log n)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dk10BaselineAlgorithm;

impl FtSpannerAlgorithm for Dk10BaselineAlgorithm {
    fn name(&self) -> &'static str {
        "dk10"
    }

    fn reference(&self) -> &'static str {
        "DK10 baseline (arXiv 2010)"
    }

    fn summary(&self) -> &'static str {
        "weak-LP rounding with inflation Θ(r log n): the prior 2-spanner approximation"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Directed
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        reject_edge_model(self.name(), request)
    }

    fn guaranteed_stretch(&self, _request: &SpannerRequest) -> f64 {
        2.0
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_directed(self.name())?;
        let start = Instant::now();
        let result =
            dk10_two_spanner_with_threads(graph, request.faults, rng, request.effective_threads())?;
        let elapsed = start.elapsed();
        let provenance = format!(
            "DK10 rounding on the weak relaxation (alpha = {:.2}, r = {})",
            result.alpha, request.faults
        );
        let mut report = directed_report(self, request, provenance, result);
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// The LP-free greedy cover heuristic: always valid, no approximation
/// guarantee, deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyTwoSpannerAlgorithm;

impl FtSpannerAlgorithm for GreedyTwoSpannerAlgorithm {
    fn name(&self) -> &'static str {
        "two-spanner-greedy"
    }

    fn reference(&self) -> &'static str {
        "Lemma 3.1 (greedy cover heuristic)"
    }

    fn summary(&self) -> &'static str {
        "LP-free greedy maintaining the Lemma 3.1 invariant arc by arc"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Directed
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        reject_edge_model(self.name(), request)
    }

    fn guaranteed_stretch(&self, _request: &SpannerRequest) -> f64 {
        2.0
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        _rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_directed(self.name())?;
        let start = Instant::now();
        let result = greedy_ft_two_spanner(graph, request.faults);
        let elapsed = start.elapsed();
        let provenance = format!(
            "greedy Lemma 3.1 cover (bought {}, covered {}, r = {})",
            result.bought_directly, result.covered_by_paths, request.faults
        );
        let mut report = SpannerReport::new(
            self.name(),
            provenance,
            FaultModel::Vertex,
            request.faults,
            2.0,
            SpannerEdges::Directed(result.arcs),
            result.cost,
        );
        report.iterations = 1;
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// Theorem 3.4: the bounded-degree `O(log Δ)`-approximation via the
/// constructive Lovász Local Lemma (unit arc costs only).
#[derive(Debug, Clone, Copy, Default)]
pub struct LllTwoSpannerAlgorithm;

impl FtSpannerAlgorithm for LllTwoSpannerAlgorithm {
    fn name(&self) -> &'static str {
        "two-spanner-lll"
    }

    fn reference(&self) -> &'static str {
        "Theorem 3.4"
    }

    fn summary(&self) -> &'static str {
        "Moser-Tardos resampled rounding: O(log Δ)-approximation for unit costs"
    }

    fn graph_family(&self) -> GraphFamily {
        GraphFamily::Directed
    }

    fn supports(&self, request: &SpannerRequest) -> Result<()> {
        reject_edge_model(self.name(), request)
    }

    fn guaranteed_stretch(&self, _request: &SpannerRequest) -> f64 {
        2.0
    }

    fn build(
        &self,
        input: GraphInput<'_>,
        request: &SpannerRequest,
        rng: &mut dyn RngCore,
    ) -> Result<SpannerReport> {
        self.supports(request)?;
        let graph = input.expect_directed(self.name())?;
        if let Some(bound) = request.degree_bound {
            let delta = graph.max_degree();
            if delta > bound {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "input has maximum degree {delta}, above the requested bound {bound}"
                    ),
                });
            }
        }
        let mut config = LllConfig::new(request.faults);
        if let Some(c) = request.alpha_constant {
            config = config.with_alpha_constant(c);
        }
        config.max_cut_rounds = request.max_cut_rounds;
        config.threads = request.effective_threads();
        let start = Instant::now();
        let result = bounded_degree_two_spanner(graph, &config, rng)?;
        let elapsed = start.elapsed();
        let provenance = format!(
            "Theorem 3.4 LLL rounding (Δ = {}, alpha = {:.2}, {} resamples, r = {})",
            result.max_degree, result.alpha, result.resamples, request.faults
        );
        let mut report = SpannerReport::new(
            self.name(),
            provenance,
            FaultModel::Vertex,
            request.faults,
            2.0,
            SpannerEdges::Directed(result.arcs),
            result.cost,
        );
        report.iterations = 1;
        report.lp_objective = Some(result.lp_objective);
        report.alpha = Some(result.alpha);
        report.repaired_arcs = result.repaired_arcs;
        report.resamples = Some(result.resamples);
        report.elapsed = elapsed;
        Ok(report)
    }
}

/// The centralized algorithms this crate contributes to the registry.
pub fn core_algorithms() -> Vec<Box<dyn FtSpannerAlgorithm>> {
    vec![
        Box::new(ConversionAlgorithm),
        Box::new(Corollary22Algorithm),
        Box::new(AdaptiveAlgorithm),
        Box::new(EdgeFaultAlgorithm),
        Box::new(ClprBaselineAlgorithm),
        Box::new(LpTwoSpannerAlgorithm),
        Box::new(GreedyTwoSpannerAlgorithm),
        Box::new(LllTwoSpannerAlgorithm),
        Box::new(Dk10BaselineAlgorithm),
    ]
}

/// Small graphs to smoke-test a [`FtSpannerAlgorithm`] implementation on (a
/// seeded G(n, p) of the right family), shared by the unit tests here and the
/// distributed implementations' tests.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Registry;
    use ftspan_graph::{generate, verify, DiGraph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn undirected(seed: u64) -> Graph {
        generate::gnp(18, 0.45, generate::WeightKind::Unit, &mut rng(seed))
    }

    fn directed(seed: u64) -> DiGraph {
        generate::directed_gnp(9, 0.5, generate::WeightKind::Unit, &mut rng(seed))
    }

    #[test]
    fn registry_has_all_core_algorithms_with_unique_names() {
        let registry = Registry::from_algorithms(core_algorithms());
        assert_eq!(registry.len(), 9);
        for name in [
            "conversion",
            "corollary-2.2",
            "adaptive",
            "edge-fault",
            "clpr09",
            "two-spanner-lp",
            "two-spanner-greedy",
            "two-spanner-lll",
            "dk10",
        ] {
            let algorithm = registry
                .get(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(algorithm.name(), name);
            assert!(!algorithm.summary().is_empty());
            assert!(!algorithm.reference().is_empty());
        }
        assert!(registry.get("no-such-algorithm").is_none());
    }

    #[test]
    fn conversion_report_is_fault_tolerant_and_complete() {
        let g = undirected(1);
        let request = SpannerRequest::new(1);
        let report = ConversionAlgorithm
            .build(GraphInput::from(&g), &request, &mut rng(2))
            .unwrap();
        assert_eq!(report.algorithm, "conversion");
        assert_eq!(report.fault_model, FaultModel::Vertex);
        assert!(report.provenance.contains("Theorem 2.1"));
        assert_eq!(report.per_iteration.len(), report.iterations);
        assert!(report.size() > 0);
        assert!(report.cost > 0.0);
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            report.edge_set().unwrap(),
            report.stretch,
            1
        ));
    }

    #[test]
    fn conversion_dispatches_on_fault_model() {
        let g = undirected(3);
        let request = SpannerRequest::new(1).with_fault_model(FaultModel::Edge);
        let report = ConversionAlgorithm
            .build(GraphInput::from(&g), &request, &mut rng(4))
            .unwrap();
        assert_eq!(report.fault_model, FaultModel::Edge);
        assert!(report.provenance.contains("edge-fault"));
        assert!(verify::is_edge_fault_tolerant_k_spanner(
            &g,
            report.edge_set().unwrap(),
            report.stretch,
            1
        ));
        assert!(report.mean_surviving_edges() > 0.0);
    }

    #[test]
    fn vertex_only_algorithms_reject_the_edge_model() {
        let g = undirected(5);
        let dg = directed(5);
        let request = SpannerRequest::new(1).with_fault_model(FaultModel::Edge);
        assert!(Corollary22Algorithm.supports(&request).is_err());
        assert!(Corollary22Algorithm
            .build(GraphInput::from(&g), &request, &mut rng(6))
            .is_err());
        assert!(LpTwoSpannerAlgorithm
            .build(GraphInput::from(&dg), &request, &mut rng(6))
            .is_err());
    }

    #[test]
    fn family_mismatch_is_a_clean_error() {
        let g = undirected(7);
        let dg = directed(7);
        let request = SpannerRequest::new(1);
        let err = LpTwoSpannerAlgorithm
            .build(GraphInput::from(&g), &request, &mut rng(8))
            .unwrap_err();
        assert!(err.to_string().contains("directed"));
        let err = ConversionAlgorithm
            .build(GraphInput::from(&dg), &request, &mut rng(8))
            .unwrap_err();
        assert!(err.to_string().contains("undirected"));
    }

    #[test]
    fn adaptive_report_carries_budget_diagnostics() {
        let g = undirected(9);
        let request = SpannerRequest::new(1);
        let report = AdaptiveAlgorithm
            .build(GraphInput::from(&g), &request, &mut rng(10))
            .unwrap();
        assert_eq!(report.verified, Some(true));
        assert!(report.theorem_iterations.unwrap() >= report.iterations);
        assert!(report.budget_fraction() <= 1.0);
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            report.edge_set().unwrap(),
            report.stretch,
            1
        ));
    }

    #[test]
    fn clpr_baseline_honors_the_samples_knob() {
        let g = undirected(11);
        let exhaustive = ClprBaselineAlgorithm
            .build(GraphInput::from(&g), &SpannerRequest::new(1), &mut rng(12))
            .unwrap();
        assert_eq!(exhaustive.iterations, 1 + g.node_count());
        let sampled = ClprBaselineAlgorithm
            .build(
                GraphInput::from(&g),
                &SpannerRequest::new(1).with_samples(5),
                &mut rng(12),
            )
            .unwrap();
        assert_eq!(sampled.iterations, 5);
    }

    #[test]
    fn directed_reports_expose_lp_diagnostics() {
        let dg = directed(13);
        let request = SpannerRequest::new(1);
        for algorithm in [
            Box::new(LpTwoSpannerAlgorithm) as Box<dyn FtSpannerAlgorithm>,
            Box::new(Dk10BaselineAlgorithm),
        ] {
            let report = algorithm
                .build(GraphInput::from(&dg), &request, &mut rng(14))
                .unwrap();
            assert_eq!(report.stretch, 2.0);
            assert!(report.lp_objective.is_some());
            assert!(report.alpha.is_some());
            assert!(report.ratio_vs_lp().unwrap() >= 1.0 - 1e-9);
            assert!(verify::is_ft_two_spanner(&dg, report.arc_set().unwrap(), 1));
        }
    }

    #[test]
    fn greedy_two_spanner_is_deterministic_and_valid() {
        let dg = directed(15);
        let request = SpannerRequest::new(2);
        let a = GreedyTwoSpannerAlgorithm
            .build(GraphInput::from(&dg), &request, &mut rng(16))
            .unwrap();
        let b = GreedyTwoSpannerAlgorithm
            .build(GraphInput::from(&dg), &request, &mut rng(999))
            .unwrap();
        assert_eq!(a.edges, b.edges);
        assert!(verify::is_ft_two_spanner(&dg, a.arc_set().unwrap(), 2));
    }

    #[test]
    fn lll_respects_the_degree_bound_knob() {
        let mut r = rng(17);
        let ug = generate::random_near_regular(14, 4, &mut r);
        let dg = DiGraph::from_graph(&ug);
        let ok = LllTwoSpannerAlgorithm.build(
            GraphInput::from(&dg),
            &SpannerRequest::new(1).with_degree_bound(dg.max_degree()),
            &mut r,
        );
        assert!(ok.is_ok());
        assert!(ok.unwrap().resamples.is_some());
        let too_tight = LllTwoSpannerAlgorithm.build(
            GraphInput::from(&dg),
            &SpannerRequest::new(1).with_degree_bound(1),
            &mut r,
        );
        assert!(too_tight.is_err());
    }
}
