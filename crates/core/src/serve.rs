//! The query side of fault tolerance: [`FtSpanner`] artifacts and
//! fault-scoped [`FaultSession`]s.
//!
//! The constructions exist so that, *after* faults strike, the surviving
//! spanner still answers distance queries with bounded stretch — yet a
//! [`SpannerReport`] is only a bag of edges. This module promotes it to a
//! first-class artifact:
//!
//! * [`FtSpanner`] — an owned, immutable artifact built from a report and
//!   its source graph. The spanner and the source adjacency are CSR-packed
//!   for cache-friendly traversal, and the artifact carries its provenance
//!   and declared `(k, r, FaultModel)` guarantee.
//! * [`FaultSession`] — created by [`FtSpanner::under_faults`] (or
//!   [`FtSpanner::under_edge_faults`]): masks a concrete fault set *without
//!   copying* and answers [`distance`](FaultSession::distance),
//!   [`path`](FaultSession::path) and
//!   [`stretch_certificate`](FaultSession::stretch_certificate) queries.
//!   Fault sets larger than the declared budget `r` are rejected with the
//!   typed [`CoreError::TooManyFaults`].
//! * [`CachedSession`] — a session with a bounded LRU of per-source
//!   shortest-path trees ([`FaultSession::cached`]): serving batches
//!   dominated by repeated `(source, fault scope)` pairs reuse one Dijkstra
//!   tree per source instead of recomputing per query, with answers
//!   byte-identical to the plain session at any capacity.
//! * Round-trip serialization so artifacts can be built once and served many
//!   times, on other machines, with no extra dependencies: line-oriented
//!   text ([`FtSpanner::to_writer`] / [`FtSpanner::from_reader`]) and the
//!   versioned binary `.ftspan` format ([`FtSpanner::to_binary_writer`] /
//!   [`FtSpanner::from_binary_reader`]).
//!
//! # Example
//!
//! ```
//! use ftspan_core::algorithms::core_algorithms;
//! use ftspan_core::{serve::FtSpanner, Registry, SpannerRequest};
//! use ftspan_graph::{generate, NodeId};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = generate::connected_gnp(24, 0.3, generate::WeightKind::Unit, &mut rng);
//! let registry = Registry::from_algorithms(core_algorithms());
//! let report = registry
//!     .get("conversion")
//!     .unwrap()
//!     .build((&g).into(), &SpannerRequest::new(1), &mut rng)
//!     .unwrap();
//!
//! let artifact = FtSpanner::from_report(&g, &report).unwrap();
//! let session = artifact.under_faults(&[NodeId::new(3)]).unwrap();
//! let cert = session
//!     .stretch_certificate(NodeId::new(0), NodeId::new(5))
//!     .unwrap();
//! assert!(cert.holds());
//! ```

use crate::api::{FaultModel, SpannerEdges, SpannerReport};
use crate::{CoreError, Result};
use ftspan_graph::csr::{reconstruct_path, CsrSubgraph, SsspWorkspace};
use ftspan_graph::{EdgeSet, Graph, NodeId};
use std::io::{BufRead, Read, Write};

/// Numerical slack used when comparing a certificate's stretch to its bound.
const EPS: f64 = 1e-9;

/// Magic prefix of the binary artifact format (see
/// [`FtSpanner::to_binary_writer`]).
pub const BINARY_MAGIC: [u8; 4] = *b"FTSP";

/// Version tag of the original length-prefixed binary layout
/// ([`FtSpanner::to_binary_writer`]).
pub const BINARY_VERSION: u32 = 1;

/// Version tag of the fixed-width, 8-byte-aligned binary layout
/// ([`FtSpanner::to_binary_v2_writer`] / [`FtSpannerView`]). Readers accept
/// both versions; v2 is what [`FtSpannerView::parse`] can validate and
/// borrow with zero copies.
pub const BINARY_VERSION_V2: u32 = 2;

/// Largest node count a binary artifact with `m` edges may declare.
///
/// The `GRPH` section's edge arrays are backed by real bytes (16 per edge),
/// but the node count is a bare integer that [`FtSpanner::from_binary_reader`]
/// turns into an `O(n)` allocation — so a corrupted or crafted header could
/// otherwise demand ~100 GB from an 80-byte file. Bounding `n` by the edge
/// count caps the amplification at a harmless ~24 MB (the 2^20 floor) plus
/// ~100 bytes allocated per byte actually present, while admitting every
/// plausible artifact: a connected source graph already has `n <= m + 1`,
/// and even a pathologically disconnected one passes unless it is mostly
/// isolated vertices at million scale. [`FtSpanner::to_binary_writer`]
/// enforces the same bound so everything it writes is readable.
fn binary_node_bound(m: usize) -> usize {
    (1 << 20) + 64 * m
}

/// An owned, immutable, queryable fault-tolerant spanner.
///
/// Built from a [`SpannerReport`] (undirected constructions only) and its
/// source graph by [`FtSpanner::from_report`]; queried through fault-scoped
/// [`FaultSession`]s. The artifact packs both the spanner and the source
/// adjacency in CSR form once, so every session query streams through
/// contiguous memory instead of re-deriving subgraphs.
#[derive(Debug, Clone, PartialEq)]
pub struct FtSpanner {
    algorithm: String,
    provenance: String,
    fault_model: FaultModel,
    faults: usize,
    stretch: f64,
    source: Graph,
    spanner_edges: EdgeSet,
    source_csr: CsrSubgraph,
    spanner_csr: CsrSubgraph,
}

impl FtSpanner {
    /// Builds the artifact from a construction report and the graph it was
    /// built on.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] if the report carries directed arcs
    ///   (2-spanner plans are not distance-query artifacts).
    /// * [`CoreError::Graph`] if the report's edge set was built for a
    ///   different graph.
    pub fn from_report(graph: &Graph, report: &SpannerReport) -> Result<Self> {
        let edges = match &report.edges {
            SpannerEdges::Undirected(edges) => edges,
            SpannerEdges::Directed(_) => {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "algorithm `{}` produced a directed 2-spanner plan; only undirected \
                         spanners can serve distance queries",
                        report.algorithm
                    ),
                })
            }
        };
        Self::from_parts(
            graph,
            None,
            edges.clone(),
            &report.algorithm,
            &report.provenance,
            report.fault_model,
            report.faults,
            report.stretch,
        )
    }

    /// Like [`FtSpanner::from_report`], but adopts a source CSR that was
    /// already packed at the construction boundary (the
    /// `FtSpannerBuilder::on_graph` path) instead of re-packing `graph`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FtSpanner::from_report`], plus
    /// [`CoreError::InvalidParameter`] if `source_csr` is not a full
    /// packing of `graph` (wrong vertex count, or a partial edge view).
    pub fn from_report_with_csr(
        graph: &Graph,
        source_csr: CsrSubgraph,
        report: &SpannerReport,
    ) -> Result<Self> {
        let edges = match &report.edges {
            SpannerEdges::Undirected(edges) => edges,
            SpannerEdges::Directed(_) => {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "algorithm `{}` produced a directed 2-spanner plan; only undirected \
                         spanners can serve distance queries",
                        report.algorithm
                    ),
                })
            }
        };
        if source_csr.node_count() != graph.node_count()
            || source_csr.edge_count() != graph.edge_count()
            || source_csr.edge_count() != source_csr.parent_edge_count()
        {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "source CSR ({} nodes, {} of {} edges) is not a full packing of the \
                     {}-node, {}-edge graph",
                    source_csr.node_count(),
                    source_csr.edge_count(),
                    source_csr.parent_edge_count(),
                    graph.node_count(),
                    graph.edge_count(),
                ),
            });
        }
        Self::from_parts(
            graph,
            Some(source_csr),
            edges.clone(),
            &report.algorithm,
            &report.provenance,
            report.fault_model,
            report.faults,
            report.stretch,
        )
    }

    /// Adopts an arbitrary edge subset of `graph` as an artifact with the
    /// *declared* guarantee `(k, r, fault_model)`.
    ///
    /// The guarantee is recorded, not checked — this is the escape hatch for
    /// spanners built outside the registry (a plain non-fault-tolerant
    /// spanner can be adopted with `faults = 0`, a hand-rolled construction
    /// with whatever it promises). Constructions built through the unified
    /// API should use [`FtSpanner::from_report`], which copies the report's
    /// authoritative guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] if `edges` was built for a different
    /// graph.
    pub fn from_edge_set(
        graph: &Graph,
        edges: EdgeSet,
        algorithm: &str,
        provenance: &str,
        fault_model: FaultModel,
        faults: usize,
        stretch: f64,
    ) -> Result<Self> {
        Self::from_parts(
            graph,
            None,
            edges,
            algorithm,
            provenance,
            fault_model,
            faults,
            stretch,
        )
    }

    /// Builds the artifact from raw parts (the deserializer and tests use
    /// this; constructions go through [`FtSpanner::from_report`]). A source
    /// CSR packed earlier at the API boundary can be adopted via
    /// `source_csr`; `None` packs one here.
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        graph: &Graph,
        source_csr: Option<CsrSubgraph>,
        spanner_edges: EdgeSet,
        algorithm: &str,
        provenance: &str,
        fault_model: FaultModel,
        faults: usize,
        stretch: f64,
    ) -> Result<Self> {
        let spanner_csr =
            CsrSubgraph::from_edge_set(graph, &spanner_edges).map_err(CoreError::Graph)?;
        Ok(FtSpanner {
            algorithm: algorithm.to_string(),
            provenance: provenance.to_string(),
            fault_model,
            faults,
            stretch,
            source_csr: source_csr.unwrap_or_else(|| CsrSubgraph::from_graph(graph)),
            spanner_csr,
            spanner_edges,
            source: graph.clone(),
        })
    }

    /// Registry name of the algorithm that produced this artifact.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Human-readable provenance of the construction.
    pub fn provenance(&self) -> &str {
        &self.provenance
    }

    /// The fault model of the declared guarantee.
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// The declared fault budget `r`: sessions reject larger fault sets.
    pub fn fault_budget(&self) -> usize {
        self.faults
    }

    /// The declared stretch `k`.
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.source.node_count()
    }

    /// Number of edges in the spanner.
    pub fn spanner_edge_count(&self) -> usize {
        self.spanner_csr.edge_count()
    }

    /// Number of edges in the source graph.
    pub fn source_edge_count(&self) -> usize {
        self.source.edge_count()
    }

    /// The spanner's edges, as a subset of the source graph's edges.
    pub fn spanner_edges(&self) -> &EdgeSet {
        &self.spanner_edges
    }

    /// The source graph the artifact was built from.
    pub fn source_graph(&self) -> &Graph {
        &self.source
    }

    /// Opens a query session with no faults (the spanner as built).
    pub fn session(&self) -> FaultSession<'_> {
        FaultSession {
            artifact: self,
            dead_nodes: None,
            dead_edges: None,
            fault_count: 0,
        }
    }

    /// Opens a query session in which the given vertices have failed.
    ///
    /// The fault set is masked during traversal — nothing is copied. The
    /// guarantee `d_H\F(u, v) ≤ k · d_G\F(u, v)` holds for every session
    /// whose (deduplicated) fault set is within the declared budget.
    ///
    /// # Errors
    ///
    /// * [`CoreError::FaultModelMismatch`] if the artifact declares
    ///   edge-fault tolerance.
    /// * [`CoreError::UnknownNode`] if a fault is out of bounds.
    /// * [`CoreError::TooManyFaults`] if the deduplicated fault set is
    ///   larger than the declared budget `r`.
    pub fn under_faults(&self, faults: &[NodeId]) -> Result<FaultSession<'_>> {
        if self.fault_model != FaultModel::Vertex {
            return Err(CoreError::FaultModelMismatch {
                declared: self.fault_model,
                requested: FaultModel::Vertex,
            });
        }
        let session = self.under_faults_unchecked(faults)?;
        if session.fault_count > self.faults {
            return Err(CoreError::TooManyFaults {
                given: session.fault_count,
                budget: self.faults,
            });
        }
        Ok(session)
    }

    /// Opens a vertex-fault query session *without* enforcing the declared
    /// fault budget or fault model, for studying how a spanner degrades
    /// beyond what it was built for (the guarantee — and thus
    /// [`StretchCertificate::holds`] — may no longer hold).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if a fault is out of bounds.
    pub fn under_faults_unchecked(&self, faults: &[NodeId]) -> Result<FaultSession<'_>> {
        let n = self.node_count();
        let mut dead = vec![false; n];
        let mut distinct = 0usize;
        for &f in faults {
            if f.index() >= n {
                return Err(CoreError::UnknownNode {
                    node: f.index(),
                    nodes: n,
                });
            }
            if !dead[f.index()] {
                dead[f.index()] = true;
                distinct += 1;
            }
        }
        Ok(FaultSession {
            artifact: self,
            dead_nodes: if distinct == 0 { None } else { Some(dead) },
            dead_edges: None,
            fault_count: distinct,
        })
    }

    /// Opens a query session in which the given edges (named by their
    /// endpoints) have failed.
    ///
    /// # Errors
    ///
    /// * [`CoreError::FaultModelMismatch`] if the artifact declares
    ///   vertex-fault tolerance.
    /// * [`CoreError::UnknownNode`] / [`CoreError::UnknownEdge`] if an
    ///   endpoint is out of bounds or the named edge does not exist.
    /// * [`CoreError::TooManyFaults`] if the deduplicated fault set is
    ///   larger than the declared budget `r`.
    pub fn under_edge_faults(&self, faults: &[(NodeId, NodeId)]) -> Result<FaultSession<'_>> {
        if self.fault_model != FaultModel::Edge {
            return Err(CoreError::FaultModelMismatch {
                declared: self.fault_model,
                requested: FaultModel::Edge,
            });
        }
        let n = self.node_count();
        let mut dead = vec![false; self.source.edge_count()];
        let mut distinct = 0usize;
        for &(u, v) in faults {
            for x in [u, v] {
                if x.index() >= n {
                    return Err(CoreError::UnknownNode {
                        node: x.index(),
                        nodes: n,
                    });
                }
            }
            let id = self.source.find_edge(u, v).ok_or(CoreError::UnknownEdge {
                u: u.index(),
                v: v.index(),
            })?;
            if !dead[id.index()] {
                dead[id.index()] = true;
                distinct += 1;
            }
        }
        if distinct > self.faults {
            return Err(CoreError::TooManyFaults {
                given: distinct,
                budget: self.faults,
            });
        }
        Ok(FaultSession {
            artifact: self,
            dead_nodes: None,
            dead_edges: if distinct == 0 { None } else { Some(dead) },
            fault_count: distinct,
        })
    }

    /// Serializes the artifact as line-oriented text (dependency-free, round
    /// trips through [`FtSpanner::from_reader`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn to_writer<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        // The format is line-oriented: embedded line breaks in the free-text
        // fields would desynchronize the reader, so they are flattened to
        // spaces (the only lossy part of the round trip).
        let flatten = |s: &str| s.replace(['\n', '\r'], " ");
        writeln!(writer, "ftspanner 1")?;
        writeln!(writer, "algorithm {}", flatten(&self.algorithm))?;
        writeln!(writer, "provenance {}", flatten(&self.provenance))?;
        writeln!(
            writer,
            "guarantee {} {} {:?}",
            self.fault_model, self.faults, self.stretch
        )?;
        writeln!(
            writer,
            "graph {} {}",
            self.source.node_count(),
            self.source.edge_count()
        )?;
        for (_, e) in self.source.edges() {
            writeln!(writer, "{} {} {:?}", e.u, e.v, e.weight)?;
        }
        writeln!(writer, "spanner {}", self.spanner_edges.len())?;
        for id in self.spanner_edges.iter() {
            writeln!(writer, "{id}")?;
        }
        writeln!(writer, "end")
    }

    /// Reads an artifact previously written by [`FtSpanner::to_writer`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on malformed input and wraps
    /// I/O failures the same way (the format is self-contained text).
    pub fn from_reader<R: BufRead>(reader: R) -> Result<Self> {
        let mut lines = reader.lines();
        let mut next_line = move || -> Result<String> {
            match lines.next() {
                Some(Ok(line)) => Ok(line),
                Some(Err(e)) => Err(CoreError::InvalidParameter {
                    message: format!("read error in ftspanner data: {e}"),
                }),
                None => Err(CoreError::InvalidParameter {
                    message: "unexpected end of ftspanner data".to_string(),
                }),
            }
        };
        let parse = |what: &str, token: &str| -> Result<f64> {
            token
                .parse::<f64>()
                .map_err(|_| CoreError::InvalidParameter {
                    message: format!("malformed {what} in ftspanner data: `{token}`"),
                })
        };
        // Counts and indices are parsed as integers through the u32 id width
        // (not via f64) so that oversized or fractional values are typed
        // errors instead of saturating casts that could attempt absurd
        // allocations.
        let parse_count = |what: &str, token: &str| -> Result<usize> {
            token
                .parse::<u32>()
                .map(|v| v as usize)
                .map_err(|_| CoreError::InvalidParameter {
                    message: format!("malformed {what} in ftspanner data: `{token}`"),
                })
        };

        let header = next_line()?;
        if header.trim() != "ftspanner 1" {
            return Err(CoreError::InvalidParameter {
                message: format!("unsupported ftspanner header: `{header}`"),
            });
        }
        let algorithm = next_line()?
            .strip_prefix("algorithm ")
            .ok_or_else(|| CoreError::InvalidParameter {
                message: "missing `algorithm` line in ftspanner data".to_string(),
            })?
            .to_string();
        let provenance = next_line()?
            .strip_prefix("provenance ")
            .ok_or_else(|| CoreError::InvalidParameter {
                message: "missing `provenance` line in ftspanner data".to_string(),
            })?
            .to_string();
        let guarantee_line = next_line()?;
        let guarantee: Vec<&str> = guarantee_line.split_whitespace().collect();
        let (fault_model, faults, stretch) = match guarantee.as_slice() {
            ["guarantee", model, r, k] => {
                let model = match *model {
                    "vertex" => FaultModel::Vertex,
                    "edge" => FaultModel::Edge,
                    other => {
                        return Err(CoreError::InvalidParameter {
                            message: format!("unknown fault model `{other}` in ftspanner data"),
                        })
                    }
                };
                (model, parse_count("fault budget", r)?, parse("stretch", k)?)
            }
            _ => {
                return Err(CoreError::InvalidParameter {
                    message: format!("malformed guarantee line: `{guarantee_line}`"),
                })
            }
        };
        let graph_line = next_line()?;
        let dims: Vec<&str> = graph_line.split_whitespace().collect();
        let (n, m) = match dims.as_slice() {
            ["graph", n, m] => (
                parse_count("vertex count", n)?,
                parse_count("edge count", m)?,
            ),
            _ => {
                return Err(CoreError::InvalidParameter {
                    message: format!("malformed graph line: `{graph_line}`"),
                })
            }
        };
        // Edge lines are buffered before the vertex array is allocated, so
        // every allocation is proportional to bytes actually present: a
        // forged `graph 4294967295 4294967295` header previously allocated
        // the adjacency lists for a claimed four billion vertices before
        // the first edge line was even read (found by the artifact fuzz
        // battery).
        let mut edge_lines: Vec<(usize, usize, f64)> = Vec::new();
        for _ in 0..m {
            let line = next_line()?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                [u, v, w] => {
                    edge_lines.push((
                        parse_count("endpoint", u)?,
                        parse_count("endpoint", v)?,
                        parse("weight", w)?,
                    ));
                }
                _ => {
                    return Err(CoreError::InvalidParameter {
                        message: format!("malformed edge line: `{line}`"),
                    })
                }
            }
        }
        if n > binary_node_bound(m) {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "implausible node count {n} for {m} edges in ftspanner data (limit {}): \
                     refusing the allocation",
                    binary_node_bound(m)
                ),
            });
        }
        let mut graph = Graph::new(n);
        for (u, v, w) in edge_lines {
            graph
                .add_edge(NodeId::new(u), NodeId::new(v), w)
                .map_err(|e| CoreError::InvalidParameter {
                    message: format!("invalid edge ({u}, {v}) in ftspanner data: {e}"),
                })?;
        }
        let spanner_line = next_line()?;
        let s = match spanner_line
            .split_whitespace()
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["spanner", s] => parse_count("spanner size", s)?,
            _ => {
                return Err(CoreError::InvalidParameter {
                    message: format!("malformed spanner line: `{spanner_line}`"),
                })
            }
        };
        let mut edges = graph.empty_edge_set();
        for _ in 0..s {
            let line = next_line()?;
            let idx = parse_count("spanner edge index", line.trim())?;
            if idx >= graph.edge_count() {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "spanner edge index {idx} out of range for {} edges",
                        graph.edge_count()
                    ),
                });
            }
            edges.insert(ftspan_graph::EdgeId::new(idx));
        }
        if next_line()?.trim() != "end" {
            return Err(CoreError::InvalidParameter {
                message: "missing `end` terminator in ftspanner data".to_string(),
            });
        }
        Self::from_parts(
            &graph,
            None,
            edges,
            &algorithm,
            &provenance,
            fault_model,
            faults,
            stretch,
        )
    }

    /// Serializes the artifact in the versioned binary `.ftspan` format
    /// (round trips through [`FtSpanner::from_binary_reader`]).
    ///
    /// The format is a 4-byte magic (`FTSP`) and a little-endian `u32`
    /// version, followed by length-prefixed sections (4-byte tag + `u64`
    /// payload length) mirroring the CSR layout: `META` (guarantee and
    /// provenance), `GRPH` (vertex count, then the parallel
    /// endpoint/endpoint/weight edge arrays), `SPAN` (spanner edge
    /// identifiers into the `GRPH` arrays) and an empty `END` terminator.
    /// Unlike the line-oriented text format, free-text fields survive
    /// byte-exactly (newlines included) and weights round-trip bit-exactly.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`; returns
    /// [`std::io::ErrorKind::InvalidInput`] for a source graph whose node
    /// count exceeds the format's per-edge bound (isolated vertices beyond
    /// ~64 per edge — see the allocation guard in
    /// [`FtSpanner::from_binary_reader`]).
    pub fn to_binary_writer<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        if self.node_count() > binary_node_bound(self.source.edge_count()) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "cannot serialize {} nodes with only {} edges: the binary format caps \
                     the node count at {} so readers can bound their allocations",
                    self.node_count(),
                    self.source.edge_count(),
                    binary_node_bound(self.source.edge_count()),
                ),
            ));
        }
        // Counts and string lengths are stored as u32; anything wider would
        // silently wrap into a corrupt (or worse, differently-shaped) file.
        let widest = self
            .node_count()
            .max(self.source.edge_count())
            .max(self.algorithm.len())
            .max(self.provenance.len());
        if widest > u32::MAX as usize {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{widest} exceeds the binary format's u32 counters"),
            ));
        }
        writer.write_all(&BINARY_MAGIC)?;
        writer.write_all(&BINARY_VERSION.to_le_bytes())?;

        let mut meta = Vec::new();
        write_bin_str(&mut meta, &self.algorithm);
        write_bin_str(&mut meta, &self.provenance);
        meta.push(match self.fault_model {
            FaultModel::Vertex => 0u8,
            FaultModel::Edge => 1u8,
        });
        meta.extend_from_slice(&(self.faults as u64).to_le_bytes());
        meta.extend_from_slice(&self.stretch.to_le_bytes());
        write_section(&mut writer, b"META", &meta)?;

        let (n, m) = (self.source.node_count(), self.source.edge_count());
        let mut grph = Vec::with_capacity(8 + 16 * m);
        grph.extend_from_slice(&(n as u32).to_le_bytes());
        grph.extend_from_slice(&(m as u32).to_le_bytes());
        for (_, e) in self.source.edges() {
            grph.extend_from_slice(&(e.u.index() as u32).to_le_bytes());
        }
        for (_, e) in self.source.edges() {
            grph.extend_from_slice(&(e.v.index() as u32).to_le_bytes());
        }
        for (_, e) in self.source.edges() {
            grph.extend_from_slice(&e.weight.to_le_bytes());
        }
        write_section(&mut writer, b"GRPH", &grph)?;

        let mut span = Vec::with_capacity(4 + 4 * self.spanner_edges.len());
        span.extend_from_slice(&(self.spanner_edges.len() as u32).to_le_bytes());
        for id in self.spanner_edges.iter() {
            span.extend_from_slice(&(id.index() as u32).to_le_bytes());
        }
        write_section(&mut writer, b"SPAN", &span)?;

        write_section(&mut writer, b"END\0", &[])
    }

    /// Reads an artifact previously written by
    /// [`FtSpanner::to_binary_writer`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on a bad magic, an unsupported
    /// version, a truncated or malformed section, or out-of-range edge data;
    /// I/O failures are wrapped the same way (the format is self-contained).
    pub fn from_binary_reader<R: Read>(mut reader: R) -> Result<Self> {
        let mut header = [0u8; 8];
        read_exact(&mut reader, &mut header, "header")?;
        if header[..4] != BINARY_MAGIC {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "bad magic in ftspanner binary data: expected `FTSP`, got {:?}",
                    &header[..4]
                ),
            });
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        match version {
            BINARY_VERSION => Self::from_binary_v1_sections(reader),
            BINARY_VERSION_V2 => {
                // v2 addresses sections by absolute offset, so the view
                // needs the whole image (header included) in one buffer.
                let mut data = header.to_vec();
                reader
                    .read_to_end(&mut data)
                    .map_err(|e| CoreError::InvalidParameter {
                        message: format!("read error in ftspanner binary data: {e}"),
                    })?;
                FtSpannerView::parse(&data)?.materialize()
            }
            other => Err(CoreError::InvalidParameter {
                message: format!(
                    "unsupported ftspanner binary version {other} (this build reads \
                     versions {BINARY_VERSION} and {BINARY_VERSION_V2})"
                ),
            }),
        }
    }

    /// Reads the section stream of a version-1 binary artifact (everything
    /// after the 8-byte magic/version header).
    fn from_binary_v1_sections<R: Read>(mut reader: R) -> Result<Self> {
        let meta = read_section(&mut reader, b"META")?;
        let mut cur = BinCursor::new(&meta, "META");
        let algorithm = cur.read_str()?;
        let provenance = cur.read_str()?;
        let fault_model = match cur.read_u8()? {
            0 => FaultModel::Vertex,
            1 => FaultModel::Edge,
            other => {
                return Err(CoreError::InvalidParameter {
                    message: format!("unknown fault model tag {other} in ftspanner binary data"),
                })
            }
        };
        let faults = cur.read_u64()? as usize;
        let stretch = f64::from_bits(cur.read_u64()?);
        cur.finish()?;

        let grph = read_section(&mut reader, b"GRPH")?;
        let mut cur = BinCursor::new(&grph, "GRPH");
        let n = cur.read_u32()? as usize;
        let m = cur.read_u32()? as usize;
        // `m` is about to be checked against bytes actually present; `n` has
        // no backing bytes, so bound it before `Graph::new(n)` turns a
        // 4-byte lie into a multi-gigabyte allocation.
        cur.expect_remaining(16 * m)?;
        if n > binary_node_bound(m) {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "implausible node count {n} for {m} edges in ftspanner binary data \
                     (limit {}): refusing the allocation",
                    binary_node_bound(m)
                ),
            });
        }
        let us: Vec<u32> = (0..m).map(|_| cur.read_u32()).collect::<Result<_>>()?;
        let vs: Vec<u32> = (0..m).map(|_| cur.read_u32()).collect::<Result<_>>()?;
        let ws: Vec<f64> = (0..m)
            .map(|_| cur.read_u64().map(f64::from_bits))
            .collect::<Result<_>>()?;
        cur.finish()?;
        let mut graph = Graph::new(n);
        for i in 0..m {
            graph
                .add_edge(
                    NodeId::new(us[i] as usize),
                    NodeId::new(vs[i] as usize),
                    ws[i],
                )
                // Out-of-range endpoints, self-loops and duplicates are all
                // malformed *data*, so they surface as the documented
                // InvalidParameter — not as a bare graph error.
                .map_err(|e| CoreError::InvalidParameter {
                    message: format!("invalid edge {i} in ftspanner binary data: {e}"),
                })?;
        }

        let span = read_section(&mut reader, b"SPAN")?;
        let mut cur = BinCursor::new(&span, "SPAN");
        let s = cur.read_u32()? as usize;
        cur.expect_remaining(4 * s)?;
        let mut edges = graph.empty_edge_set();
        for _ in 0..s {
            let idx = cur.read_u32()? as usize;
            if idx >= graph.edge_count() {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "spanner edge index {idx} out of range for {} edges in ftspanner \
                         binary data",
                        graph.edge_count()
                    ),
                });
            }
            edges.insert(ftspan_graph::EdgeId::new(idx));
        }
        cur.finish()?;

        let end = read_section(&mut reader, b"END\0")?;
        if !end.is_empty() {
            return Err(CoreError::InvalidParameter {
                message: "non-empty END section in ftspanner binary data".to_string(),
            });
        }
        // END must actually end the data: trailing garbage (a partially
        // overwritten or concatenated file) is corruption, not padding.
        let mut probe = [0u8; 1];
        match reader.read(&mut probe) {
            Ok(0) => {}
            Ok(_) => {
                return Err(CoreError::InvalidParameter {
                    message: "trailing bytes after END section in ftspanner binary data"
                        .to_string(),
                })
            }
            Err(e) => {
                return Err(CoreError::InvalidParameter {
                    message: format!("read error in ftspanner binary data: {e}"),
                })
            }
        }

        Self::from_parts(
            &graph,
            None,
            edges,
            &algorithm,
            &provenance,
            fault_model,
            faults,
            stretch,
        )
    }

    /// Serializes the artifact in the fixed-width, 8-byte-aligned version-2
    /// binary `.ftspan` layout — the format [`FtSpannerView::parse`] can
    /// validate and then borrow without copying. Round trips through
    /// [`FtSpanner::from_binary_reader`], which reads both versions.
    ///
    /// # Layout
    ///
    /// All integers are little-endian. The file opens with a 16-byte header
    /// followed immediately by the section table:
    ///
    /// | offset | bytes | contents                      |
    /// |-------:|------:|-------------------------------|
    /// | 0      | 4     | magic `FTSP`                  |
    /// | 4      | 4     | `u32` version = 2             |
    /// | 8      | 4     | `u32` section count = 6       |
    /// | 12     | 4     | `u32` reserved, zero          |
    /// | 16     | 6×24  | section table                 |
    ///
    /// Each table entry is 24 bytes: a 4-byte tag, a reserved `u32` of
    /// zeros, a `u64` absolute byte offset and a `u64` payload length.
    /// Every offset is a multiple of 8; each section begins at the previous
    /// section's end rounded up to a multiple of 8, the first at the end of
    /// the table; the file ends at the last section's end rounded up to a
    /// multiple of 8; all padding bytes are zero. The sections, in their
    /// required order:
    ///
    /// | tag    | payload |
    /// |--------|---------|
    /// | `META` | `u64` fault budget, `f64` stretch bits, `u32` fault model (0 = vertex, 1 = edge), `u32` algorithm length `a`, `u32` provenance length `p`, `u32` reserved zero, then `a` + `p` UTF-8 bytes |
    /// | `DIMS` | `u64` node count `n`, `u64` edge count `m`, `u64` spanner edge count `s` |
    /// | `EDGU` | `m × u32` edge tails |
    /// | `EDGV` | `m × u32` edge heads |
    /// | `EDGW` | `m × f64` edge weight bits |
    /// | `SPAN` | `s × u32` strictly increasing spanner edge identifiers into the edge arrays |
    ///
    /// The fixed-width arrays are what make the layout mmap-ready: a reader
    /// bounds-checks the table once and then addresses any record by offset
    /// arithmetic, with no per-edge parsing state or allocation.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`; returns
    /// [`std::io::ErrorKind::InvalidInput`] under the same node-count and
    /// `u32`-width guards as [`FtSpanner::to_binary_writer`].
    pub fn to_binary_v2_writer<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        if self.node_count() > binary_node_bound(self.source.edge_count()) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "cannot serialize {} nodes with only {} edges: the binary format caps \
                     the node count at {} so readers can bound their allocations",
                    self.node_count(),
                    self.source.edge_count(),
                    binary_node_bound(self.source.edge_count()),
                ),
            ));
        }
        let widest = self
            .node_count()
            .max(self.source.edge_count())
            .max(self.algorithm.len())
            .max(self.provenance.len());
        if widest > u32::MAX as usize {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{widest} exceeds the binary format's u32 counters"),
            ));
        }

        let (n, m) = (self.source.node_count(), self.source.edge_count());
        let s = self.spanner_edges.len();

        let mut meta = Vec::with_capacity(32 + self.algorithm.len() + self.provenance.len());
        meta.extend_from_slice(&(self.faults as u64).to_le_bytes());
        meta.extend_from_slice(&self.stretch.to_le_bytes());
        meta.extend_from_slice(
            &match self.fault_model {
                FaultModel::Vertex => 0u32,
                FaultModel::Edge => 1u32,
            }
            .to_le_bytes(),
        );
        meta.extend_from_slice(&(self.algorithm.len() as u32).to_le_bytes());
        meta.extend_from_slice(&(self.provenance.len() as u32).to_le_bytes());
        meta.extend_from_slice(&0u32.to_le_bytes());
        meta.extend_from_slice(self.algorithm.as_bytes());
        meta.extend_from_slice(self.provenance.as_bytes());

        let mut dims = Vec::with_capacity(24);
        dims.extend_from_slice(&(n as u64).to_le_bytes());
        dims.extend_from_slice(&(m as u64).to_le_bytes());
        dims.extend_from_slice(&(s as u64).to_le_bytes());

        let mut edgu = Vec::with_capacity(4 * m);
        let mut edgv = Vec::with_capacity(4 * m);
        let mut edgw = Vec::with_capacity(8 * m);
        for (_, e) in self.source.edges() {
            edgu.extend_from_slice(&(e.u.index() as u32).to_le_bytes());
            edgv.extend_from_slice(&(e.v.index() as u32).to_le_bytes());
            edgw.extend_from_slice(&e.weight.to_le_bytes());
        }
        let mut span = Vec::with_capacity(4 * s);
        for id in self.spanner_edges.iter() {
            span.extend_from_slice(&(id.index() as u32).to_le_bytes());
        }

        let sections: [(&[u8; 4], &[u8]); 6] = [
            (b"META", &meta),
            (b"DIMS", &dims),
            (b"EDGU", &edgu),
            (b"EDGV", &edgv),
            (b"EDGW", &edgw),
            (b"SPAN", &span),
        ];
        writer.write_all(&BINARY_MAGIC)?;
        writer.write_all(&BINARY_VERSION_V2.to_le_bytes())?;
        writer.write_all(&(sections.len() as u32).to_le_bytes())?;
        writer.write_all(&0u32.to_le_bytes())?;
        let mut offset = (V2_HEADER_LEN + V2_ENTRY_LEN * sections.len()) as u64;
        for (tag, payload) in &sections {
            writer.write_all(*tag)?;
            writer.write_all(&0u32.to_le_bytes())?;
            writer.write_all(&offset.to_le_bytes())?;
            writer.write_all(&(payload.len() as u64).to_le_bytes())?;
            offset += align8(payload.len()) as u64;
        }
        for (_, payload) in &sections {
            writer.write_all(payload)?;
            let pad = align8(payload.len()) - payload.len();
            writer.write_all(&[0u8; 7][..pad])?;
        }
        Ok(())
    }

    /// Parses an in-memory binary artifact, accepting either version.
    ///
    /// Version-2 images are validated and decoded in place through
    /// [`FtSpannerView`]; version-1 images (and anything malformed) fall
    /// through to the streaming reader and its typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] exactly as
    /// [`FtSpanner::from_binary_reader`] does.
    pub fn from_binary_slice(data: &[u8]) -> Result<Self> {
        if data.len() >= 8
            && data[..4] == BINARY_MAGIC
            && u32::from_le_bytes(data[4..8].try_into().expect("4 bytes")) == BINARY_VERSION_V2
        {
            return FtSpannerView::parse(data)?.materialize();
        }
        Self::from_binary_reader(data)
    }

    /// Loads a binary artifact from a file in one read, accepting either
    /// version.
    ///
    /// The whole image lands in a single buffer; for version-2 files the
    /// sections are then validated and borrowed in place
    /// ([`FtSpannerView`]), so a cold load is I/O-bound rather than
    /// parse-bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] naming the path when the
    /// file cannot be read, and the usual typed errors for malformed
    /// contents.
    pub fn from_binary_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let path = path.as_ref();
        let data = std::fs::read(path).map_err(|e| CoreError::InvalidParameter {
            message: format!(
                "cannot read ftspanner binary file `{}`: {e}",
                path.display()
            ),
        })?;
        Self::from_binary_slice(&data)
    }
}

/// Writes one length-prefixed binary section: 4-byte tag, `u64` payload
/// length, payload.
fn write_section<W: Write>(writer: &mut W, tag: &[u8; 4], payload: &[u8]) -> std::io::Result<()> {
    writer.write_all(tag)?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(payload)
}

/// Reads one section and checks its tag. The payload is streamed through
/// `Read::take`, so a lying length on truncated input is a typed error
/// instead of an absurd upfront allocation.
fn read_section<R: Read>(reader: &mut R, expected: &[u8; 4]) -> Result<Vec<u8>> {
    let mut head = [0u8; 12];
    let what = String::from_utf8_lossy(expected)
        .trim_end_matches('\0')
        .to_string();
    read_exact(reader, &mut head, &what)?;
    if head[..4] != expected[..] {
        return Err(CoreError::InvalidParameter {
            message: format!(
                "expected `{}` section in ftspanner binary data, got {:?}",
                what,
                &head[..4]
            ),
        });
    }
    let len = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes")) as usize;
    let mut payload = Vec::new();
    reader
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(|e| CoreError::InvalidParameter {
            message: format!("read error in ftspanner binary data: {e}"),
        })?;
    if payload.len() != len {
        return Err(CoreError::InvalidParameter {
            message: format!(
                "truncated `{}` section in ftspanner binary data: expected {} bytes, got {}",
                what,
                len,
                payload.len()
            ),
        });
    }
    Ok(payload)
}

fn read_exact<R: Read>(reader: &mut R, buf: &mut [u8], what: &str) -> Result<()> {
    reader
        .read_exact(buf)
        .map_err(|e| CoreError::InvalidParameter {
            message: format!("truncated ftspanner binary data ({what}): {e}"),
        })
}

fn write_bin_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over one section's payload.
struct BinCursor<'a> {
    data: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> BinCursor<'a> {
    fn new(data: &'a [u8], section: &'static str) -> Self {
        BinCursor {
            data,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        if self.pos + len > self.data.len() {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "truncated `{}` section in ftspanner binary data (wanted {} more bytes, \
                     {} left)",
                    self.section,
                    len,
                    self.data.len() - self.pos
                ),
            });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn read_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn read_str(&mut self) -> Result<String> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CoreError::InvalidParameter {
            message: format!(
                "non-UTF-8 string in `{}` section of ftspanner binary data",
                self.section
            ),
        })
    }

    /// Checks that exactly `len` bytes remain (counted records must match
    /// the section length before any allocation happens).
    fn expect_remaining(&self, len: usize) -> Result<()> {
        let left = self.data.len() - self.pos;
        if left != len {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "malformed `{}` section in ftspanner binary data: {len} bytes of records \
                     declared, {left} present",
                    self.section
                ),
            });
        }
        Ok(())
    }

    /// Rejects trailing garbage at the end of a section.
    fn finish(&self) -> Result<()> {
        if self.pos != self.data.len() {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "{} trailing bytes in `{}` section of ftspanner binary data",
                    self.data.len() - self.pos,
                    self.section
                ),
            });
        }
        Ok(())
    }
}

/// Byte size of the version-2 header (magic, version, section count,
/// reserved word).
const V2_HEADER_LEN: usize = 16;

/// Byte size of one version-2 section-table entry (tag, reserved word,
/// offset, length).
const V2_ENTRY_LEN: usize = 24;

/// The version-2 section tags in their required file order.
const V2_TAGS: [&[u8; 4]; 6] = [b"META", b"DIMS", b"EDGU", b"EDGV", b"EDGW", b"SPAN"];

/// Rounds a length up to the next multiple of 8 (the version-2 section
/// alignment).
fn align8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

/// Little-endian `u32` at a byte offset the caller has bounds-checked.
fn read_u32_at(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"))
}

/// Little-endian `u64` at a byte offset the caller has bounds-checked.
fn read_u64_at(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

/// A validated, zero-copy view of a version-2 binary artifact.
///
/// [`FtSpanner::to_binary_v2_writer`] documents the byte layout.
/// [`FtSpannerView::parse`] bounds-checks the section table, validates every
/// header field, edge record and spanner edge identifier, and then *borrows*
/// the fixed-width sections from the caller's buffer — parsing performs no
/// allocation at all, and nothing is copied until
/// [`FtSpannerView::materialize`] builds an owned [`FtSpanner`]. Accessors
/// decode individual records with `from_le_bytes`, so the buffer needs no
/// particular alignment and can come straight from a memory-mapped file.
///
/// The one malformation `parse` cannot reject without allocating is a
/// duplicate edge (detecting it needs a set over the endpoints);
/// `materialize` reports it as the usual typed error.
#[derive(Debug, Clone, Copy)]
pub struct FtSpannerView<'a> {
    algorithm: &'a str,
    provenance: &'a str,
    fault_model: FaultModel,
    faults: usize,
    stretch: f64,
    nodes: usize,
    edge_u: &'a [u8],
    edge_v: &'a [u8],
    edge_w: &'a [u8],
    span: &'a [u8],
}

impl<'a> FtSpannerView<'a> {
    /// Validates a version-2 binary image and borrows its sections without
    /// copying or allocating.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on a bad magic or version, a
    /// wrong section count, tag or order, a misaligned, overlapping or
    /// out-of-bounds section, non-zero padding or reserved bytes, a
    /// malformed `META` section, an implausible node count (the same
    /// allocation guard as version 1), mismatched section lengths, an
    /// out-of-range endpoint, self-loop or non-finite weight in the edge
    /// arrays, or spanner edge identifiers that are out of range or not
    /// strictly increasing.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        let fail = |message: String| {
            Err(CoreError::InvalidParameter {
                message: format!("{message} in ftspanner v2 binary data"),
            })
        };
        if data.len() < V2_HEADER_LEN {
            return fail(format!(
                "image of {} bytes is shorter than the {V2_HEADER_LEN}-byte header",
                data.len()
            ));
        }
        if data[..4] != BINARY_MAGIC {
            return fail(format!("bad magic {:?}", &data[..4]));
        }
        let version = read_u32_at(data, 4);
        if version != BINARY_VERSION_V2 {
            return fail(format!("version {version} is not {BINARY_VERSION_V2}"));
        }
        let count = read_u32_at(data, 8) as usize;
        if count != V2_TAGS.len() {
            return fail(format!("section count {count} is not {}", V2_TAGS.len()));
        }
        if read_u32_at(data, 12) != 0 {
            return fail("non-zero reserved header word".to_string());
        }
        let table_end = V2_HEADER_LEN + V2_ENTRY_LEN * count;
        if data.len() < table_end {
            return fail(format!(
                "image of {} bytes is shorter than its {table_end}-byte section table",
                data.len()
            ));
        }

        let mut sections = [&data[..0]; 6];
        let mut prev_end = table_end;
        for (i, tag) in V2_TAGS.iter().enumerate() {
            let base = V2_HEADER_LEN + V2_ENTRY_LEN * i;
            // Only error paths may allocate (the zero-allocation claim on
            // successful parses is pinned by a counting-allocator test), so
            // the printable tag is built lazily.
            let name = || String::from_utf8_lossy(&tag[..]).into_owned();
            if data[base..base + 4] != tag[..] {
                return fail(format!(
                    "expected `{}` section tag, got {:?}",
                    name(),
                    &data[base..base + 4]
                ));
            }
            if read_u32_at(data, base + 4) != 0 {
                return fail(format!(
                    "non-zero reserved word in `{}` table entry",
                    name()
                ));
            }
            let offset = read_u64_at(data, base + 8);
            let len = read_u64_at(data, base + 16);
            // Sections are dense: each starts at the previous end rounded
            // up to the 8-byte alignment, so offsets are fully determined
            // and a lying table cannot alias or reorder payloads.
            if offset != align8(prev_end) as u64 {
                return fail(format!(
                    "`{}` section at offset {offset}, expected {}",
                    name(),
                    align8(prev_end)
                ));
            }
            let Some(end) = offset.checked_add(len).filter(|&e| e <= data.len() as u64) else {
                return fail(format!(
                    "`{}` section of {len} bytes at offset {offset} overruns the \
                     {}-byte image",
                    name(),
                    data.len()
                ));
            };
            if data[prev_end..offset as usize].iter().any(|&b| b != 0) {
                return fail(format!("non-zero padding before `{}` section", name()));
            }
            sections[i] = &data[offset as usize..end as usize];
            prev_end = end as usize;
        }
        if data.len() != align8(prev_end) {
            return fail(format!(
                "image of {} bytes does not end at the last section's padded end {}",
                data.len(),
                align8(prev_end)
            ));
        }
        if data[prev_end..].iter().any(|&b| b != 0) {
            return fail("non-zero trailing padding".to_string());
        }

        let meta = sections[0];
        if meta.len() < 32 {
            return fail(format!(
                "`META` section of {} bytes is shorter than its 32-byte fixed part",
                meta.len()
            ));
        }
        let faults = read_u64_at(meta, 0);
        let Ok(faults) = usize::try_from(faults) else {
            return fail(format!("fault budget {faults} overflows usize"));
        };
        let stretch = f64::from_bits(read_u64_at(meta, 8));
        let fault_model = match read_u32_at(meta, 16) {
            0 => FaultModel::Vertex,
            1 => FaultModel::Edge,
            other => return fail(format!("unknown fault model tag {other}")),
        };
        let alg_len = read_u32_at(meta, 20) as usize;
        let prov_len = read_u32_at(meta, 24) as usize;
        if read_u32_at(meta, 28) != 0 {
            return fail("non-zero reserved word in `META` section".to_string());
        }
        if meta.len() != 32 + alg_len + prov_len {
            return fail(format!(
                "`META` section of {} bytes does not match its declared string \
                 lengths {alg_len} + {prov_len}",
                meta.len()
            ));
        }
        let Ok(algorithm) = std::str::from_utf8(&meta[32..32 + alg_len]) else {
            return fail("non-UTF-8 algorithm string in `META` section".to_string());
        };
        let Ok(provenance) = std::str::from_utf8(&meta[32 + alg_len..]) else {
            return fail("non-UTF-8 provenance string in `META` section".to_string());
        };

        let dims = sections[1];
        if dims.len() != 24 {
            return fail(format!(
                "`DIMS` section of {} bytes is not 24 bytes",
                dims.len()
            ));
        }
        let n = read_u64_at(dims, 0);
        let m = read_u64_at(dims, 8);
        let s = read_u64_at(dims, 16);
        // The edge arrays bound everything: m and s are backed by real
        // bytes below, and n gets the same allocation guard as version 1.
        if m > u32::MAX as u64 || s > m {
            return fail(format!("implausible dimensions m = {m}, s = {s}"));
        }
        let m = m as usize;
        let s = s as usize;
        if n > binary_node_bound(m) as u64 {
            return fail(format!(
                "implausible node count {n} for {m} edges (limit {}): refusing the allocation",
                binary_node_bound(m)
            ));
        }
        let n = n as usize;

        let (edge_u, edge_v, edge_w, span) = (sections[2], sections[3], sections[4], sections[5]);
        for (name, section, want) in [
            ("EDGU", edge_u, 4 * m),
            ("EDGV", edge_v, 4 * m),
            ("EDGW", edge_w, 8 * m),
            ("SPAN", span, 4 * s),
        ] {
            if section.len() != want {
                return fail(format!(
                    "`{name}` section of {} bytes does not match the declared \
                     {want}-byte record array",
                    section.len()
                ));
            }
        }
        for i in 0..m {
            let u = read_u32_at(edge_u, 4 * i) as usize;
            let v = read_u32_at(edge_v, 4 * i) as usize;
            let w = f64::from_bits(read_u64_at(edge_w, 8 * i));
            if u >= n || v >= n || u == v || !w.is_finite() || w < 0.0 {
                return fail(format!(
                    "invalid edge {i}: ({u}, {v}) weight {w} in a \
                     {n}-vertex graph"
                ));
            }
        }
        let mut prev: Option<u32> = None;
        for i in 0..s {
            let id = read_u32_at(span, 4 * i);
            if id as usize >= m || prev.is_some_and(|p| p >= id) {
                return fail(format!(
                    "spanner edge identifier {id} at position {i} is out of range for \
                     {m} edges or not strictly increasing"
                ));
            }
            prev = Some(id);
        }

        Ok(FtSpannerView {
            algorithm,
            provenance,
            fault_model,
            faults,
            stretch,
            nodes: n,
            edge_u,
            edge_v,
            edge_w,
            span,
        })
    }

    /// Name of the construction algorithm that produced the spanner.
    pub fn algorithm(&self) -> &'a str {
        self.algorithm
    }

    /// Free-text provenance recorded at construction time.
    pub fn provenance(&self) -> &'a str {
        self.provenance
    }

    /// Which objects the guarantee lets fail.
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// The declared fault budget `r`.
    pub fn fault_budget(&self) -> usize {
        self.faults
    }

    /// The declared stretch bound `k`.
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// Number of vertices in the source graph.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of edges in the source graph.
    pub fn edge_count(&self) -> usize {
        self.edge_u.len() / 4
    }

    /// Number of edges the spanner keeps.
    pub fn spanner_edge_count(&self) -> usize {
        self.span.len() / 4
    }

    /// Decodes source edge `i` as `(u, v, weight)` straight from the
    /// borrowed arrays.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.edge_count()`.
    pub fn edge(&self, i: usize) -> (NodeId, NodeId, f64) {
        assert!(i < self.edge_count(), "edge index {i} out of range");
        (
            NodeId::new(read_u32_at(self.edge_u, 4 * i) as usize),
            NodeId::new(read_u32_at(self.edge_v, 4 * i) as usize),
            f64::from_bits(read_u64_at(self.edge_w, 8 * i)),
        )
    }

    /// Decodes the `i`-th spanner edge identifier.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.spanner_edge_count()`.
    pub fn spanner_edge(&self, i: usize) -> ftspan_graph::EdgeId {
        assert!(
            i < self.spanner_edge_count(),
            "spanner edge index {i} out of range"
        );
        ftspan_graph::EdgeId::new(read_u32_at(self.span, 4 * i) as usize)
    }

    /// Builds an owned [`FtSpanner`] from the view — the first point at
    /// which anything is copied out of the underlying buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a duplicate edge (the
    /// one malformation [`FtSpannerView::parse`] cannot detect without
    /// allocating).
    pub fn materialize(&self) -> Result<FtSpanner> {
        let mut graph = Graph::new(self.nodes);
        for i in 0..self.edge_count() {
            let (u, v, w) = self.edge(i);
            graph
                .add_edge(u, v, w)
                .map_err(|e| CoreError::InvalidParameter {
                    message: format!("invalid edge {i} in ftspanner binary data: {e}"),
                })?;
        }
        let mut edges = graph.empty_edge_set();
        for i in 0..self.spanner_edge_count() {
            edges.insert(self.spanner_edge(i));
        }
        FtSpanner::from_parts(
            &graph,
            None,
            edges,
            self.algorithm,
            self.provenance,
            self.fault_model,
            self.faults,
            self.stretch,
        )
    }
}

/// A fault-scoped view of an [`FtSpanner`]: the declared fault set is masked
/// during traversal (no subgraph is materialized) and every query is
/// answered against the surviving spanner.
///
/// Queries naming a failed vertex report infinite distance — the vertex is
/// gone, so nothing reaches it. Out-of-range vertices are a typed error.
#[derive(Debug, Clone)]
pub struct FaultSession<'a> {
    artifact: &'a FtSpanner,
    dead_nodes: Option<Vec<bool>>,
    dead_edges: Option<Vec<bool>>,
    fault_count: usize,
}

/// The answer to a [`FaultSession::stretch_certificate`] query: both sides
/// of the stretch guarantee for one vertex pair, plus the witnessing path.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchCertificate {
    /// First query vertex.
    pub u: NodeId,
    /// Second query vertex.
    pub v: NodeId,
    /// Distance in the surviving spanner `H \ F`.
    pub spanner_distance: f64,
    /// Distance in the surviving source graph `G \ F` (the baseline the
    /// guarantee is measured against).
    pub baseline_distance: f64,
    /// Realized stretch `spanner_distance / baseline_distance` (`1.0` when
    /// the pair coincides or is disconnected in `G \ F` — the guarantee is
    /// vacuous there).
    pub stretch: f64,
    /// The declared bound `k` the certificate is checked against.
    pub bound: f64,
    /// A shortest surviving spanner path from `u` to `v`, if any.
    pub path: Option<Vec<NodeId>>,
}

impl StretchCertificate {
    /// Returns `true` if the realized stretch is within the declared bound.
    pub fn holds(&self) -> bool {
        self.stretch <= self.bound + EPS
    }
}

impl<'a> FaultSession<'a> {
    /// The artifact this session queries.
    pub fn artifact(&self) -> &'a FtSpanner {
        self.artifact
    }

    /// Number of distinct faults masked by this session.
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        let n = self.artifact.node_count();
        if v.index() >= n {
            return Err(CoreError::UnknownNode {
                node: v.index(),
                nodes: n,
            });
        }
        Ok(())
    }

    fn masks(&self) -> (Option<&[bool]>, Option<&[bool]>) {
        (self.dead_nodes.as_deref(), self.dead_edges.as_deref())
    }

    /// Shortest-path distance from `u` to `v` in the surviving spanner
    /// `H \ F` (`INFINITY` when disconnected or an endpoint has failed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Result<f64> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (dead, dead_edges) = self.masks();
        let dist = self
            .artifact
            .spanner_csr
            .sssp(u, dead, dead_edges)
            .map_err(CoreError::Graph)?;
        Ok(dist[v.index()])
    }

    /// All shortest-path distances from `u` in the surviving spanner (one
    /// traversal; cheaper than `n` [`FaultSession::distance`] calls).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if `u` is out of bounds.
    pub fn distances_from(&self, u: NodeId) -> Result<Vec<f64>> {
        self.check_node(u)?;
        let (dead, dead_edges) = self.masks();
        self.artifact
            .spanner_csr
            .sssp(u, dead, dead_edges)
            .map_err(CoreError::Graph)
    }

    /// A shortest surviving spanner path from `u` to `v`, as the ordered
    /// vertex sequence (`None` when disconnected or an endpoint has failed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn path(&self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (dead, dead_edges) = self.masks();
        let (dist, parents) = self
            .artifact
            .spanner_csr
            .sssp_with_parents(u, dead, dead_edges)
            .map_err(CoreError::Graph)?;
        Ok(reconstruct_path(&parents, &dist, u, v))
    }

    /// Distance from `u` to `v` in the surviving *source* graph `G \ F` —
    /// the baseline the stretch guarantee compares against.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn baseline_distance(&self, u: NodeId, v: NodeId) -> Result<f64> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (dead, dead_edges) = self.masks();
        let dist = self
            .artifact
            .source_csr
            .sssp(u, dead, dead_edges)
            .map_err(CoreError::Graph)?;
        Ok(dist[v.index()])
    }

    /// All shortest-path distances from `u` in the surviving *source* graph
    /// `G \ F` (one traversal; the baseline analogue of
    /// [`FaultSession::distances_from`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if `u` is out of bounds.
    pub fn baseline_distances_from(&self, u: NodeId) -> Result<Vec<f64>> {
        self.check_node(u)?;
        let (dead, dead_edges) = self.masks();
        self.artifact
            .source_csr
            .sssp(u, dead, dead_edges)
            .map_err(CoreError::Graph)
    }

    /// Produces a [`StretchCertificate`] for the pair `(u, v)`: the spanner
    /// distance, the baseline distance in `G \ F`, the realized stretch and
    /// a witnessing path, checked against the declared bound `k` via
    /// [`StretchCertificate::holds`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn stretch_certificate(&self, u: NodeId, v: NodeId) -> Result<StretchCertificate> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (dead, dead_edges) = self.masks();
        let (dist, parents) = self
            .artifact
            .spanner_csr
            .sssp_with_parents(u, dead, dead_edges)
            .map_err(CoreError::Graph)?;
        let spanner_distance = dist[v.index()];
        let baseline_distance = self.baseline_distance(u, v)?;
        let stretch = if baseline_distance == 0.0 || baseline_distance.is_infinite() {
            1.0
        } else {
            spanner_distance / baseline_distance
        };
        Ok(StretchCertificate {
            u,
            v,
            spanner_distance,
            baseline_distance,
            stretch,
            bound: self.artifact.stretch,
            path: reconstruct_path(&parents, &dist, u, v),
        })
    }

    /// Worst realized stretch over every surviving edge of the source graph
    /// (the fault-tolerant spanner condition, checked over edges — which
    /// suffices, see Section 2 of the paper). `1.0` when no edge survives.
    ///
    /// This is the same sweep the verification oracles run
    /// ([`ftspan_graph::verify::max_stretch_masked_csr`]), over the
    /// artifact's already-packed CSRs.
    pub fn max_stretch(&self) -> f64 {
        let (dead, dead_edges) = self.masks();
        ftspan_graph::verify::max_stretch_masked_csr(
            &self.artifact.source,
            &self.artifact.source_csr,
            &self.artifact.spanner_csr,
            dead,
            dead_edges,
        )
    }

    /// Returns `true` if every surviving edge is stretched at most the
    /// declared bound `k` in this session (the per-fault-set spanner
    /// condition).
    pub fn is_within_guarantee(&self) -> bool {
        self.max_stretch() <= self.artifact.stretch + EPS
    }

    /// Wraps this session in a [`CachedSession`] whose bounded LRU source
    /// cache reuses one Dijkstra tree per query source.
    ///
    /// `capacity` is the number of distinct sources kept (`0` disables
    /// caching entirely — every query recomputes, exactly like the plain
    /// session). Caching is **observationally transparent**: every answer is
    /// identical to the plain session's, at any capacity.
    pub fn cached(self, capacity: usize) -> CachedSession<'a> {
        CachedSession {
            session: self,
            capacity,
            trees: Vec::new(),
            workspace: SsspWorkspace::new(),
            hits: 0,
            misses: 0,
        }
    }
}

/// A snapshot of a [`CachedSession`]'s source-cache counters
/// ([`CachedSession::cache_stats`]).
///
/// Hits are queries answered from a resident per-source Dijkstra tree;
/// misses ran a full traversal. The counters are observability only — they
/// never influence answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from a cached tree.
    pub hits: u64,
    /// Queries that had to run Dijkstra.
    pub misses: u64,
}

impl CacheStats {
    /// Hits plus misses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// One cached shortest-path tree of a [`CachedSession`]: the spanner-side
/// distances and parents from a source, plus the lazily computed baseline
/// distances (only certificate queries need them).
#[derive(Debug, Clone)]
struct CachedTree {
    source: NodeId,
    dist: Vec<f64>,
    parents: Vec<Option<NodeId>>,
    baseline: Option<Vec<f64>>,
}

/// A [`FaultSession`] with a bounded LRU cache of per-source shortest-path
/// trees, created by [`FaultSession::cached`].
///
/// Serving batches are dominated by repeated `(source, fault scope)` pairs;
/// a `distance`, `path` or `stretch_certificate` query from a source whose
/// tree is cached costs an array lookup (plus a path walk) instead of a full
/// Dijkstra. Cache misses compute through a reusable [`SsspWorkspace`], so
/// even a cold cache allocates less than the plain session.
///
/// The cache is **observationally transparent**: for every query and every
/// capacity (including `0` = off), the answer is byte-identical to the
/// underlying [`FaultSession`]'s. Methods take `&mut self` only to maintain
/// the cache.
///
/// The recency list is a plain `Vec` scanned linearly, a deliberate
/// small-capacity design: at the tens-to-hundreds of sources a serving
/// group sees, the scan is noise next to the Dijkstra run a hit saves.
/// Capacities in the many thousands would want an index next to the list.
#[derive(Debug)]
pub struct CachedSession<'a> {
    session: FaultSession<'a>,
    capacity: usize,
    /// LRU order: least recently used first, most recent last.
    trees: Vec<CachedTree>,
    workspace: SsspWorkspace,
    hits: u64,
    misses: u64,
}

impl<'a> CachedSession<'a> {
    /// The underlying fault-scoped session.
    pub fn session(&self) -> &FaultSession<'a> {
        &self.session
    }

    /// The artifact this session queries.
    pub fn artifact(&self) -> &'a FtSpanner {
        self.session.artifact
    }

    /// The configured cache capacity (distinct sources kept).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queries answered from a cached tree.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of queries that had to run Dijkstra.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// A snapshot of the hit/miss counters (the serving engine aggregates
    /// these across planned groups into its `EngineStats` surface).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Ensures the tree rooted at `u` is resident and returns its index
    /// (always the most-recent slot, `self.trees.len() - 1`).
    fn ensure_tree(&mut self, u: NodeId) -> Result<usize> {
        self.session.check_node(u)?;
        if self.capacity > 0 {
            if let Some(i) = self.trees.iter().position(|t| t.source == u) {
                self.hits += 1;
                let tree = self.trees.remove(i);
                self.trees.push(tree);
                return Ok(self.trees.len() - 1);
            }
        }
        self.misses += 1;
        let (dead, dead_edges) = (
            self.session.dead_nodes.as_deref(),
            self.session.dead_edges.as_deref(),
        );
        self.session
            .artifact
            .spanner_csr
            .sssp_into(u, dead, dead_edges, None, &mut self.workspace)
            .map_err(CoreError::Graph)?;
        let tree = CachedTree {
            source: u,
            dist: self.workspace.distances().to_vec(),
            parents: self.workspace.parents().to_vec(),
            baseline: None,
        };
        if self.capacity == 0 {
            self.trees.clear();
        } else {
            while self.trees.len() >= self.capacity {
                self.trees.remove(0);
            }
        }
        self.trees.push(tree);
        Ok(self.trees.len() - 1)
    }

    /// Ensures the baseline (source-graph) distances of the tree at `slot`
    /// are computed.
    fn ensure_baseline(&mut self, slot: usize) -> Result<()> {
        if self.trees[slot].baseline.is_some() {
            return Ok(());
        }
        let u = self.trees[slot].source;
        let (dead, dead_edges) = (
            self.session.dead_nodes.as_deref(),
            self.session.dead_edges.as_deref(),
        );
        self.session
            .artifact
            .source_csr
            .sssp_into(u, dead, dead_edges, None, &mut self.workspace)
            .map_err(CoreError::Graph)?;
        self.trees[slot].baseline = Some(self.workspace.distances().to_vec());
        Ok(())
    }

    /// Shortest-path distance from `u` to `v` in the surviving spanner
    /// (identical to [`FaultSession::distance`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn distance(&mut self, u: NodeId, v: NodeId) -> Result<f64> {
        // Endpoints are checked in the same order as the plain session, so
        // error values are identical too.
        self.session.check_node(u)?;
        self.session.check_node(v)?;
        let slot = self.ensure_tree(u)?;
        Ok(self.trees[slot].dist[v.index()])
    }

    /// All shortest-path distances from `u` in the surviving spanner
    /// (identical to [`FaultSession::distances_from`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if `u` is out of bounds.
    pub fn distances_from(&mut self, u: NodeId) -> Result<Vec<f64>> {
        let slot = self.ensure_tree(u)?;
        Ok(self.trees[slot].dist.clone())
    }

    /// All baseline (source-graph) distances from `u` (identical to
    /// [`FaultSession::baseline_distances_from`]), cached per source like
    /// every other query.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if `u` is out of bounds.
    pub fn baseline_distances_from(&mut self, u: NodeId) -> Result<Vec<f64>> {
        let slot = self.ensure_tree(u)?;
        self.ensure_baseline(slot)?;
        Ok(self.trees[slot].baseline.clone().expect("just ensured"))
    }

    /// A shortest surviving spanner path from `u` to `v` (identical to
    /// [`FaultSession::path`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn path(&mut self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.session.check_node(u)?;
        self.session.check_node(v)?;
        let slot = self.ensure_tree(u)?;
        let tree = &self.trees[slot];
        Ok(reconstruct_path(&tree.parents, &tree.dist, u, v))
    }

    /// A [`StretchCertificate`] for the pair `(u, v)` (identical to
    /// [`FaultSession::stretch_certificate`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn stretch_certificate(&mut self, u: NodeId, v: NodeId) -> Result<StretchCertificate> {
        self.session.check_node(u)?;
        self.session.check_node(v)?;
        let slot = self.ensure_tree(u)?;
        self.ensure_baseline(slot)?;
        let tree = &self.trees[slot];
        let spanner_distance = tree.dist[v.index()];
        let baseline_distance = tree.baseline.as_ref().expect("just ensured")[v.index()];
        let stretch = if baseline_distance == 0.0 || baseline_distance.is_infinite() {
            1.0
        } else {
            spanner_distance / baseline_distance
        };
        Ok(StretchCertificate {
            u,
            v,
            spanner_distance,
            baseline_distance,
            stretch,
            bound: self.session.artifact.stretch,
            path: reconstruct_path(&tree.parents, &tree.dist, u, v),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::core_algorithms;
    use crate::api::Registry;
    use crate::SpannerRequest;
    use ftspan_graph::{generate, shortest_path, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn conversion_artifact(seed: u64, faults: usize) -> (Graph, FtSpanner) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut rng);
        let registry = Registry::from_algorithms(core_algorithms());
        let report = registry
            .get("conversion")
            .unwrap()
            .build((&g).into(), &SpannerRequest::new(faults), &mut rng)
            .unwrap();
        let artifact = FtSpanner::from_report(&g, &report).unwrap();
        (g, artifact)
    }

    #[test]
    fn artifact_carries_the_declared_guarantee() {
        let (g, artifact) = conversion_artifact(1, 2);
        assert_eq!(artifact.algorithm(), "conversion");
        assert_eq!(artifact.fault_budget(), 2);
        assert_eq!(artifact.fault_model(), FaultModel::Vertex);
        assert_eq!(artifact.stretch(), 3.0);
        assert_eq!(artifact.node_count(), g.node_count());
        assert_eq!(artifact.source_edge_count(), g.edge_count());
        assert_eq!(
            artifact.spanner_edge_count(),
            artifact.spanner_edges().len()
        );
        assert!(artifact.provenance().contains("Theorem"));
    }

    #[test]
    fn session_distance_matches_independent_dijkstra() {
        let (g, artifact) = conversion_artifact(2, 1);
        for fault in 0..5usize {
            let session = artifact.under_faults(&[NodeId::new(fault)]).unwrap();
            // Independent oracle: materialize H \ F and run plain Dijkstra.
            let h = g
                .subgraph(artifact.spanner_edges())
                .unwrap()
                .remove_vertices(&[NodeId::new(fault)]);
            for u in [0usize, 3, 9] {
                let expected = shortest_path::dijkstra(&h, NodeId::new(u)).unwrap();
                for (v, &oracle) in expected.iter().enumerate() {
                    let got = session.distance(NodeId::new(u), NodeId::new(v)).unwrap();
                    let want = if fault == u || fault == v {
                        f64::INFINITY
                    } else {
                        oracle
                    };
                    assert_eq!(got, want, "fault {fault}, pair ({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn session_rejects_oversized_fault_sets_with_typed_error() {
        let (_, artifact) = conversion_artifact(3, 1);
        let err = artifact
            .under_faults(&[NodeId::new(0), NodeId::new(1)])
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::TooManyFaults {
                given: 2,
                budget: 1
            }
        );
        // Duplicates are collapsed before the budget check.
        assert!(artifact
            .under_faults(&[NodeId::new(4), NodeId::new(4)])
            .is_ok());
        let err = artifact.under_faults(&[NodeId::new(999)]).unwrap_err();
        assert!(matches!(err, CoreError::UnknownNode { node: 999, .. }));
    }

    #[test]
    fn session_rejects_wrong_fault_kind() {
        let (_, artifact) = conversion_artifact(4, 1);
        let err = artifact
            .under_edge_faults(&[(NodeId::new(0), NodeId::new(1))])
            .unwrap_err();
        assert!(matches!(err, CoreError::FaultModelMismatch { .. }));
    }

    #[test]
    fn paths_witness_distances() {
        let (g, artifact) = conversion_artifact(5, 1);
        let session = artifact.under_faults(&[NodeId::new(2)]).unwrap();
        for u in 0..6usize {
            for v in 0..6usize {
                let d = session.distance(NodeId::new(u), NodeId::new(v)).unwrap();
                let p = session.path(NodeId::new(u), NodeId::new(v)).unwrap();
                match p {
                    None => assert!(d.is_infinite()),
                    Some(path) => {
                        assert_eq!(path.first(), Some(&NodeId::new(u)));
                        assert_eq!(path.last(), Some(&NodeId::new(v)));
                        let mut total = 0.0;
                        for w in path.windows(2) {
                            let e = g.find_edge(w[0], w[1]).expect("path edges exist");
                            assert!(
                                artifact.spanner_edges().contains(e),
                                "path used a non-spanner edge"
                            );
                            assert!(
                                !w.iter().any(|x| x.index() == 2),
                                "path passed through the failed vertex"
                            );
                            total += g.edge(e).weight;
                        }
                        assert!((total - d).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn certificates_hold_within_budget_and_match_the_oracle() {
        let (g, artifact) = conversion_artifact(6, 1);
        for fault in 0..g.node_count() {
            let session = artifact.under_faults(&[NodeId::new(fault)]).unwrap();
            assert!(session.is_within_guarantee());
            let oracle = verify::max_stretch_under_faults(
                &g,
                artifact.spanner_edges(),
                &ftspan_graph::faults::FaultSet::from_indices([fault]),
            );
            assert!((session.max_stretch() - oracle).abs() < 1e-9);
            for (u, v) in [(0usize, 5), (1, 9), (3, 17)] {
                let cert = session
                    .stretch_certificate(NodeId::new(u), NodeId::new(v))
                    .unwrap();
                assert!(cert.holds(), "certificate violated at fault {fault}");
                assert_eq!(cert.bound, 3.0);
            }
        }
    }

    #[test]
    fn edge_fault_sessions_mask_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generate::connected_gnp(16, 0.35, generate::WeightKind::Unit, &mut rng);
        let registry = Registry::from_algorithms(core_algorithms());
        let report = registry
            .get("edge-fault")
            .unwrap()
            .build((&g).into(), &SpannerRequest::new(1), &mut rng)
            .unwrap();
        let artifact = FtSpanner::from_report(&g, &report).unwrap();
        assert_eq!(artifact.fault_model(), FaultModel::Edge);
        // Vertex sessions are the wrong kind.
        assert!(matches!(
            artifact.under_faults(&[NodeId::new(0)]),
            Err(CoreError::FaultModelMismatch { .. })
        ));
        // Fail each spanner edge in turn: the guarantee must survive.
        for id in artifact.spanner_edges().iter().take(10) {
            let e = *g.edge(id);
            let session = artifact.under_edge_faults(&[(e.u, e.v)]).unwrap();
            assert!(session.is_within_guarantee(), "edge fault {id} broke it");
        }
        // A non-edge is a typed error.
        let missing = (0..g.node_count())
            .flat_map(|u| ((u + 1)..g.node_count()).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId::new(u), NodeId::new(v)))
            .expect("sparse graph has a non-edge");
        assert!(matches!(
            artifact.under_edge_faults(&[(NodeId::new(missing.0), NodeId::new(missing.1))]),
            Err(CoreError::UnknownEdge { .. })
        ));
    }

    #[test]
    fn directed_reports_are_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let dg = generate::directed_gnp(8, 0.5, generate::WeightKind::Unit, &mut rng);
        let registry = Registry::from_algorithms(core_algorithms());
        let report = registry
            .get("two-spanner-greedy")
            .unwrap()
            .build((&dg).into(), &SpannerRequest::new(1), &mut rng)
            .unwrap();
        let g = Graph::new(8);
        assert!(matches!(
            FtSpanner::from_report(&g, &report),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn adopted_artifacts_and_unchecked_sessions() {
        // Adopt a plain (non-fault-tolerant) spanner with a zero budget: the
        // checked session rejects any fault, the unchecked one still serves.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generate::connected_gnp(14, 0.4, generate::WeightKind::Unit, &mut rng);
        let artifact = FtSpanner::from_edge_set(
            &g,
            g.full_edge_set(),
            "adopted",
            "hand-rolled full graph",
            FaultModel::Vertex,
            0,
            1.0,
        )
        .unwrap();
        assert!(matches!(
            artifact.under_faults(&[NodeId::new(0)]),
            Err(CoreError::TooManyFaults {
                given: 1,
                budget: 0
            })
        ));
        let session = artifact.under_faults_unchecked(&[NodeId::new(0)]).unwrap();
        assert_eq!(session.fault_count(), 1);
        // The full graph is a 1-spanner under any fault set.
        assert!(session.is_within_guarantee());
        assert!(artifact.under_faults_unchecked(&[NodeId::new(99)]).is_err());
    }

    #[test]
    fn text_serialization_round_trips() {
        let (_, artifact) = conversion_artifact(9, 2);
        let mut buf = Vec::new();
        artifact.to_writer(&mut buf).unwrap();
        let restored = FtSpanner::from_reader(buf.as_slice()).unwrap();
        assert_eq!(artifact, restored);
        // And the restored artifact serves identical answers.
        let a = artifact.under_faults(&[NodeId::new(1)]).unwrap();
        let b = restored.under_faults(&[NodeId::new(1)]).unwrap();
        for u in 0..artifact.node_count() {
            let x = a.distances_from(NodeId::new(u)).unwrap();
            let y = b.distances_from(NodeId::new(u)).unwrap();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn binary_serialization_round_trips() {
        let (_, artifact) = conversion_artifact(11, 2);
        let mut buf = Vec::new();
        artifact.to_binary_writer(&mut buf).unwrap();
        assert_eq!(&buf[..4], &BINARY_MAGIC);
        let restored = FtSpanner::from_binary_reader(buf.as_slice()).unwrap();
        assert_eq!(artifact, restored);
        // Byte-stable: re-serializing the restored artifact is identical.
        let mut again = Vec::new();
        restored.to_binary_writer(&mut again).unwrap();
        assert_eq!(buf, again);
    }

    #[test]
    fn binary_v2_round_trips_through_every_reader() {
        let (g, artifact) = conversion_artifact(11, 2);
        let mut buf = Vec::new();
        artifact.to_binary_v2_writer(&mut buf).unwrap();
        assert_eq!(&buf[..4], &BINARY_MAGIC);
        assert_eq!(buf[4], 2);
        assert_eq!(buf.len() % 8, 0, "v2 images end 8-byte aligned");

        // The view sees the artifact's exact shape without materializing.
        let view = FtSpannerView::parse(&buf).unwrap();
        assert_eq!(view.algorithm(), artifact.algorithm());
        assert_eq!(view.provenance(), artifact.provenance());
        assert_eq!(view.fault_model(), artifact.fault_model());
        assert_eq!(view.fault_budget(), artifact.fault_budget());
        assert_eq!(view.stretch(), artifact.stretch());
        assert_eq!(view.node_count(), artifact.node_count());
        assert_eq!(view.edge_count(), g.edge_count());
        assert_eq!(view.spanner_edge_count(), artifact.spanner_edge_count());
        for (i, (id, e)) in g.edges().enumerate() {
            assert_eq!(view.edge(i), (e.u, e.v, e.weight));
            let _ = id;
        }

        // All three decode paths agree with the original.
        assert_eq!(view.materialize().unwrap(), artifact);
        assert_eq!(
            FtSpanner::from_binary_reader(buf.as_slice()).unwrap(),
            artifact
        );
        assert_eq!(FtSpanner::from_binary_slice(&buf).unwrap(), artifact);

        // Byte-stable: re-serializing the restored artifact is identical.
        let mut again = Vec::new();
        view.materialize()
            .unwrap()
            .to_binary_v2_writer(&mut again)
            .unwrap();
        assert_eq!(buf, again);
    }

    #[test]
    fn binary_v2_file_load_reads_both_versions() {
        let (_, artifact) = conversion_artifact(13, 1);
        let dir =
            std::env::temp_dir().join(format!("ftspan-core-v2-{}-{}", std::process::id(), line!()));
        std::fs::create_dir_all(&dir).unwrap();
        let v1 = dir.join("artifact-v1.ftspan");
        let v2 = dir.join("artifact-v2.ftspan");
        let mut buf = Vec::new();
        artifact.to_binary_writer(&mut buf).unwrap();
        std::fs::write(&v1, &buf).unwrap();
        buf.clear();
        artifact.to_binary_v2_writer(&mut buf).unwrap();
        std::fs::write(&v2, &buf).unwrap();

        assert_eq!(FtSpanner::from_binary_file(&v1).unwrap(), artifact);
        assert_eq!(FtSpanner::from_binary_file(&v2).unwrap(), artifact);
        let missing = FtSpanner::from_binary_file(dir.join("absent.ftspan"));
        match missing {
            Err(CoreError::InvalidParameter { message }) => {
                assert!(message.contains("absent.ftspan"), "error names the path");
            }
            other => panic!("expected a typed error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_v2_corruption_is_a_typed_error() {
        let (_, artifact) = conversion_artifact(12, 1);
        let mut good = Vec::new();
        artifact.to_binary_v2_writer(&mut good).unwrap();
        assert!(FtSpannerView::parse(&good).is_ok());

        let expect_reject = |bytes: &[u8], what: &str| {
            assert!(
                matches!(
                    FtSpannerView::parse(bytes),
                    Err(CoreError::InvalidParameter { .. })
                ),
                "view accepted {what}"
            );
            assert!(
                matches!(
                    FtSpanner::from_binary_reader(bytes),
                    Err(CoreError::InvalidParameter { .. })
                ),
                "reader accepted {what}"
            );
        };

        // Truncation everywhere: inside the header, the table, each section.
        for cut in [0, 4, 9, 20, 100, good.len() / 2, good.len() - 8] {
            expect_reject(&good[..cut], &format!("truncation at {cut}"));
        }
        // Trailing garbage past the padded end.
        let mut trailing = good.clone();
        trailing.extend_from_slice(&[0u8; 8]);
        expect_reject(&trailing, "trailing bytes");
        let mut dirty_pad = good.clone();
        dirty_pad.extend_from_slice(&[1u8; 8]);
        expect_reject(&dirty_pad, "non-zero trailing bytes");

        // Header lies: magic, section count, reserved word.
        let mut patched = good.clone();
        patched[0] = b'X';
        expect_reject(&patched, "bad magic");
        let mut patched = good.clone();
        patched[8] = 7;
        expect_reject(&patched, "wrong section count");
        let mut patched = good.clone();
        patched[12] = 1;
        expect_reject(&patched, "non-zero reserved header word");

        // Table lies: tag, offset, length.
        let mut patched = good.clone();
        patched[V2_HEADER_LEN] = b'X';
        expect_reject(&patched, "wrong first tag");
        let mut patched = good.clone();
        patched[V2_HEADER_LEN + 8] = patched[V2_HEADER_LEN + 8].wrapping_add(8);
        expect_reject(&patched, "shifted META offset");
        let mut patched = good.clone();
        patched[V2_HEADER_LEN + 16] = patched[V2_HEADER_LEN + 16].wrapping_add(1);
        expect_reject(&patched, "lying META length");

        // META lies: fault model tag, string lengths, non-UTF-8 bytes.
        let meta_at = V2_HEADER_LEN + V2_ENTRY_LEN * V2_TAGS.len();
        let mut patched = good.clone();
        patched[meta_at + 16] = 9;
        expect_reject(&patched, "unknown fault model");
        let mut patched = good.clone();
        patched[meta_at + 20] = patched[meta_at + 20].wrapping_add(1);
        expect_reject(&patched, "lying algorithm length");
        let mut patched = good.clone();
        patched[meta_at + 32] = 0xFF; // algorithm strings are non-empty ASCII
        expect_reject(&patched, "non-UTF-8 algorithm");

        // DIMS lies: giant node count (the allocation guard), s > m.
        let dims_at = {
            let meta_len = read_u64_at(&good, V2_HEADER_LEN + 16) as usize;
            align8(meta_at + meta_len)
        };
        let mut patched = good.clone();
        patched[dims_at..dims_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        expect_reject(&patched, "a u64::MAX node count");
        let mut patched = good.clone();
        let m = read_u64_at(&good, dims_at + 8);
        patched[dims_at + 16..dims_at + 24].copy_from_slice(&(m + 1).to_le_bytes());
        expect_reject(&patched, "more spanner edges than edges");

        // Edge and spanner records: out-of-range endpoint, self-loop,
        // non-finite weight, out-of-order spanner identifiers.
        let section_offset =
            |i: usize| read_u64_at(&good, V2_HEADER_LEN + V2_ENTRY_LEN * i + 8) as usize;
        let (edgu_at, edgw_at, span_at) = (section_offset(2), section_offset(4), section_offset(5));
        let mut patched = good.clone();
        patched[edgu_at..edgu_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        expect_reject(&patched, "an out-of-range endpoint");
        let mut patched = good.clone();
        let v0 = read_u32_at(&good, section_offset(3));
        patched[edgu_at..edgu_at + 4].copy_from_slice(&v0.to_le_bytes());
        expect_reject(&patched, "a self-loop");
        let mut patched = good.clone();
        patched[edgw_at..edgw_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        expect_reject(&patched, "a NaN weight");
        let span_count = read_u64_at(&good, dims_at + 16) as usize;
        assert!(span_count >= 2, "test artifact keeps at least two edges");
        let mut patched = good.clone();
        let (a, b) = (read_u32_at(&good, span_at), read_u32_at(&good, span_at + 4));
        patched[span_at..span_at + 4].copy_from_slice(&b.to_le_bytes());
        patched[span_at + 4..span_at + 8].copy_from_slice(&a.to_le_bytes());
        expect_reject(&patched, "out-of-order spanner identifiers");
    }

    #[test]
    fn binary_format_preserves_what_text_flattens() {
        // Newlines in free-text fields and bit-exact weights survive the
        // binary round trip (the text format flattens / re-parses them).
        let g = Graph::from_edges(3, [(0, 1, 0.1 + 0.2), (1, 2, 1e-300)]).unwrap();
        let artifact = FtSpanner::from_edge_set(
            &g,
            g.full_edge_set(),
            "adopted",
            "line one\nline two",
            FaultModel::Vertex,
            1,
            3.0,
        )
        .unwrap();
        let mut buf = Vec::new();
        artifact.to_binary_writer(&mut buf).unwrap();
        let restored = FtSpanner::from_binary_reader(buf.as_slice()).unwrap();
        assert_eq!(restored.provenance(), "line one\nline two");
        assert_eq!(restored, artifact);
    }

    #[test]
    fn corrupted_binary_data_is_a_typed_error() {
        let (_, artifact) = conversion_artifact(12, 1);
        let mut good = Vec::new();
        artifact.to_binary_writer(&mut good).unwrap();

        // Empty input, bad magic, unsupported version.
        for bytes in [
            Vec::new(),
            b"NOPE".to_vec(),
            {
                let mut b = good.clone();
                b[0] = b'X';
                b
            },
            {
                let mut b = good.clone();
                b[4] = 99; // version 99
                b
            },
        ] {
            assert!(matches!(
                FtSpanner::from_binary_reader(bytes.as_slice()),
                Err(CoreError::InvalidParameter { .. })
            ));
        }
        // Truncation at every section boundary and mid-section.
        for cut in [6, 12, 20, good.len() / 2, good.len() - 1] {
            assert!(
                matches!(
                    FtSpanner::from_binary_reader(&good[..cut]),
                    Err(CoreError::InvalidParameter { .. })
                ),
                "accepted truncation at {cut}"
            );
        }
        // A section length that lies about the payload size.
        let mut lying = good.clone();
        let meta_len_at = 8 + 4; // magic + version + "META" tag
        lying[meta_len_at] = lying[meta_len_at].wrapping_add(3);
        assert!(FtSpanner::from_binary_reader(lying.as_slice()).is_err());
        // Trailing garbage after END (overwritten / concatenated files).
        let mut trailing = good.clone();
        trailing.extend_from_slice(b"junk");
        assert!(matches!(
            FtSpanner::from_binary_reader(trailing.as_slice()),
            Err(CoreError::InvalidParameter { .. })
        ));
        // Out-of-range endpoints in GRPH are InvalidParameter, as the
        // rustdoc promises (not a bare graph error).
        let g = Graph::from_unit_edges(2, [(0, 1)]).unwrap();
        let small = FtSpanner::from_edge_set(
            &g,
            g.full_edge_set(),
            "adopted",
            "p",
            FaultModel::Vertex,
            0,
            1.0,
        )
        .unwrap();
        let mut bytes = Vec::new();
        small.to_binary_writer(&mut bytes).unwrap();
        // GRPH payload starts after magic(4)+version(4)+META section; patch
        // the first endpoint (u of edge 0) to 7 >= n = 2.
        let grph_tag = bytes
            .windows(4)
            .position(|w| w == b"GRPH")
            .expect("GRPH section exists");
        let u0_at = grph_tag + 4 + 8 + 8; // tag + length + (n, m)
        bytes[u0_at] = 7;
        assert!(matches!(
            FtSpanner::from_binary_reader(bytes.as_slice()),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn implausible_node_counts_are_rejected_not_allocated() {
        // A lying node count has no backing bytes, so the reader must refuse
        // it as a typed error instead of attempting an `O(n)` allocation a
        // few corrupted bytes could inflate to gigabytes.
        let (_, artifact) = conversion_artifact(12, 1);
        let mut bytes = Vec::new();
        artifact.to_binary_writer(&mut bytes).unwrap();
        let grph_tag = bytes
            .windows(4)
            .position(|w| w == b"GRPH")
            .expect("GRPH section exists");
        let n_at = grph_tag + 4 + 8; // tag + length
        bytes[n_at..n_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match FtSpanner::from_binary_reader(bytes.as_slice()) {
            Err(CoreError::InvalidParameter { message }) => {
                assert!(
                    message.contains("implausible node count"),
                    "unexpected error: {message}"
                );
            }
            other => panic!("accepted a 4-billion-node header: {other:?}"),
        }

        // The writer enforces the same bound, so nothing it accepts is
        // unreadable: an artifact that is almost all isolated vertices at
        // million scale is refused at save time.
        let mut sparse = Graph::new((1 << 20) + 100);
        sparse
            .add_edge(NodeId::new(0), NodeId::new(1), 1.0)
            .unwrap();
        let wide = FtSpanner::from_edge_set(
            &sparse,
            sparse.full_edge_set(),
            "adopted",
            "p",
            FaultModel::Vertex,
            0,
            1.0,
        )
        .unwrap();
        let err = wide
            .to_binary_writer(&mut Vec::new())
            .expect_err("2^20 + 100 nodes on 1 edge must not serialize");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn cached_session_is_observationally_transparent() {
        let (_, artifact) = conversion_artifact(13, 2);
        let n = artifact.node_count();
        let faults = [NodeId::new(2), NodeId::new(5)];
        for capacity in [0usize, 1, 3, 64] {
            let plain = artifact.under_faults(&faults).unwrap();
            let mut cached = artifact.under_faults(&faults).unwrap().cached(capacity);
            // Repeat the sweep so every capacity exercises hits, evictions
            // and (for 0) the no-cache path.
            for _ in 0..2 {
                for u in 0..n {
                    for v in [0usize, 3, n - 1] {
                        let (u, v) = (NodeId::new(u), NodeId::new(v));
                        assert_eq!(
                            plain.distance(u, v).unwrap(),
                            cached.distance(u, v).unwrap()
                        );
                        assert_eq!(plain.path(u, v).unwrap(), cached.path(u, v).unwrap());
                        assert_eq!(
                            plain.stretch_certificate(u, v).unwrap(),
                            cached.stretch_certificate(u, v).unwrap()
                        );
                    }
                }
            }
            assert_eq!(
                plain.distances_from(NodeId::new(1)).unwrap(),
                cached.distances_from(NodeId::new(1)).unwrap()
            );
            if capacity == 0 {
                assert_eq!(cached.hits(), 0, "capacity 0 must never hit");
            } else {
                assert!(cached.hits() > 0);
            }
            assert!(cached.misses() > 0);
            let stats = cached.cache_stats();
            assert_eq!(stats.hits, cached.hits());
            assert_eq!(stats.misses, cached.misses());
            assert_eq!(stats.total(), cached.hits() + cached.misses());
            assert_eq!(cached.capacity(), capacity);
            assert_eq!(cached.session().fault_count(), 2);
            assert_eq!(cached.artifact().node_count(), n);
        }
    }

    #[test]
    fn cached_session_rejects_unknown_nodes_like_the_plain_session() {
        let (_, artifact) = conversion_artifact(14, 1);
        let plain = artifact.session();
        let mut cached = artifact.session().cached(4);
        let bad = NodeId::new(999);
        let good = NodeId::new(0);
        for (u, v) in [(bad, good), (good, bad), (bad, bad)] {
            assert_eq!(
                plain.distance(u, v).unwrap_err(),
                cached.distance(u, v).unwrap_err()
            );
            assert_eq!(
                plain.path(u, v).unwrap_err(),
                cached.path(u, v).unwrap_err()
            );
            assert_eq!(
                plain.stretch_certificate(u, v).unwrap_err(),
                cached.stretch_certificate(u, v).unwrap_err()
            );
        }
        assert_eq!(
            plain.distances_from(bad).unwrap_err(),
            cached.distances_from(bad).unwrap_err()
        );
    }

    #[test]
    fn malformed_serializations_are_typed_errors() {
        for text in [
            "",
            "ftspanner 99\n",
            "ftspanner 1\nalgorithm x\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee tachyon 1 3.0\ngraph 2 0\nspanner 0\nend\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3.0\ngraph 2 1\n0 1 1.0\nspanner 1\n7\nend\n",
            // Oversized and fractional counts must be typed errors, not
            // saturating casts that attempt absurd allocations.
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3.0\ngraph 99999999999999999999 0\nspanner 0\nend\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3.0\ngraph 2.7 0\nspanner 0\nend\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1.9 3.0\ngraph 2 0\nspanner 0\nend\n",
        ] {
            assert!(
                matches!(
                    FtSpanner::from_reader(text.as_bytes()),
                    Err(CoreError::InvalidParameter { .. })
                ),
                "accepted malformed input: {text:?}"
            );
        }
    }

    #[test]
    fn newlines_in_free_text_fields_do_not_break_the_round_trip() {
        let g = generate::path(4);
        let artifact = FtSpanner::from_edge_set(
            &g,
            g.full_edge_set(),
            "adopted",
            "line one\nline two",
            FaultModel::Vertex,
            1,
            3.0,
        )
        .unwrap();
        let mut buf = Vec::new();
        artifact.to_writer(&mut buf).unwrap();
        let restored = FtSpanner::from_reader(buf.as_slice()).unwrap();
        // Line breaks are flattened to spaces (the format is line-oriented);
        // everything else survives exactly.
        assert_eq!(restored.provenance(), "line one line two");
        assert_eq!(restored.spanner_edges(), artifact.spanner_edges());
        assert_eq!(restored.fault_budget(), artifact.fault_budget());
    }
}
