//! The query side of fault tolerance: [`FtSpanner`] artifacts and
//! fault-scoped [`FaultSession`]s.
//!
//! The constructions exist so that, *after* faults strike, the surviving
//! spanner still answers distance queries with bounded stretch — yet a
//! [`SpannerReport`] is only a bag of edges. This module promotes it to a
//! first-class artifact:
//!
//! * [`FtSpanner`] — an owned, immutable artifact built from a report and
//!   its source graph. The spanner and the source adjacency are CSR-packed
//!   for cache-friendly traversal, and the artifact carries its provenance
//!   and declared `(k, r, FaultModel)` guarantee.
//! * [`FaultSession`] — created by [`FtSpanner::under_faults`] (or
//!   [`FtSpanner::under_edge_faults`]): masks a concrete fault set *without
//!   copying* and answers [`distance`](FaultSession::distance),
//!   [`path`](FaultSession::path) and
//!   [`stretch_certificate`](FaultSession::stretch_certificate) queries.
//!   Fault sets larger than the declared budget `r` are rejected with the
//!   typed [`CoreError::TooManyFaults`].
//! * Text round-trip serialization ([`FtSpanner::to_writer`] /
//!   [`FtSpanner::from_reader`]) so artifacts can be built once and served
//!   many times, on other machines, with no extra dependencies.
//!
//! # Example
//!
//! ```
//! use ftspan_core::algorithms::core_algorithms;
//! use ftspan_core::{serve::FtSpanner, Registry, SpannerRequest};
//! use ftspan_graph::{generate, NodeId};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = generate::connected_gnp(24, 0.3, generate::WeightKind::Unit, &mut rng);
//! let registry = Registry::from_algorithms(core_algorithms());
//! let report = registry
//!     .get("conversion")
//!     .unwrap()
//!     .build((&g).into(), &SpannerRequest::new(1), &mut rng)
//!     .unwrap();
//!
//! let artifact = FtSpanner::from_report(&g, &report).unwrap();
//! let session = artifact.under_faults(&[NodeId::new(3)]).unwrap();
//! let cert = session
//!     .stretch_certificate(NodeId::new(0), NodeId::new(5))
//!     .unwrap();
//! assert!(cert.holds());
//! ```

use crate::api::{FaultModel, SpannerEdges, SpannerReport};
use crate::{CoreError, Result};
use ftspan_graph::csr::{reconstruct_path, CsrSubgraph};
use ftspan_graph::{EdgeSet, Graph, NodeId};
use std::io::{BufRead, Write};

/// Numerical slack used when comparing a certificate's stretch to its bound.
const EPS: f64 = 1e-9;

/// An owned, immutable, queryable fault-tolerant spanner.
///
/// Built from a [`SpannerReport`] (undirected constructions only) and its
/// source graph by [`FtSpanner::from_report`]; queried through fault-scoped
/// [`FaultSession`]s. The artifact packs both the spanner and the source
/// adjacency in CSR form once, so every session query streams through
/// contiguous memory instead of re-deriving subgraphs.
#[derive(Debug, Clone, PartialEq)]
pub struct FtSpanner {
    algorithm: String,
    provenance: String,
    fault_model: FaultModel,
    faults: usize,
    stretch: f64,
    source: Graph,
    spanner_edges: EdgeSet,
    source_csr: CsrSubgraph,
    spanner_csr: CsrSubgraph,
}

impl FtSpanner {
    /// Builds the artifact from a construction report and the graph it was
    /// built on.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] if the report carries directed arcs
    ///   (2-spanner plans are not distance-query artifacts).
    /// * [`CoreError::Graph`] if the report's edge set was built for a
    ///   different graph.
    pub fn from_report(graph: &Graph, report: &SpannerReport) -> Result<Self> {
        let edges = match &report.edges {
            SpannerEdges::Undirected(edges) => edges,
            SpannerEdges::Directed(_) => {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "algorithm `{}` produced a directed 2-spanner plan; only undirected \
                         spanners can serve distance queries",
                        report.algorithm
                    ),
                })
            }
        };
        Self::from_parts(
            graph,
            edges.clone(),
            &report.algorithm,
            &report.provenance,
            report.fault_model,
            report.faults,
            report.stretch,
        )
    }

    /// Adopts an arbitrary edge subset of `graph` as an artifact with the
    /// *declared* guarantee `(k, r, fault_model)`.
    ///
    /// The guarantee is recorded, not checked — this is the escape hatch for
    /// spanners built outside the registry (a plain non-fault-tolerant
    /// spanner can be adopted with `faults = 0`, a hand-rolled construction
    /// with whatever it promises). Constructions built through the unified
    /// API should use [`FtSpanner::from_report`], which copies the report's
    /// authoritative guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] if `edges` was built for a different
    /// graph.
    pub fn from_edge_set(
        graph: &Graph,
        edges: EdgeSet,
        algorithm: &str,
        provenance: &str,
        fault_model: FaultModel,
        faults: usize,
        stretch: f64,
    ) -> Result<Self> {
        Self::from_parts(
            graph,
            edges,
            algorithm,
            provenance,
            fault_model,
            faults,
            stretch,
        )
    }

    /// Builds the artifact from raw parts (the deserializer and tests use
    /// this; constructions go through [`FtSpanner::from_report`]).
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        graph: &Graph,
        spanner_edges: EdgeSet,
        algorithm: &str,
        provenance: &str,
        fault_model: FaultModel,
        faults: usize,
        stretch: f64,
    ) -> Result<Self> {
        let spanner_csr =
            CsrSubgraph::from_edge_set(graph, &spanner_edges).map_err(CoreError::Graph)?;
        Ok(FtSpanner {
            algorithm: algorithm.to_string(),
            provenance: provenance.to_string(),
            fault_model,
            faults,
            stretch,
            source_csr: CsrSubgraph::from_graph(graph),
            spanner_csr,
            spanner_edges,
            source: graph.clone(),
        })
    }

    /// Registry name of the algorithm that produced this artifact.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Human-readable provenance of the construction.
    pub fn provenance(&self) -> &str {
        &self.provenance
    }

    /// The fault model of the declared guarantee.
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// The declared fault budget `r`: sessions reject larger fault sets.
    pub fn fault_budget(&self) -> usize {
        self.faults
    }

    /// The declared stretch `k`.
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.source.node_count()
    }

    /// Number of edges in the spanner.
    pub fn spanner_edge_count(&self) -> usize {
        self.spanner_csr.edge_count()
    }

    /// Number of edges in the source graph.
    pub fn source_edge_count(&self) -> usize {
        self.source.edge_count()
    }

    /// The spanner's edges, as a subset of the source graph's edges.
    pub fn spanner_edges(&self) -> &EdgeSet {
        &self.spanner_edges
    }

    /// The source graph the artifact was built from.
    pub fn source_graph(&self) -> &Graph {
        &self.source
    }

    /// Opens a query session with no faults (the spanner as built).
    pub fn session(&self) -> FaultSession<'_> {
        FaultSession {
            artifact: self,
            dead_nodes: None,
            dead_edges: None,
            fault_count: 0,
        }
    }

    /// Opens a query session in which the given vertices have failed.
    ///
    /// The fault set is masked during traversal — nothing is copied. The
    /// guarantee `d_H\F(u, v) ≤ k · d_G\F(u, v)` holds for every session
    /// whose (deduplicated) fault set is within the declared budget.
    ///
    /// # Errors
    ///
    /// * [`CoreError::FaultModelMismatch`] if the artifact declares
    ///   edge-fault tolerance.
    /// * [`CoreError::UnknownNode`] if a fault is out of bounds.
    /// * [`CoreError::TooManyFaults`] if the deduplicated fault set is
    ///   larger than the declared budget `r`.
    pub fn under_faults(&self, faults: &[NodeId]) -> Result<FaultSession<'_>> {
        if self.fault_model != FaultModel::Vertex {
            return Err(CoreError::FaultModelMismatch {
                declared: self.fault_model,
                requested: FaultModel::Vertex,
            });
        }
        let session = self.under_faults_unchecked(faults)?;
        if session.fault_count > self.faults {
            return Err(CoreError::TooManyFaults {
                given: session.fault_count,
                budget: self.faults,
            });
        }
        Ok(session)
    }

    /// Opens a vertex-fault query session *without* enforcing the declared
    /// fault budget or fault model, for studying how a spanner degrades
    /// beyond what it was built for (the guarantee — and thus
    /// [`StretchCertificate::holds`] — may no longer hold).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if a fault is out of bounds.
    pub fn under_faults_unchecked(&self, faults: &[NodeId]) -> Result<FaultSession<'_>> {
        let n = self.node_count();
        let mut dead = vec![false; n];
        let mut distinct = 0usize;
        for &f in faults {
            if f.index() >= n {
                return Err(CoreError::UnknownNode {
                    node: f.index(),
                    nodes: n,
                });
            }
            if !dead[f.index()] {
                dead[f.index()] = true;
                distinct += 1;
            }
        }
        Ok(FaultSession {
            artifact: self,
            dead_nodes: if distinct == 0 { None } else { Some(dead) },
            dead_edges: None,
            fault_count: distinct,
        })
    }

    /// Opens a query session in which the given edges (named by their
    /// endpoints) have failed.
    ///
    /// # Errors
    ///
    /// * [`CoreError::FaultModelMismatch`] if the artifact declares
    ///   vertex-fault tolerance.
    /// * [`CoreError::UnknownNode`] / [`CoreError::UnknownEdge`] if an
    ///   endpoint is out of bounds or the named edge does not exist.
    /// * [`CoreError::TooManyFaults`] if the deduplicated fault set is
    ///   larger than the declared budget `r`.
    pub fn under_edge_faults(&self, faults: &[(NodeId, NodeId)]) -> Result<FaultSession<'_>> {
        if self.fault_model != FaultModel::Edge {
            return Err(CoreError::FaultModelMismatch {
                declared: self.fault_model,
                requested: FaultModel::Edge,
            });
        }
        let n = self.node_count();
        let mut dead = vec![false; self.source.edge_count()];
        let mut distinct = 0usize;
        for &(u, v) in faults {
            for x in [u, v] {
                if x.index() >= n {
                    return Err(CoreError::UnknownNode {
                        node: x.index(),
                        nodes: n,
                    });
                }
            }
            let id = self.source.find_edge(u, v).ok_or(CoreError::UnknownEdge {
                u: u.index(),
                v: v.index(),
            })?;
            if !dead[id.index()] {
                dead[id.index()] = true;
                distinct += 1;
            }
        }
        if distinct > self.faults {
            return Err(CoreError::TooManyFaults {
                given: distinct,
                budget: self.faults,
            });
        }
        Ok(FaultSession {
            artifact: self,
            dead_nodes: None,
            dead_edges: if distinct == 0 { None } else { Some(dead) },
            fault_count: distinct,
        })
    }

    /// Serializes the artifact as line-oriented text (dependency-free, round
    /// trips through [`FtSpanner::from_reader`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn to_writer<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        // The format is line-oriented: embedded line breaks in the free-text
        // fields would desynchronize the reader, so they are flattened to
        // spaces (the only lossy part of the round trip).
        let flatten = |s: &str| s.replace(['\n', '\r'], " ");
        writeln!(writer, "ftspanner 1")?;
        writeln!(writer, "algorithm {}", flatten(&self.algorithm))?;
        writeln!(writer, "provenance {}", flatten(&self.provenance))?;
        writeln!(
            writer,
            "guarantee {} {} {:?}",
            self.fault_model, self.faults, self.stretch
        )?;
        writeln!(
            writer,
            "graph {} {}",
            self.source.node_count(),
            self.source.edge_count()
        )?;
        for (_, e) in self.source.edges() {
            writeln!(writer, "{} {} {:?}", e.u, e.v, e.weight)?;
        }
        writeln!(writer, "spanner {}", self.spanner_edges.len())?;
        for id in self.spanner_edges.iter() {
            writeln!(writer, "{id}")?;
        }
        writeln!(writer, "end")
    }

    /// Reads an artifact previously written by [`FtSpanner::to_writer`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on malformed input and wraps
    /// I/O failures the same way (the format is self-contained text).
    pub fn from_reader<R: BufRead>(reader: R) -> Result<Self> {
        let mut lines = reader.lines();
        let mut next_line = move || -> Result<String> {
            match lines.next() {
                Some(Ok(line)) => Ok(line),
                Some(Err(e)) => Err(CoreError::InvalidParameter {
                    message: format!("read error in ftspanner data: {e}"),
                }),
                None => Err(CoreError::InvalidParameter {
                    message: "unexpected end of ftspanner data".to_string(),
                }),
            }
        };
        let parse = |what: &str, token: &str| -> Result<f64> {
            token
                .parse::<f64>()
                .map_err(|_| CoreError::InvalidParameter {
                    message: format!("malformed {what} in ftspanner data: `{token}`"),
                })
        };
        // Counts and indices are parsed as integers through the u32 id width
        // (not via f64) so that oversized or fractional values are typed
        // errors instead of saturating casts that could attempt absurd
        // allocations.
        let parse_count = |what: &str, token: &str| -> Result<usize> {
            token
                .parse::<u32>()
                .map(|v| v as usize)
                .map_err(|_| CoreError::InvalidParameter {
                    message: format!("malformed {what} in ftspanner data: `{token}`"),
                })
        };

        let header = next_line()?;
        if header.trim() != "ftspanner 1" {
            return Err(CoreError::InvalidParameter {
                message: format!("unsupported ftspanner header: `{header}`"),
            });
        }
        let algorithm = next_line()?
            .strip_prefix("algorithm ")
            .ok_or_else(|| CoreError::InvalidParameter {
                message: "missing `algorithm` line in ftspanner data".to_string(),
            })?
            .to_string();
        let provenance = next_line()?
            .strip_prefix("provenance ")
            .ok_or_else(|| CoreError::InvalidParameter {
                message: "missing `provenance` line in ftspanner data".to_string(),
            })?
            .to_string();
        let guarantee_line = next_line()?;
        let guarantee: Vec<&str> = guarantee_line.split_whitespace().collect();
        let (fault_model, faults, stretch) = match guarantee.as_slice() {
            ["guarantee", model, r, k] => {
                let model = match *model {
                    "vertex" => FaultModel::Vertex,
                    "edge" => FaultModel::Edge,
                    other => {
                        return Err(CoreError::InvalidParameter {
                            message: format!("unknown fault model `{other}` in ftspanner data"),
                        })
                    }
                };
                (model, parse_count("fault budget", r)?, parse("stretch", k)?)
            }
            _ => {
                return Err(CoreError::InvalidParameter {
                    message: format!("malformed guarantee line: `{guarantee_line}`"),
                })
            }
        };
        let graph_line = next_line()?;
        let dims: Vec<&str> = graph_line.split_whitespace().collect();
        let (n, m) = match dims.as_slice() {
            ["graph", n, m] => (
                parse_count("vertex count", n)?,
                parse_count("edge count", m)?,
            ),
            _ => {
                return Err(CoreError::InvalidParameter {
                    message: format!("malformed graph line: `{graph_line}`"),
                })
            }
        };
        let mut graph = Graph::new(n);
        for _ in 0..m {
            let line = next_line()?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                [u, v, w] => {
                    let u = parse_count("endpoint", u)?;
                    let v = parse_count("endpoint", v)?;
                    let w = parse("weight", w)?;
                    graph
                        .add_edge(NodeId::new(u), NodeId::new(v), w)
                        .map_err(CoreError::Graph)?;
                }
                _ => {
                    return Err(CoreError::InvalidParameter {
                        message: format!("malformed edge line: `{line}`"),
                    })
                }
            }
        }
        let spanner_line = next_line()?;
        let s = match spanner_line
            .split_whitespace()
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["spanner", s] => parse_count("spanner size", s)?,
            _ => {
                return Err(CoreError::InvalidParameter {
                    message: format!("malformed spanner line: `{spanner_line}`"),
                })
            }
        };
        let mut edges = graph.empty_edge_set();
        for _ in 0..s {
            let line = next_line()?;
            let idx = parse_count("spanner edge index", line.trim())?;
            if idx >= graph.edge_count() {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "spanner edge index {idx} out of range for {} edges",
                        graph.edge_count()
                    ),
                });
            }
            edges.insert(ftspan_graph::EdgeId::new(idx));
        }
        if next_line()?.trim() != "end" {
            return Err(CoreError::InvalidParameter {
                message: "missing `end` terminator in ftspanner data".to_string(),
            });
        }
        Self::from_parts(
            &graph,
            edges,
            &algorithm,
            &provenance,
            fault_model,
            faults,
            stretch,
        )
    }
}

/// A fault-scoped view of an [`FtSpanner`]: the declared fault set is masked
/// during traversal (no subgraph is materialized) and every query is
/// answered against the surviving spanner.
///
/// Queries naming a failed vertex report infinite distance — the vertex is
/// gone, so nothing reaches it. Out-of-range vertices are a typed error.
#[derive(Debug, Clone)]
pub struct FaultSession<'a> {
    artifact: &'a FtSpanner,
    dead_nodes: Option<Vec<bool>>,
    dead_edges: Option<Vec<bool>>,
    fault_count: usize,
}

/// The answer to a [`FaultSession::stretch_certificate`] query: both sides
/// of the stretch guarantee for one vertex pair, plus the witnessing path.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchCertificate {
    /// First query vertex.
    pub u: NodeId,
    /// Second query vertex.
    pub v: NodeId,
    /// Distance in the surviving spanner `H \ F`.
    pub spanner_distance: f64,
    /// Distance in the surviving source graph `G \ F` (the baseline the
    /// guarantee is measured against).
    pub baseline_distance: f64,
    /// Realized stretch `spanner_distance / baseline_distance` (`1.0` when
    /// the pair coincides or is disconnected in `G \ F` — the guarantee is
    /// vacuous there).
    pub stretch: f64,
    /// The declared bound `k` the certificate is checked against.
    pub bound: f64,
    /// A shortest surviving spanner path from `u` to `v`, if any.
    pub path: Option<Vec<NodeId>>,
}

impl StretchCertificate {
    /// Returns `true` if the realized stretch is within the declared bound.
    pub fn holds(&self) -> bool {
        self.stretch <= self.bound + EPS
    }
}

impl<'a> FaultSession<'a> {
    /// The artifact this session queries.
    pub fn artifact(&self) -> &'a FtSpanner {
        self.artifact
    }

    /// Number of distinct faults masked by this session.
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        let n = self.artifact.node_count();
        if v.index() >= n {
            return Err(CoreError::UnknownNode {
                node: v.index(),
                nodes: n,
            });
        }
        Ok(())
    }

    fn masks(&self) -> (Option<&[bool]>, Option<&[bool]>) {
        (self.dead_nodes.as_deref(), self.dead_edges.as_deref())
    }

    /// Shortest-path distance from `u` to `v` in the surviving spanner
    /// `H \ F` (`INFINITY` when disconnected or an endpoint has failed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Result<f64> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (dead, dead_edges) = self.masks();
        let dist = self
            .artifact
            .spanner_csr
            .sssp(u, dead, dead_edges)
            .map_err(CoreError::Graph)?;
        Ok(dist[v.index()])
    }

    /// All shortest-path distances from `u` in the surviving spanner (one
    /// traversal; cheaper than `n` [`FaultSession::distance`] calls).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if `u` is out of bounds.
    pub fn distances_from(&self, u: NodeId) -> Result<Vec<f64>> {
        self.check_node(u)?;
        let (dead, dead_edges) = self.masks();
        self.artifact
            .spanner_csr
            .sssp(u, dead, dead_edges)
            .map_err(CoreError::Graph)
    }

    /// A shortest surviving spanner path from `u` to `v`, as the ordered
    /// vertex sequence (`None` when disconnected or an endpoint has failed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn path(&self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (dead, dead_edges) = self.masks();
        let (dist, parents) = self
            .artifact
            .spanner_csr
            .sssp_with_parents(u, dead, dead_edges)
            .map_err(CoreError::Graph)?;
        Ok(reconstruct_path(&parents, &dist, u, v))
    }

    /// Distance from `u` to `v` in the surviving *source* graph `G \ F` —
    /// the baseline the stretch guarantee compares against.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn baseline_distance(&self, u: NodeId, v: NodeId) -> Result<f64> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (dead, dead_edges) = self.masks();
        let dist = self
            .artifact
            .source_csr
            .sssp(u, dead, dead_edges)
            .map_err(CoreError::Graph)?;
        Ok(dist[v.index()])
    }

    /// Produces a [`StretchCertificate`] for the pair `(u, v)`: the spanner
    /// distance, the baseline distance in `G \ F`, the realized stretch and
    /// a witnessing path, checked against the declared bound `k` via
    /// [`StretchCertificate::holds`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if an endpoint is out of bounds.
    pub fn stretch_certificate(&self, u: NodeId, v: NodeId) -> Result<StretchCertificate> {
        self.check_node(u)?;
        self.check_node(v)?;
        let (dead, dead_edges) = self.masks();
        let (dist, parents) = self
            .artifact
            .spanner_csr
            .sssp_with_parents(u, dead, dead_edges)
            .map_err(CoreError::Graph)?;
        let spanner_distance = dist[v.index()];
        let baseline_distance = self.baseline_distance(u, v)?;
        let stretch = if baseline_distance == 0.0 || baseline_distance.is_infinite() {
            1.0
        } else {
            spanner_distance / baseline_distance
        };
        Ok(StretchCertificate {
            u,
            v,
            spanner_distance,
            baseline_distance,
            stretch,
            bound: self.artifact.stretch,
            path: reconstruct_path(&parents, &dist, u, v),
        })
    }

    /// Worst realized stretch over every surviving edge of the source graph
    /// (the fault-tolerant spanner condition, checked over edges — which
    /// suffices, see Section 2 of the paper). `1.0` when no edge survives.
    ///
    /// This is the same sweep the verification oracles run
    /// ([`ftspan_graph::verify::max_stretch_masked_csr`]), over the
    /// artifact's already-packed CSRs.
    pub fn max_stretch(&self) -> f64 {
        let (dead, dead_edges) = self.masks();
        ftspan_graph::verify::max_stretch_masked_csr(
            &self.artifact.source,
            &self.artifact.source_csr,
            &self.artifact.spanner_csr,
            dead,
            dead_edges,
        )
    }

    /// Returns `true` if every surviving edge is stretched at most the
    /// declared bound `k` in this session (the per-fault-set spanner
    /// condition).
    pub fn is_within_guarantee(&self) -> bool {
        self.max_stretch() <= self.artifact.stretch + EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::core_algorithms;
    use crate::api::Registry;
    use crate::SpannerRequest;
    use ftspan_graph::{generate, shortest_path, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn conversion_artifact(seed: u64, faults: usize) -> (Graph, FtSpanner) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut rng);
        let registry = Registry::from_algorithms(core_algorithms());
        let report = registry
            .get("conversion")
            .unwrap()
            .build((&g).into(), &SpannerRequest::new(faults), &mut rng)
            .unwrap();
        let artifact = FtSpanner::from_report(&g, &report).unwrap();
        (g, artifact)
    }

    #[test]
    fn artifact_carries_the_declared_guarantee() {
        let (g, artifact) = conversion_artifact(1, 2);
        assert_eq!(artifact.algorithm(), "conversion");
        assert_eq!(artifact.fault_budget(), 2);
        assert_eq!(artifact.fault_model(), FaultModel::Vertex);
        assert_eq!(artifact.stretch(), 3.0);
        assert_eq!(artifact.node_count(), g.node_count());
        assert_eq!(artifact.source_edge_count(), g.edge_count());
        assert_eq!(
            artifact.spanner_edge_count(),
            artifact.spanner_edges().len()
        );
        assert!(artifact.provenance().contains("Theorem"));
    }

    #[test]
    fn session_distance_matches_independent_dijkstra() {
        let (g, artifact) = conversion_artifact(2, 1);
        for fault in 0..5usize {
            let session = artifact.under_faults(&[NodeId::new(fault)]).unwrap();
            // Independent oracle: materialize H \ F and run plain Dijkstra.
            let h = g
                .subgraph(artifact.spanner_edges())
                .unwrap()
                .remove_vertices(&[NodeId::new(fault)]);
            for u in [0usize, 3, 9] {
                let expected = shortest_path::dijkstra(&h, NodeId::new(u)).unwrap();
                for (v, &oracle) in expected.iter().enumerate() {
                    let got = session.distance(NodeId::new(u), NodeId::new(v)).unwrap();
                    let want = if fault == u || fault == v {
                        f64::INFINITY
                    } else {
                        oracle
                    };
                    assert_eq!(got, want, "fault {fault}, pair ({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn session_rejects_oversized_fault_sets_with_typed_error() {
        let (_, artifact) = conversion_artifact(3, 1);
        let err = artifact
            .under_faults(&[NodeId::new(0), NodeId::new(1)])
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::TooManyFaults {
                given: 2,
                budget: 1
            }
        );
        // Duplicates are collapsed before the budget check.
        assert!(artifact
            .under_faults(&[NodeId::new(4), NodeId::new(4)])
            .is_ok());
        let err = artifact.under_faults(&[NodeId::new(999)]).unwrap_err();
        assert!(matches!(err, CoreError::UnknownNode { node: 999, .. }));
    }

    #[test]
    fn session_rejects_wrong_fault_kind() {
        let (_, artifact) = conversion_artifact(4, 1);
        let err = artifact
            .under_edge_faults(&[(NodeId::new(0), NodeId::new(1))])
            .unwrap_err();
        assert!(matches!(err, CoreError::FaultModelMismatch { .. }));
    }

    #[test]
    fn paths_witness_distances() {
        let (g, artifact) = conversion_artifact(5, 1);
        let session = artifact.under_faults(&[NodeId::new(2)]).unwrap();
        for u in 0..6usize {
            for v in 0..6usize {
                let d = session.distance(NodeId::new(u), NodeId::new(v)).unwrap();
                let p = session.path(NodeId::new(u), NodeId::new(v)).unwrap();
                match p {
                    None => assert!(d.is_infinite()),
                    Some(path) => {
                        assert_eq!(path.first(), Some(&NodeId::new(u)));
                        assert_eq!(path.last(), Some(&NodeId::new(v)));
                        let mut total = 0.0;
                        for w in path.windows(2) {
                            let e = g.find_edge(w[0], w[1]).expect("path edges exist");
                            assert!(
                                artifact.spanner_edges().contains(e),
                                "path used a non-spanner edge"
                            );
                            assert!(
                                !w.iter().any(|x| x.index() == 2),
                                "path passed through the failed vertex"
                            );
                            total += g.edge(e).weight;
                        }
                        assert!((total - d).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn certificates_hold_within_budget_and_match_the_oracle() {
        let (g, artifact) = conversion_artifact(6, 1);
        for fault in 0..g.node_count() {
            let session = artifact.under_faults(&[NodeId::new(fault)]).unwrap();
            assert!(session.is_within_guarantee());
            let oracle = verify::max_stretch_under_faults(
                &g,
                artifact.spanner_edges(),
                &ftspan_graph::faults::FaultSet::from_indices([fault]),
            );
            assert!((session.max_stretch() - oracle).abs() < 1e-9);
            for (u, v) in [(0usize, 5), (1, 9), (3, 17)] {
                let cert = session
                    .stretch_certificate(NodeId::new(u), NodeId::new(v))
                    .unwrap();
                assert!(cert.holds(), "certificate violated at fault {fault}");
                assert_eq!(cert.bound, 3.0);
            }
        }
    }

    #[test]
    fn edge_fault_sessions_mask_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generate::connected_gnp(16, 0.35, generate::WeightKind::Unit, &mut rng);
        let registry = Registry::from_algorithms(core_algorithms());
        let report = registry
            .get("edge-fault")
            .unwrap()
            .build((&g).into(), &SpannerRequest::new(1), &mut rng)
            .unwrap();
        let artifact = FtSpanner::from_report(&g, &report).unwrap();
        assert_eq!(artifact.fault_model(), FaultModel::Edge);
        // Vertex sessions are the wrong kind.
        assert!(matches!(
            artifact.under_faults(&[NodeId::new(0)]),
            Err(CoreError::FaultModelMismatch { .. })
        ));
        // Fail each spanner edge in turn: the guarantee must survive.
        for id in artifact.spanner_edges().iter().take(10) {
            let e = *g.edge(id);
            let session = artifact.under_edge_faults(&[(e.u, e.v)]).unwrap();
            assert!(session.is_within_guarantee(), "edge fault {id} broke it");
        }
        // A non-edge is a typed error.
        let missing = (0..g.node_count())
            .flat_map(|u| ((u + 1)..g.node_count()).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(NodeId::new(u), NodeId::new(v)))
            .expect("sparse graph has a non-edge");
        assert!(matches!(
            artifact.under_edge_faults(&[(NodeId::new(missing.0), NodeId::new(missing.1))]),
            Err(CoreError::UnknownEdge { .. })
        ));
    }

    #[test]
    fn directed_reports_are_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let dg = generate::directed_gnp(8, 0.5, generate::WeightKind::Unit, &mut rng);
        let registry = Registry::from_algorithms(core_algorithms());
        let report = registry
            .get("two-spanner-greedy")
            .unwrap()
            .build((&dg).into(), &SpannerRequest::new(1), &mut rng)
            .unwrap();
        let g = Graph::new(8);
        assert!(matches!(
            FtSpanner::from_report(&g, &report),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn adopted_artifacts_and_unchecked_sessions() {
        // Adopt a plain (non-fault-tolerant) spanner with a zero budget: the
        // checked session rejects any fault, the unchecked one still serves.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generate::connected_gnp(14, 0.4, generate::WeightKind::Unit, &mut rng);
        let artifact = FtSpanner::from_edge_set(
            &g,
            g.full_edge_set(),
            "adopted",
            "hand-rolled full graph",
            FaultModel::Vertex,
            0,
            1.0,
        )
        .unwrap();
        assert!(matches!(
            artifact.under_faults(&[NodeId::new(0)]),
            Err(CoreError::TooManyFaults {
                given: 1,
                budget: 0
            })
        ));
        let session = artifact.under_faults_unchecked(&[NodeId::new(0)]).unwrap();
        assert_eq!(session.fault_count(), 1);
        // The full graph is a 1-spanner under any fault set.
        assert!(session.is_within_guarantee());
        assert!(artifact.under_faults_unchecked(&[NodeId::new(99)]).is_err());
    }

    #[test]
    fn text_serialization_round_trips() {
        let (_, artifact) = conversion_artifact(9, 2);
        let mut buf = Vec::new();
        artifact.to_writer(&mut buf).unwrap();
        let restored = FtSpanner::from_reader(buf.as_slice()).unwrap();
        assert_eq!(artifact, restored);
        // And the restored artifact serves identical answers.
        let a = artifact.under_faults(&[NodeId::new(1)]).unwrap();
        let b = restored.under_faults(&[NodeId::new(1)]).unwrap();
        for u in 0..artifact.node_count() {
            let x = a.distances_from(NodeId::new(u)).unwrap();
            let y = b.distances_from(NodeId::new(u)).unwrap();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn malformed_serializations_are_typed_errors() {
        for text in [
            "",
            "ftspanner 99\n",
            "ftspanner 1\nalgorithm x\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee tachyon 1 3.0\ngraph 2 0\nspanner 0\nend\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3.0\ngraph 2 1\n0 1 1.0\nspanner 1\n7\nend\n",
            // Oversized and fractional counts must be typed errors, not
            // saturating casts that attempt absurd allocations.
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3.0\ngraph 99999999999999999999 0\nspanner 0\nend\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1 3.0\ngraph 2.7 0\nspanner 0\nend\n",
            "ftspanner 1\nalgorithm x\nprovenance y\nguarantee vertex 1.9 3.0\ngraph 2 0\nspanner 0\nend\n",
        ] {
            assert!(
                matches!(
                    FtSpanner::from_reader(text.as_bytes()),
                    Err(CoreError::InvalidParameter { .. })
                ),
                "accepted malformed input: {text:?}"
            );
        }
    }

    #[test]
    fn newlines_in_free_text_fields_do_not_break_the_round_trip() {
        let g = generate::path(4);
        let artifact = FtSpanner::from_edge_set(
            &g,
            g.full_edge_set(),
            "adopted",
            "line one\nline two",
            FaultModel::Vertex,
            1,
            3.0,
        )
        .unwrap();
        let mut buf = Vec::new();
        artifact.to_writer(&mut buf).unwrap();
        let restored = FtSpanner::from_reader(buf.as_slice()).unwrap();
        // Line breaks are flattened to spaces (the format is line-oriented);
        // everything else survives exactly.
        assert_eq!(restored.provenance(), "line one line two");
        assert_eq!(restored.spanner_edges(), artifact.spanner_edges());
        assert_eq!(restored.fault_budget(), artifact.fault_budget());
    }
}
