//! Parallel-construction substrate: the shared work pool plus the random
//! stream discipline that keeps randomized constructions deterministic.
//!
//! The pool itself lives in [`ftspan_graph::par`] (re-exported here); this
//! module adds the one idiom every randomized parallel construction in this
//! crate follows:
//!
//! 1. **Draw seeds sequentially.** Before fanning out, the construction draws
//!    one `u64` per task from the caller's generator, in task order
//!    ([`derive_seeds`]). The caller's generator is therefore advanced by an
//!    amount that depends only on the task count — never on scheduling.
//! 2. **Derive a private stream per task.** Each task turns its seed into its
//!    own [`ChaCha8Rng`] ([`stream`]) and draws all of its randomness from
//!    it. No generator is shared across threads.
//! 3. **Merge in task order.** [`map`] returns results in index order, so
//!    unions and statistics accumulate exactly as a sequential loop would.
//!
//! Together these make every construction a pure function of
//! `(input, parameters, generator state)`: the output is byte-identical at
//! any worker count, including `threads = 1`.

pub use ftspan_graph::par::{available_threads, map, map_reduce, resolve_threads};

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Draws one seed per task, sequentially, from the caller's generator.
pub fn derive_seeds(rng: &mut dyn RngCore, count: usize) -> Vec<u64> {
    (0..count).map(|_| rng.next_u64()).collect()
}

/// The private random stream of the task holding `seed`.
pub fn stream(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeds_are_a_pure_function_of_the_generator_state() {
        let mut a = stream(7);
        let mut b = stream(7);
        assert_eq!(derive_seeds(&mut a, 5), derive_seeds(&mut b, 5));
        // Drawing seeds advances the generator deterministically.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_from_distinct_seeds_differ() {
        let x: f64 = stream(1).gen();
        let y: f64 = stream(2).gen();
        assert_ne!(x, y);
    }
}
