//! Combinatorial lower bounds on the size and cost of fault-tolerant
//! spanners.
//!
//! The paper's open-question section asks for lower bounds on the size of
//! `r`-fault-tolerant spanners beyond those that already hold at `r = 0`.
//! The bounds here are the folklore degree bounds, which *do* grow with `r`
//! and are the natural yardstick the experiments report alongside measured
//! sizes:
//!
//! * **Vertex version.** Any `r`-fault-tolerant spanner (for any finite
//!   stretch) must keep at least `min(deg_G(v), r + 1)` edges incident to
//!   every vertex `v`: otherwise failing `v`'s (at most `r`) spanner
//!   neighbors leaves `v` isolated in the spanner while it still has a live
//!   neighbor in `G`. Summing and halving gives
//!   [`vertex_fault_size_lower_bound`].
//! * **Directed version.** In the minimum-cost 2-spanner setting of
//!   Section 3, every vertex must keep its `min(outdeg, r + 1)` cheapest
//!   outgoing arcs' worth of cost (and symmetrically for incoming arcs),
//!   giving [`directed_cost_lower_bound`].
//!
//! Both bounds also certify optimality of the trivial solution on extreme
//! instances (e.g. on `K_n` with `r ≥ n − 2` every edge is forced), which is
//! how the integrality-gap experiment anchors its "integral optimum" column.

use ftspan_graph::{DiGraph, Graph};

/// Lower bound on the number of edges of any `r`-fault-tolerant spanner of
/// `graph` with any finite stretch bound:
/// `⌈ Σ_v min(deg_G(v), r + 1) / 2 ⌉`.
///
/// # Example
///
/// ```
/// use ftspan_core::lower_bounds::vertex_fault_size_lower_bound;
/// use ftspan_graph::generate;
///
/// let g = generate::complete(10);
/// // Every vertex needs r + 1 = 3 incident edges.
/// assert_eq!(vertex_fault_size_lower_bound(&g, 2), 15);
/// // With r >= n - 2 every edge of K_n is forced.
/// assert_eq!(vertex_fault_size_lower_bound(&g, 8), 45);
/// ```
pub fn vertex_fault_size_lower_bound(graph: &Graph, r: usize) -> usize {
    let total: usize = graph.nodes().map(|v| graph.degree(v).min(r + 1)).sum();
    total.div_ceil(2)
}

/// Lower bound on the number of edges of any `r`-*edge*-fault-tolerant
/// spanner of `graph` with any finite stretch bound.
///
/// The argument is the same as the vertex version: a vertex with fewer than
/// `min(deg_G(v), r + 1)` incident spanner edges can be cut off from a still
/// live neighbor by failing only its spanner edges.
pub fn edge_fault_size_lower_bound(graph: &Graph, r: usize) -> usize {
    vertex_fault_size_lower_bound(graph, r)
}

/// Lower bound on the cost of any `r`-fault-tolerant 2-spanner of the
/// directed cost graph `graph` (the Section 3 problem).
///
/// For every vertex the spanner must keep at least `min(outdeg_G(v), r + 1)`
/// outgoing arcs, so its cost is at least the sum over vertices of the
/// cheapest that many outgoing arcs; symmetrically for incoming arcs. The
/// bound returned is the larger of the two sums (each is individually valid
/// because the arc sets counted are disjoint across vertices).
pub fn directed_cost_lower_bound(graph: &DiGraph, r: usize) -> f64 {
    let keep = r + 1;
    let mut out_total = 0.0;
    let mut in_total = 0.0;
    for v in graph.nodes() {
        let mut out_costs: Vec<f64> = graph
            .out_incident(v)
            .map(|(_, a)| graph.arc(a).cost)
            .collect();
        out_costs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        out_total += out_costs.iter().take(keep).sum::<f64>();

        let mut in_costs: Vec<f64> = graph
            .in_incident(v)
            .map(|(_, a)| graph.arc(a).cost)
            .collect();
        in_costs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        in_total += in_costs.iter().take(keep).sum::<f64>();
    }
    out_total.max(in_total)
}

/// Lower bound on the number of arcs of any `r`-fault-tolerant 2-spanner of
/// a directed graph, ignoring costs:
/// `max( Σ_v min(outdeg, r+1), Σ_v min(indeg, r+1) )`.
pub fn directed_size_lower_bound(graph: &DiGraph, r: usize) -> usize {
    let keep = r + 1;
    let out: usize = graph.nodes().map(|v| graph.out_degree(v).min(keep)).sum();
    let inn: usize = graph.nodes().map(|v| graph.in_degree(v).min(keep)).sum();
    out.max(inn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify, NodeId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn complete_graph_bound_matches_hand_computation() {
        let g = generate::complete(8);
        // r = 0: every vertex needs one incident edge -> at least 4 edges.
        assert_eq!(vertex_fault_size_lower_bound(&g, 0), 4);
        // r = 3: 8 * 4 / 2 = 16.
        assert_eq!(vertex_fault_size_lower_bound(&g, 3), 16);
        // Saturation at the full degree.
        assert_eq!(vertex_fault_size_lower_bound(&g, 100), 28);
        assert_eq!(edge_fault_size_lower_bound(&g, 3), 16);
    }

    #[test]
    fn bound_saturates_at_the_input_size_shape() {
        let g = generate::path(10);
        // Interior vertices have degree 2, ends degree 1; for any r >= 1 the
        // bound is (2*8 + 2) / 2 = 9 = all edges.
        assert_eq!(vertex_fault_size_lower_bound(&g, 1), 9);
        assert_eq!(vertex_fault_size_lower_bound(&g, 0), 5);
    }

    #[test]
    fn bound_is_monotone_in_r() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generate::gnp(30, 0.3, generate::WeightKind::Unit, &mut rng);
        let mut prev = 0;
        for r in 0..6 {
            let b = vertex_fault_size_lower_bound(&g, r);
            assert!(b >= prev);
            assert!(b <= g.edge_count());
            prev = b;
        }
    }

    #[test]
    fn every_verified_ft_spanner_respects_the_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let g = generate::gnp(16, 0.6, generate::WeightKind::Unit, &mut rng);
        for r in 0..3usize {
            let result = crate::conversion::corollary_2_2(&g, 3.0, r, &mut rng);
            assert!(verify::is_fault_tolerant_k_spanner(
                &g,
                &result.edges,
                3.0,
                r
            ));
            assert!(
                result.size() >= vertex_fault_size_lower_bound(&g, r),
                "spanner smaller than the degree lower bound at r = {r}"
            );
        }
    }

    #[test]
    fn directed_bounds_on_the_complete_digraph() {
        let g = generate::complete_digraph(6);
        // Every vertex needs r + 1 = 3 outgoing and incoming arcs.
        assert_eq!(directed_size_lower_bound(&g, 2), 18);
        assert_eq!(directed_cost_lower_bound(&g, 2), 18.0);
        // Saturation.
        assert_eq!(directed_size_lower_bound(&g, 9), 30);
    }

    #[test]
    fn directed_cost_bound_prefers_cheap_arcs() {
        let mut g = DiGraph::new(3);
        g.add_arc(NodeId::new(0), NodeId::new(1), 5.0).unwrap();
        g.add_arc(NodeId::new(0), NodeId::new(2), 1.0).unwrap();
        g.add_arc(NodeId::new(1), NodeId::new(2), 2.0).unwrap();
        // r = 0: vertex 0 keeps its cheapest out-arc (1.0), vertex 1 keeps
        // 2.0; out-sum = 3.0. In-sums: vertex 1 keeps 5.0, vertex 2 keeps
        // 1.0 -> 6.0. The bound is the max.
        assert_eq!(directed_cost_lower_bound(&g, 0), 6.0);
        // The gap gadget's expensive arc is not forced at r = 0.
        let gadget = generate::gap_gadget(2, 100.0).unwrap();
        assert!(directed_cost_lower_bound(&gadget, 0) < 100.0);
    }

    #[test]
    fn bounds_handle_trivial_graphs() {
        assert_eq!(vertex_fault_size_lower_bound(&Graph::new(0), 3), 0);
        assert_eq!(vertex_fault_size_lower_bound(&Graph::new(5), 3), 0);
        assert_eq!(directed_size_lower_bound(&DiGraph::new(4), 1), 0);
        assert_eq!(directed_cost_lower_bound(&DiGraph::new(4), 1), 0.0);
    }
}
