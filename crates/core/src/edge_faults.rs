//! Edge-fault-tolerant spanners via the conversion theorem.
//!
//! The paper states Theorem 2.1 for *vertex* faults; edge faults are the
//! natural companion model (and the one the geometric fault-tolerant spanner
//! literature started with). The same oversampling idea applies verbatim: in
//! each iteration every **edge** joins the oversized fault set `J`
//! independently with probability `p = 1 − 1/r`, the black-box `k`-spanner
//! algorithm runs on `(V, E \ J)`, and the output is the union over all
//! iterations.
//!
//! The analysis is in fact slightly better than the vertex case. Fix an edge
//! fault set `F` (`|F| ≤ r`) and a surviving edge `e ∈ E'_F` whose shortest
//! path in `G \ F` is the edge itself. An iteration covers the pair when
//! `e ∉ J` and `F ⊆ J`, which happens with probability
//! `(1 − p) · p^r = (1/r)(1 − 1/r)^r ≥ 1/(4r)` for `r ≥ 2`, so
//! `α = Θ(r² log n)` iterations suffice for a union bound over the at most
//! `m^{r+1}` (edge, fault set) pairs — one factor of `r` less than the vertex
//! version. The expected number of surviving edges per iteration is `m / r`.
//!
//! This module is an extension beyond the paper's statements, provided
//! because a library user who asks for "fault tolerance" usually needs to
//! pick one of the two models; it reuses the vertex-fault machinery wherever
//! possible and is verified by the edge-fault oracles in
//! [`ftspan_graph::verify`].

use crate::par;
use ftspan_graph::{EdgeId, EdgeSet, Graph};
use ftspan_spanners::SpannerAlgorithm;
use rand::Rng;
use rand::RngCore;

/// Parameters of the edge-fault-tolerant conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeFaultParams {
    /// Number of edge faults `r` to tolerate.
    pub faults: usize,
    /// Explicit number of iterations `α`. When `None`, the default
    /// `⌈scale · 4 r (r + 2) ln n⌉` is used.
    pub iterations: Option<usize>,
    /// Multiplier on the default iteration count (see
    /// [`ConversionParams::scale`](crate::conversion::ConversionParams)).
    pub scale: f64,
}

impl EdgeFaultParams {
    /// Parameters tolerating `faults` edge failures with the default
    /// iteration count.
    pub fn new(faults: usize) -> Self {
        EdgeFaultParams {
            faults,
            iterations: None,
            scale: 1.0,
        }
    }

    /// Overrides the number of iterations `α`.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Scales the default iteration count by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "iteration scale must be positive");
        self.scale = scale;
        self
    }

    /// The probability with which each edge joins the oversized fault set
    /// (`1 − 1/r`, or `1/2` when `r ≤ 1`).
    pub fn sampling_probability(&self) -> f64 {
        if self.faults <= 1 {
            0.5
        } else {
            1.0 - 1.0 / self.faults as f64
        }
    }

    /// The number of iterations `α` used for an `n`-vertex graph.
    ///
    /// The per-iteration success probability for a fixed (edge, fault set)
    /// pair is at least `1/(4r)`, and the union bound is over at most
    /// `m^{r+1} ≤ n^{2(r+1)}` pairs, giving `α ≈ 4 r · 2(r + 2) ln n`; the
    /// constant is folded into the same `4 r (r + 2) ln n` shape as the
    /// vertex-fault default with one factor of `r` removed.
    pub fn iterations_for(&self, n: usize) -> usize {
        if let Some(it) = self.iterations {
            return it.max(1);
        }
        let r = self.faults.max(1) as f64;
        let ln_n = (n.max(2) as f64).ln();
        let alpha = self.scale * 4.0 * r * (r + 2.0) * ln_n;
        alpha.ceil().max(1.0) as usize
    }

    /// The size bound `O(r² log n · f(n))` of the edge-fault conversion,
    /// evaluated with the concrete iteration count (the black box runs on the
    /// full vertex set, so `f` is evaluated at `n`, not `2n/r`).
    pub fn size_bound(&self, n: usize, f: impl Fn(usize) -> f64) -> f64 {
        self.iterations_for(n) as f64 * f(n.max(2))
    }
}

/// The output of the edge-fault-tolerant conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeFaultResult {
    /// The edges of the `r`-edge-fault-tolerant `k`-spanner.
    pub edges: EdgeSet,
    /// Number of iterations that were run.
    pub iterations: usize,
    /// Number of edges surviving the oversampling in each iteration.
    pub surviving_edges: Vec<usize>,
}

impl EdgeFaultResult {
    /// Number of edges in the constructed spanner.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Mean number of edges surviving the oversampling per iteration
    /// (concentrates around `m / r`).
    pub fn mean_surviving_edges(&self) -> f64 {
        if self.surviving_edges.is_empty() {
            return 0.0;
        }
        self.surviving_edges.iter().sum::<usize>() as f64 / self.surviving_edges.len() as f64
    }
}

/// Builds an `r`-edge-fault-tolerant `k`-spanner of `graph` by the
/// edge-sampling conversion, using `algorithm` as the `k`-spanner black box.
///
/// The output is valid with high probability; certainty requires re-checking
/// with [`ftspan_graph::verify::verify_edge_fault_tolerance_exhaustive`] (or
/// the sampled variant on larger instances).
///
/// # Example
///
/// ```
/// use ftspan_core::edge_faults::{edge_fault_tolerant_spanner, EdgeFaultParams};
/// use ftspan_spanners::GreedySpanner;
/// use ftspan_graph::{generate, verify};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let g = generate::gnp(20, 0.5, generate::WeightKind::Unit, &mut rng);
/// let result = edge_fault_tolerant_spanner(
///     &g,
///     &GreedySpanner::new(3.0),
///     &EdgeFaultParams::new(1),
///     &mut rng,
/// );
/// assert!(verify::is_edge_fault_tolerant_k_spanner(&g, &result.edges, 3.0, 1));
/// ```
pub fn edge_fault_tolerant_spanner<A>(
    graph: &Graph,
    algorithm: &A,
    params: &EdgeFaultParams,
    rng: &mut dyn RngCore,
) -> EdgeFaultResult
where
    A: SpannerAlgorithm + ?Sized,
{
    edge_fault_tolerant_spanner_with_threads(graph, algorithm, params, rng, 1)
}

/// [`edge_fault_tolerant_spanner`] with the `α` independent iterations fanned
/// out across up to `threads` workers.
///
/// Each iteration derives a private random stream from a seed drawn
/// sequentially from `rng` and results merge in iteration order (the
/// [`crate::par`] discipline), so the output is byte-identical at any worker
/// count.
pub fn edge_fault_tolerant_spanner_with_threads<A>(
    graph: &Graph,
    algorithm: &A,
    params: &EdgeFaultParams,
    rng: &mut dyn RngCore,
    threads: usize,
) -> EdgeFaultResult
where
    A: SpannerAlgorithm + ?Sized,
{
    let n = graph.node_count();
    let m = graph.edge_count();
    let p = params.sampling_probability();
    let alpha = params.iterations_for(n);
    let seeds = par::derive_seeds(rng, alpha);

    let outcomes = par::map(threads, alpha, |i| {
        let mut task_rng = par::stream(seeds[i]);
        // Sample the oversized edge fault set J and build (V, E \ J).
        let alive: Vec<bool> = (0..m).map(|_| task_rng.gen::<f64>() >= p).collect();
        let (sub, edge_map) = edge_subgraph(graph, &alive);
        let spanner = algorithm.build(&sub, &mut task_rng);
        let edges: Vec<EdgeId> = spanner
            .iter()
            .map(|sub_edge| edge_map[sub_edge.index()])
            .collect();
        (edges, sub.edge_count())
    });

    let mut union = graph.empty_edge_set();
    let mut surviving_edges = Vec::with_capacity(alpha);
    for (edges, surviving) in outcomes {
        surviving_edges.push(surviving);
        for parent in edges {
            union.insert(parent);
        }
    }

    EdgeFaultResult {
        edges: union,
        iterations: alpha,
        surviving_edges,
    }
}

/// Builds the subgraph of `graph` keeping only the edges with
/// `alive[e] == true` (full vertex set), together with a map from the
/// subgraph's edge ids back to the parent graph's.
fn edge_subgraph(graph: &Graph, alive: &[bool]) -> (Graph, Vec<EdgeId>) {
    let mut sub = Graph::new(graph.node_count());
    let mut map = Vec::new();
    for (id, e) in graph.edges() {
        if alive[id.index()] {
            sub.add_edge(e.u, e.v, e.weight)
                .expect("edges of a valid graph remain valid in a subgraph");
            map.push(id);
        }
    }
    (sub, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use ftspan_spanners::{BaswanaSenSpanner, GreedySpanner};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn iteration_count_and_probability() {
        let p = EdgeFaultParams::new(3);
        assert!((p.sampling_probability() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(EdgeFaultParams::new(1).sampling_probability(), 0.5);
        let n = 100;
        let expected = (4.0 * 3.0 * 5.0 * (100f64).ln()).ceil() as usize;
        assert_eq!(p.iterations_for(n), expected);
        assert_eq!(p.with_iterations(9).iterations_for(n), 9);
        assert!(EdgeFaultParams::new(3).with_scale(0.25).iterations_for(n) < expected);
        // Edge-fault iterations are cheaper than vertex-fault iterations by a
        // factor of r.
        let vertex = crate::conversion::ConversionParams::new(3).iterations_for(n);
        assert!(p.iterations_for(n) < vertex);
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        EdgeFaultParams::new(1).with_scale(0.0);
    }

    #[test]
    fn output_is_edge_fault_tolerant_r1() {
        let mut r = rng(11);
        let g = generate::gnp(18, 0.5, generate::WeightKind::Unit, &mut r);
        let result = edge_fault_tolerant_spanner(
            &g,
            &GreedySpanner::new(3.0),
            &EdgeFaultParams::new(1),
            &mut r,
        );
        assert!(verify::is_edge_fault_tolerant_k_spanner(
            &g,
            &result.edges,
            3.0,
            1
        ));
        assert!(result.size() <= g.edge_count());
        assert_eq!(result.surviving_edges.len(), result.iterations);
    }

    #[test]
    fn output_is_edge_fault_tolerant_r2_weighted() {
        let mut r = rng(12);
        let g = generate::connected_gnp(
            14,
            0.4,
            generate::WeightKind::Uniform { min: 1.0, max: 2.0 },
            &mut r,
        );
        let result = edge_fault_tolerant_spanner(
            &g,
            &BaswanaSenSpanner::new(2),
            &EdgeFaultParams::new(2),
            &mut r,
        );
        assert!(verify::is_edge_fault_tolerant_k_spanner(
            &g,
            &result.edges,
            3.0,
            2
        ));
    }

    #[test]
    fn oversampling_keeps_roughly_m_over_r_edges() {
        let mut r = rng(13);
        let g = generate::gnp(40, 0.4, generate::WeightKind::Unit, &mut r);
        let m = g.edge_count() as f64;
        let params = EdgeFaultParams::new(4).with_iterations(150);
        let result = edge_fault_tolerant_spanner(&g, &GreedySpanner::new(3.0), &params, &mut r);
        let mean = result.mean_surviving_edges();
        assert!(
            mean > 0.15 * m && mean < 0.35 * m,
            "mean surviving edges {mean} not around m/4 = {}",
            m / 4.0
        );
    }

    #[test]
    fn size_bound_composes_f() {
        let params = EdgeFaultParams::new(2);
        let bound = params.size_bound(50, |n| 2.0 * n as f64);
        assert_eq!(bound, params.iterations_for(50) as f64 * 100.0);
    }

    #[test]
    fn empty_graph_yields_empty_spanner() {
        let mut r = rng(14);
        let g = Graph::new(0);
        let result = edge_fault_tolerant_spanner(
            &g,
            &GreedySpanner::new(3.0),
            &EdgeFaultParams::new(2),
            &mut r,
        );
        assert_eq!(result.size(), 0);
        assert_eq!(result.mean_surviving_edges(), 0.0);
    }
}
