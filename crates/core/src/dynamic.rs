//! Dynamic-graph subsystem: delta logs, incremental artifact repair, and the
//! rebuild scheduler.
//!
//! Every [`crate::FtSpanner`] is a snapshot of its source graph. This module
//! makes the snapshot *maintainable* under edge churn:
//!
//! * [`DeltaLog`] — a versioned, append-only, replayable log of edge
//!   [`EdgeDelta`]s (insert / delete / reweight) with monotone sequence
//!   numbers and a `.ftdelta` binary codec following the `.ftspan` section
//!   discipline (magic, version, length-prefixed records, typed decode
//!   errors, no allocation bombs).
//! * [`apply_deltas`] — the canonical post-delta graph: deletions compact,
//!   insertions append, so the relative order of surviving edges is
//!   preserved. That order contract is what makes incremental repair sound.
//! * [`DynamicArtifact`] — an artifact bundled with its build recipe, its
//!   delta log, and (for the conversion-family constructions) a
//!   [`ConversionTrace`]. [`DynamicArtifact::apply`] produces the next
//!   version either by **incremental repair** — re-running the black box
//!   only for the iterations whose oversampled fault set exposes a changed
//!   edge — or by a full rebuild, and the result is pinned bit-identical to
//!   a from-scratch build on the post-delta graph either way.
//! * [`RebuildPolicy`] — the scheduler deciding patch vs. rebuild from the
//!   delta volume relative to the artifact and from the touched-iteration
//!   budget.
//!
//! The locality argument is the same one the sharded overlay uses: the
//! conversion of Theorem 2.1 unions independent black-box runs, each a pure
//! function of `(seed, induced subgraph)`. An edge-only delta leaves every
//! iteration's oversampled fault set unchanged (the mask consumes exactly
//! `n` draws from the iteration seed), so an iteration can only be affected
//! when one of the changed edges has both endpoints alive in its mask — for
//! sampling probability `p`, an expected `(1 − p)²` fraction of iterations
//! per changed edge.

use crate::algorithms::{conversion_params, core_algorithms};
use crate::api::{FaultModel, GraphInput, Registry, SpannerRequest};
use crate::conversion::{ConversionTrace, FaultTolerantConverter, RepairAttempt};
use crate::serve::FtSpanner;
use crate::{CoreError, Result};
use ftspan_graph::{Graph, NodeId};
use ftspan_spanners::SpannerAlgorithm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

/// Magic bytes opening a `.ftdelta` stream.
const DELTA_MAGIC: [u8; 4] = *b"FTDL";
/// Current `.ftdelta` format version.
const DELTA_VERSION: u32 = 1;
/// Upper bound on a single record's declared length. Real records are 17 or
/// 25 bytes; anything larger is a lie and is rejected before allocation.
const MAX_RECORD_LEN: u32 = 64;
/// Capacity clamp when pre-allocating from an untrusted record count.
const DECODE_CAPACITY_CLAMP: usize = 1024;

/// A single edge mutation.
///
/// Endpoints refer to the (fixed) vertex set of the artifact's source graph;
/// the subsystem handles edge churn only — vertex insertions would change
/// the length of every oversampled-mask draw and therefore invalidate the
/// replay discipline (see [`ConversionTrace`]).
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeDelta {
    /// Add the edge `(u, v)` with the given weight. Fails on apply if the
    /// edge already exists.
    Insert {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Edge weight (finite, non-negative).
        weight: f64,
    },
    /// Remove the edge `(u, v)`. Fails on apply if the edge is missing.
    Delete {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Change the weight of the existing edge `(u, v)`. Fails on apply if
    /// the edge is missing.
    Reweight {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The new weight (finite, non-negative).
        weight: f64,
    },
}

impl EdgeDelta {
    /// The endpoint pair this delta touches.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeDelta::Insert { u, v, .. }
            | EdgeDelta::Delete { u, v }
            | EdgeDelta::Reweight { u, v, .. } => (u, v),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            EdgeDelta::Insert { .. } => "insert",
            EdgeDelta::Delete { .. } => "delete",
            EdgeDelta::Reweight { .. } => "reweight",
        }
    }
}

impl fmt::Display for EdgeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EdgeDelta::Insert { u, v, weight } => write!(f, "insert ({u}, {v}) w={weight}"),
            EdgeDelta::Delete { u, v } => write!(f, "delete ({u}, {v})"),
            EdgeDelta::Reweight { u, v, weight } => write!(f, "reweight ({u}, {v}) w={weight}"),
        }
    }
}

/// An [`EdgeDelta`] stamped with its position in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedDelta {
    /// Monotone sequence number (1-based; assigned by [`DeltaLog::append`]).
    pub seq: u64,
    /// The mutation.
    pub delta: EdgeDelta,
}

/// A versioned, append-only, replayable log of edge mutations.
///
/// Sequence numbers start at 1 and increase strictly; [`DeltaLog::append`]
/// assigns them. The log replays onto the graph it was recorded against via
/// [`DeltaLog::replay`], and serializes to the `.ftdelta` binary format —
/// magic `FTDL`, a `u32` version, a `u64` record count, then length-prefixed
/// records — with typed decode errors mirroring the `.ftspan` discipline:
/// decoding untrusted bytes returns [`CoreError::InvalidParameter`], never
/// panics, and never allocates proportionally to a lying length field.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaLog {
    records: Vec<SequencedDelta>,
    next_seq: u64,
}

impl DeltaLog {
    /// An empty log; the first appended delta receives sequence number 1.
    pub fn new() -> Self {
        DeltaLog {
            records: Vec::new(),
            next_seq: 1,
        }
    }

    /// Rebuilds a log from already-sequenced records.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if the sequence numbers are not
    /// strictly increasing or start at 0.
    pub fn from_records(records: Vec<SequencedDelta>) -> Result<Self> {
        let mut prev = 0u64;
        for record in &records {
            if record.seq <= prev {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "delta log sequence numbers must increase strictly: {} after {prev}",
                        record.seq
                    ),
                });
            }
            prev = record.seq;
        }
        Ok(DeltaLog {
            next_seq: prev + 1,
            records,
        })
    }

    /// Appends a delta, assigning and returning its sequence number.
    pub fn append(&mut self, delta: EdgeDelta) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push(SequencedDelta { seq, delta });
        seq
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in sequence order.
    pub fn records(&self) -> &[SequencedDelta] {
        &self.records
    }

    /// The records with sequence numbers strictly greater than `seq`.
    pub fn records_since(&self, seq: u64) -> &[SequencedDelta] {
        let start = self.records.partition_point(|r| r.seq <= seq);
        &self.records[start..]
    }

    /// The highest assigned sequence number, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.records.last().map(|r| r.seq)
    }

    /// The sequence number the next [`DeltaLog::append`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Replays the whole log onto `base`, producing the post-delta graph.
    ///
    /// # Errors
    ///
    /// Same conditions as [`apply_deltas`].
    pub fn replay(&self, base: &Graph) -> Result<Graph> {
        apply_deltas(base, &self.records)
    }

    /// Writes the log in the `.ftdelta` binary format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn to_binary_writer<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(&DELTA_MAGIC)?;
        writer.write_all(&DELTA_VERSION.to_le_bytes())?;
        writer.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for record in &self.records {
            let mut payload = Vec::with_capacity(25);
            payload.extend_from_slice(&record.seq.to_le_bytes());
            match record.delta {
                EdgeDelta::Insert { u, v, weight } => {
                    payload.push(0u8);
                    payload.extend_from_slice(&(u.index() as u32).to_le_bytes());
                    payload.extend_from_slice(&(v.index() as u32).to_le_bytes());
                    payload.extend_from_slice(&weight.to_le_bytes());
                }
                EdgeDelta::Delete { u, v } => {
                    payload.push(1u8);
                    payload.extend_from_slice(&(u.index() as u32).to_le_bytes());
                    payload.extend_from_slice(&(v.index() as u32).to_le_bytes());
                }
                EdgeDelta::Reweight { u, v, weight } => {
                    payload.push(2u8);
                    payload.extend_from_slice(&(u.index() as u32).to_le_bytes());
                    payload.extend_from_slice(&(v.index() as u32).to_le_bytes());
                    payload.extend_from_slice(&weight.to_le_bytes());
                }
            }
            writer.write_all(&(payload.len() as u32).to_le_bytes())?;
            writer.write_all(&payload)?;
        }
        Ok(())
    }

    /// Reads a log previously written by [`DeltaLog::to_binary_writer`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] on a bad magic, an unsupported
    /// version, a truncated stream, a lying record length, an unknown record
    /// tag, a non-monotone sequence number, or trailing bytes. Never panics
    /// on malformed input.
    pub fn from_binary_reader<R: Read>(mut reader: R) -> Result<Self> {
        let mut header = [0u8; 16];
        read_delta_exact(&mut reader, &mut header, "header")?;
        if header[..4] != DELTA_MAGIC {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "bad magic in ftdelta data: expected `FTDL`, got {:?}",
                    &header[..4]
                ),
            });
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != DELTA_VERSION {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "unsupported ftdelta version {version} (this build reads version \
                     {DELTA_VERSION})"
                ),
            });
        }
        let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
        // The count has no backing bytes yet — records stream in one at a
        // time, so a lying count can cost at most this clamped capacity.
        let mut records = Vec::with_capacity(count.min(DECODE_CAPACITY_CLAMP));
        let mut prev_seq = 0u64;
        for i in 0..count {
            let mut len_bytes = [0u8; 4];
            read_delta_exact(&mut reader, &mut len_bytes, "record length")?;
            let len = u32::from_le_bytes(len_bytes);
            if len > MAX_RECORD_LEN {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "ftdelta record {i} declares {len} bytes (limit {MAX_RECORD_LEN}): \
                         refusing the allocation"
                    ),
                });
            }
            let mut payload = vec![0u8; len as usize];
            read_delta_exact(&mut reader, &mut payload, "record payload")?;
            let record = decode_delta_record(&payload, i)?;
            if record.seq <= prev_seq {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "ftdelta record {i} breaks sequence monotonicity: {} after {prev_seq}",
                        record.seq
                    ),
                });
            }
            prev_seq = record.seq;
            records.push(record);
        }
        let mut trailing = [0u8; 1];
        match reader.read(&mut trailing) {
            Ok(0) => {}
            Ok(_) => {
                return Err(CoreError::InvalidParameter {
                    message: "trailing bytes after the last ftdelta record".to_string(),
                })
            }
            Err(e) => {
                return Err(CoreError::InvalidParameter {
                    message: format!("read error in ftdelta data: {e}"),
                })
            }
        }
        DeltaLog::from_records(records)
    }
}

fn read_delta_exact<R: Read>(reader: &mut R, buf: &mut [u8], what: &str) -> Result<()> {
    reader
        .read_exact(buf)
        .map_err(|e| CoreError::InvalidParameter {
            message: format!("truncated ftdelta data while reading {what}: {e}"),
        })
}

fn decode_delta_record(payload: &[u8], index: usize) -> Result<SequencedDelta> {
    let malformed = |why: &str| CoreError::InvalidParameter {
        message: format!("malformed ftdelta record {index}: {why}"),
    };
    if payload.len() < 17 {
        return Err(malformed(&format!("{} bytes is too short", payload.len())));
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let tag = payload[8];
    let u = NodeId::new(u32::from_le_bytes(payload[9..13].try_into().expect("4 bytes")) as usize);
    let v = NodeId::new(u32::from_le_bytes(payload[13..17].try_into().expect("4 bytes")) as usize);
    let weight_of = |payload: &[u8]| -> Result<f64> {
        if payload.len() != 25 {
            return Err(malformed(&format!(
                "expected 25 bytes for a weighted record, got {}",
                payload.len()
            )));
        }
        let w = f64::from_le_bytes(payload[17..25].try_into().expect("8 bytes"));
        if !w.is_finite() || w < 0.0 {
            return Err(malformed(&format!("invalid weight {w}")));
        }
        Ok(w)
    };
    let delta = match tag {
        0 => EdgeDelta::Insert {
            u,
            v,
            weight: weight_of(payload)?,
        },
        1 => {
            if payload.len() != 17 {
                return Err(malformed(&format!(
                    "expected 17 bytes for a delete record, got {}",
                    payload.len()
                )));
            }
            EdgeDelta::Delete { u, v }
        }
        2 => EdgeDelta::Reweight {
            u,
            v,
            weight: weight_of(payload)?,
        },
        other => return Err(malformed(&format!("unknown record tag {other}"))),
    };
    Ok(SequencedDelta { seq, delta })
}

/// Applies sequenced deltas to `base`, producing the canonical post-delta
/// graph.
///
/// The canonical order contract — relied on by the incremental repair in
/// [`FaultTolerantConverter::repair_traced`] — is: surviving edges keep
/// their relative order (deletions compact the edge list), and inserted
/// edges are appended in delta order. Edge identifiers are reassigned
/// accordingly.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] if the sequence numbers are not strictly
/// increasing, an endpoint is out of range or a self-loop, a weight is not
/// finite and non-negative, an insert targets an existing edge, or a delete
/// or reweight targets a missing edge. `base` is never modified.
pub fn apply_deltas(base: &Graph, deltas: &[SequencedDelta]) -> Result<Graph> {
    let n = base.node_count();
    let mut slots: Vec<Option<(NodeId, NodeId, f64)>> = base
        .edges()
        .map(|(_, e)| Some((e.u, e.v, e.weight)))
        .collect();
    let mut index: HashMap<(usize, usize), usize> = slots
        .iter()
        .enumerate()
        .map(|(i, slot)| {
            let (u, v, _) = slot.expect("freshly collected");
            ((u.index(), v.index()), i)
        })
        .collect();

    let mut prev_seq = 0u64;
    for record in deltas {
        if record.seq <= prev_seq {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "delta sequence numbers must increase strictly: {} after {prev_seq}",
                    record.seq
                ),
            });
        }
        prev_seq = record.seq;
        let (u, v) = record.delta.endpoints();
        let reject = |why: String| CoreError::InvalidParameter {
            message: format!(
                "delta #{} ({} ({u}, {v})): {why}",
                record.seq,
                record.delta.kind()
            ),
        };
        if u.index() >= n || v.index() >= n {
            return Err(reject(format!("endpoint out of range for {n} vertices")));
        }
        if u == v {
            return Err(reject("self-loops are not allowed".to_string()));
        }
        let key = (u.index().min(v.index()), u.index().max(v.index()));
        let (a, b) = (NodeId::new(key.0), NodeId::new(key.1));
        match record.delta {
            EdgeDelta::Insert { weight, .. } => {
                if !weight.is_finite() || weight < 0.0 {
                    return Err(reject(format!("invalid weight {weight}")));
                }
                if index.contains_key(&key) {
                    return Err(reject("edge already exists".to_string()));
                }
                index.insert(key, slots.len());
                slots.push(Some((a, b, weight)));
            }
            EdgeDelta::Delete { .. } => match index.remove(&key) {
                Some(slot) => slots[slot] = None,
                None => return Err(reject("edge does not exist".to_string())),
            },
            EdgeDelta::Reweight { weight, .. } => {
                if !weight.is_finite() || weight < 0.0 {
                    return Err(reject(format!("invalid weight {weight}")));
                }
                match index.get(&key) {
                    Some(&slot) => {
                        slots[slot] = Some((a, b, weight));
                    }
                    None => return Err(reject("edge does not exist".to_string())),
                }
            }
        }
    }

    let mut graph = Graph::new(n);
    for (u, v, w) in slots.into_iter().flatten() {
        graph
            .add_edge(u, v, w)
            .map_err(|e| CoreError::InvalidParameter {
                message: format!("post-delta graph rejected edge ({u}, {v}): {e}"),
            })?;
    }
    Ok(graph)
}

/// The rebuild scheduler: decides whether a delta batch is patched
/// incrementally or triggers a full rebuild.
///
/// Both limits are *performance* knobs — patch and rebuild produce
/// bit-identical artifacts, so the policy never affects answers, only how
/// much work the next version costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Patch only when the batch has at most `max_delta_fraction ×
    /// source-edge-count` deltas (minimum 1); larger batches invalidate so
    /// many iterations that a rebuild is cheaper.
    pub max_delta_fraction: f64,
    /// During a patch, fall back to a full rebuild when more than
    /// `max_touched_fraction × α` iterations would have to re-run the black
    /// box.
    pub max_touched_fraction: f64,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy {
            max_delta_fraction: 0.05,
            max_touched_fraction: 0.25,
        }
    }
}

impl RebuildPolicy {
    /// A policy that always rebuilds from scratch (useful as a baseline and
    /// for differential testing).
    pub fn always_rebuild() -> Self {
        RebuildPolicy {
            max_delta_fraction: -1.0,
            max_touched_fraction: -1.0,
        }
    }

    /// A policy that patches whenever a trace exists, with no touched-set
    /// budget.
    pub fn always_patch() -> Self {
        RebuildPolicy {
            max_delta_fraction: f64::INFINITY,
            max_touched_fraction: f64::INFINITY,
        }
    }

    /// `true` when a batch of `deltas` mutations against a graph of
    /// `source_edges` edges is small enough to patch.
    pub fn patch_allowed(&self, deltas: usize, source_edges: usize) -> bool {
        if self.max_delta_fraction < 0.0 {
            return false;
        }
        if self.max_delta_fraction.is_infinite() {
            return true;
        }
        let budget = (self.max_delta_fraction * source_edges.max(1) as f64).floor() as usize;
        deltas <= budget.max(1)
    }

    /// The maximum number of touched iterations a patch may re-run before
    /// falling back to a rebuild.
    pub fn touched_budget(&self, iterations: usize) -> usize {
        if self.max_touched_fraction < 0.0 {
            return 0;
        }
        if self.max_touched_fraction.is_infinite() {
            return usize::MAX;
        }
        (self.max_touched_fraction * iterations as f64).floor() as usize
    }
}

/// Why an apply fell back to a full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildReason {
    /// The recipe's algorithm is not incrementally repairable (no trace).
    NoTrace,
    /// The batch exceeded [`RebuildPolicy::max_delta_fraction`].
    DeltaVolume,
    /// The touched-iteration count exceeded
    /// [`RebuildPolicy::max_touched_fraction`].
    TouchedSet {
        /// Iterations that would have re-run the black box.
        touched: usize,
    },
}

impl fmt::Display for RebuildReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuildReason::NoTrace => write!(f, "algorithm is not incrementally repairable"),
            RebuildReason::DeltaVolume => write!(f, "delta batch too large relative to artifact"),
            RebuildReason::TouchedSet { touched } => {
                write!(f, "{touched} touched iterations exceeded the patch budget")
            }
        }
    }
}

/// How [`DynamicArtifact::apply`] produced the new version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyAction {
    /// Incremental repair: only the touched iterations re-ran the black box.
    Patched {
        /// Iterations whose black box re-ran.
        touched_iterations: usize,
        /// Total iterations `α` of the construction.
        total_iterations: usize,
    },
    /// Full rebuild on the post-delta graph.
    Rebuilt {
        /// What ruled the patch out.
        reason: RebuildReason,
    },
}

impl ApplyAction {
    /// `true` for the incremental-repair outcome.
    pub fn is_patch(&self) -> bool {
        matches!(self, ApplyAction::Patched { .. })
    }
}

/// The outcome of one [`DynamicArtifact::apply`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyReport {
    /// Version number of the *new* artifact.
    pub version: u64,
    /// Number of deltas applied in this batch.
    pub applied: usize,
    /// Sequence number of the batch's last delta.
    pub last_seq: u64,
    /// Patch or rebuild, and why.
    pub action: ApplyAction,
}

/// Everything needed to rebuild an artifact from scratch, deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildRecipe {
    /// Registry name of the construction (`ftspan_core` algorithms only).
    pub algorithm: String,
    /// The construction's knobs.
    pub request: SpannerRequest,
    /// Root seed; the build draws from `ChaCha8Rng::seed_from_u64(seed)`
    /// exactly as `FtSpannerBuilder` does, so a recipe reproduces the
    /// builder's artifact bit-for-bit.
    pub seed: u64,
}

/// Opening marker of the machine-readable recipe tag (see
/// [`BuildRecipe::provenance_tag`]).
const RECIPE_TAG_OPEN: &str = "[recipe v1 ";

impl BuildRecipe {
    /// A recipe for `algorithm` with the given knobs and root seed.
    pub fn new(algorithm: impl Into<String>, request: SpannerRequest, seed: u64) -> Self {
        BuildRecipe {
            algorithm: algorithm.into(),
            request,
            seed,
        }
    }

    /// The machine-readable tag recording every result-affecting knob of
    /// this recipe, as appended to artifact provenance by the recipe build
    /// paths and by `FtSpannerBuilder`'s artifact constructors.
    ///
    /// The tag is what lets `ftspan_serve --dynamic` re-derive the *exact*
    /// recipe a stored artifact was built with (seed included) instead of
    /// guessing defaults. Floating-point knobs are encoded as IEEE-754 bit
    /// patterns in hex, so parsing reproduces them exactly. The `threads`
    /// knob is deliberately excluded: results are byte-identical at any
    /// worker count, and omitting it keeps artifacts built at different
    /// worker counts byte-identical too.
    pub fn provenance_tag(&self) -> String {
        fn opt_usize(v: Option<usize>) -> String {
            v.map_or_else(|| "-".to_string(), |x| x.to_string())
        }
        fn opt_bits(v: Option<f64>) -> String {
            v.map_or_else(|| "-".to_string(), |x| format!("{:016x}", x.to_bits()))
        }
        let r = &self.request;
        format!(
            "{RECIPE_TAG_OPEN}seed={} faults={} stretch={:016x} model={} bb={} iters={} \
             scale={:016x} alpha={} degree={} cuts={} reps={} batch={} samples={} repair={}]",
            self.seed,
            r.faults,
            r.stretch.to_bits(),
            match r.fault_model {
                FaultModel::Vertex => "vertex",
                FaultModel::Edge => "edge",
            },
            r.black_box.name(),
            opt_usize(r.iterations),
            r.scale.to_bits(),
            opt_bits(r.alpha_constant),
            opt_usize(r.degree_bound),
            r.max_cut_rounds,
            opt_usize(r.repetitions),
            opt_usize(r.batch),
            opt_usize(r.samples),
            u8::from(r.repair),
        )
    }

    /// `base` with this recipe's tag appended — the provenance string the
    /// recipe build paths store on their artifacts.
    pub fn tagged_provenance(&self, base: &str) -> String {
        format!("{base} {}", self.provenance_tag())
    }

    /// Recovers the recipe of an artifact from its `algorithm` and tagged
    /// `provenance`, inverting [`BuildRecipe::provenance_tag`].
    ///
    /// Returns `None` when the provenance carries no tag (artifacts written
    /// before tagging existed, or built through the untagged report paths),
    /// or when the tag is malformed — callers are expected to fall back to
    /// serving the stored artifact as-is rather than rebuilding under
    /// guessed parameters.
    pub fn from_tagged_provenance(algorithm: &str, provenance: &str) -> Option<BuildRecipe> {
        let start = provenance.rfind(RECIPE_TAG_OPEN)?;
        let tag = &provenance[start + RECIPE_TAG_OPEN.len()..];
        let tag = tag.strip_suffix(']')?;

        fn parse_usize(v: &str) -> Option<Option<usize>> {
            if v == "-" {
                Some(None)
            } else {
                v.parse().ok().map(Some)
            }
        }
        fn parse_bits(v: &str) -> Option<f64> {
            u64::from_str_radix(v, 16).ok().map(f64::from_bits)
        }

        let mut request = SpannerRequest::default();
        let mut seed = None;
        for field in tag.split(' ') {
            let (key, value) = field.split_once('=')?;
            match key {
                "seed" => seed = Some(value.parse().ok()?),
                "faults" => request.faults = value.parse().ok()?,
                "stretch" => request.stretch = parse_bits(value)?,
                "model" => {
                    request.fault_model = match value {
                        "vertex" => FaultModel::Vertex,
                        "edge" => FaultModel::Edge,
                        _ => return None,
                    }
                }
                "bb" => request.black_box = ftspan_spanners::BlackBoxKind::parse(value)?,
                "iters" => request.iterations = parse_usize(value)?,
                "scale" => request.scale = parse_bits(value)?,
                "alpha" => {
                    request.alpha_constant = if value == "-" {
                        None
                    } else {
                        Some(parse_bits(value)?)
                    }
                }
                "degree" => request.degree_bound = parse_usize(value)?,
                "cuts" => request.max_cut_rounds = value.parse().ok()?,
                "reps" => request.repetitions = parse_usize(value)?,
                "batch" => request.batch = parse_usize(value)?,
                "samples" => request.samples = parse_usize(value)?,
                "repair" => {
                    request.repair = match value {
                        "0" => false,
                        "1" => true,
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        request.threads = None;
        Some(BuildRecipe::new(algorithm, request, seed?))
    }
}

/// A plan for the traced (repairable) build path of a recipe.
struct RepairablePlan {
    converter: FaultTolerantConverter,
    black_box: Box<dyn SpannerAlgorithm>,
    provenance: String,
    stretch: f64,
}

fn repairable_plan(recipe: &BuildRecipe) -> Option<RepairablePlan> {
    let request = &recipe.request;
    if request.fault_model != FaultModel::Vertex {
        // The edge-fault extension samples *edges* into the oversized fault
        // set, so an edge delta changes every iteration's mask — there is no
        // locality to exploit.
        return None;
    }
    match recipe.algorithm.as_str() {
        "conversion" => {
            let black_box = request.black_box.instantiate(request.stretch);
            let stretch = black_box.stretch();
            let provenance = format!(
                "Theorem 2.1 conversion over {} (k = {}, r = {})",
                request.black_box, stretch, request.faults
            );
            Some(RepairablePlan {
                converter: FaultTolerantConverter::new(conversion_params(request)),
                black_box,
                provenance,
                stretch,
            })
        }
        "corollary-2.2" => {
            let provenance = format!(
                "Corollary 2.2 (greedy, k = {}, r = {})",
                request.stretch, request.faults
            );
            Some(RepairablePlan {
                converter: FaultTolerantConverter::new(conversion_params(request)),
                black_box: Box::new(ftspan_spanners::GreedySpanner::new(request.stretch)),
                provenance,
                stretch: request.stretch,
            })
        }
        _ => None,
    }
}

/// An [`FtSpanner`] bundled with its build recipe, delta log, and — when the
/// construction is incrementally repairable — its [`ConversionTrace`].
///
/// [`DynamicArtifact::apply`] is *functional*: it returns the next version
/// and leaves `self` untouched, which is what lets `Engine` serve version
/// `v_k` (behind its own `Arc`) while `v_{k+1}` builds, then swap atomically.
#[derive(Debug, Clone)]
pub struct DynamicArtifact {
    artifact: Arc<FtSpanner>,
    version: u64,
    recipe: BuildRecipe,
    trace: Option<ConversionTrace>,
    log: DeltaLog,
}

impl DynamicArtifact {
    /// Builds version 1 from a recipe.
    ///
    /// For the repairable constructions (`conversion` with vertex faults,
    /// `corollary-2.2`) this runs the traced build and keeps the trace; for
    /// every other registered algorithm it runs the normal registry build
    /// (applying deltas then always rebuilds from scratch). Either way the
    /// artifact is bit-identical to what `FtSpannerBuilder` with the same
    /// algorithm, knobs, and seed would produce.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for an unknown algorithm; otherwise
    /// whatever the construction itself reports.
    pub fn build(graph: &Graph, recipe: BuildRecipe) -> Result<Self> {
        let (artifact, trace) = build_for_recipe(graph, &recipe)?;
        Ok(DynamicArtifact {
            artifact: Arc::new(artifact),
            version: 1,
            recipe,
            trace,
            log: DeltaLog::new(),
        })
    }

    /// The served artifact.
    pub fn artifact(&self) -> &FtSpanner {
        &self.artifact
    }

    /// The served artifact, shared.
    pub fn artifact_arc(&self) -> Arc<FtSpanner> {
        Arc::clone(&self.artifact)
    }

    /// Version number, starting at 1 and incremented by every apply.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The build recipe.
    pub fn recipe(&self) -> &BuildRecipe {
        &self.recipe
    }

    /// The delta history applied so far.
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// The highest applied sequence number (0 before any apply).
    pub fn applied_seq(&self) -> u64 {
        self.log.last_seq().unwrap_or(0)
    }

    /// `true` when the construction supports incremental repair.
    pub fn is_repairable(&self) -> bool {
        self.trace.is_some()
    }

    /// Applies a delta batch and returns the next version.
    ///
    /// The batch is appended to the log (sequence numbers assigned here),
    /// the post-delta graph is materialized via [`apply_deltas`], and the
    /// new artifact is produced by incremental repair when `policy` allows —
    /// otherwise by a full rebuild with the same recipe. **Both paths yield
    /// the same bytes**: the repaired artifact equals a from-scratch build
    /// on the post-delta graph, bit for bit.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for an empty batch or an invalid
    /// delta (see [`apply_deltas`]); construction errors pass through. On
    /// error `self` is unchanged and no version is produced.
    pub fn apply(
        &self,
        deltas: &[EdgeDelta],
        policy: &RebuildPolicy,
    ) -> Result<(DynamicArtifact, ApplyReport)> {
        if deltas.is_empty() {
            return Err(CoreError::InvalidParameter {
                message: "empty delta batch has nothing to apply".to_string(),
            });
        }
        let mut log = self.log.clone();
        let already = self.applied_seq();
        for delta in deltas {
            log.append(delta.clone());
        }
        let batch = log.records_since(already);
        let new_graph = apply_deltas(self.artifact.source_graph(), batch)?;
        let last_seq = log.last_seq().expect("non-empty batch was appended");

        let mut fallback = RebuildReason::NoTrace;
        let mut patched: Option<(FtSpanner, ConversionTrace, usize, usize)> = None;
        if let Some(trace) = &self.trace {
            if policy.patch_allowed(deltas.len(), self.artifact.source_graph().edge_count()) {
                let plan =
                    repairable_plan(&self.recipe).ok_or_else(|| CoreError::InvalidParameter {
                        message: format!(
                            "artifact carries a trace but recipe `{}` is not repairable",
                            self.recipe.algorithm
                        ),
                    })?;
                let changed: Vec<(NodeId, NodeId)> =
                    deltas.iter().map(EdgeDelta::endpoints).collect();
                let attempt = plan.converter.repair_traced(
                    &new_graph,
                    plan.black_box.as_ref(),
                    trace,
                    &changed,
                    policy.touched_budget(trace.seeds.len()),
                    self.recipe.request.effective_threads(),
                )?;
                match attempt {
                    RepairAttempt::Repaired(repaired) => {
                        let artifact = FtSpanner::from_edge_set(
                            &new_graph,
                            repaired.result.edges,
                            &self.recipe.algorithm,
                            &self.recipe.tagged_provenance(&plan.provenance),
                            FaultModel::Vertex,
                            self.recipe.request.faults,
                            plan.stretch,
                        )?;
                        let total = repaired.trace.seeds.len();
                        patched =
                            Some((artifact, repaired.trace, repaired.touched_iterations, total));
                    }
                    RepairAttempt::TooManyTouched { touched } => {
                        fallback = RebuildReason::TouchedSet { touched };
                    }
                }
            } else {
                fallback = RebuildReason::DeltaVolume;
            }
        }

        let (artifact, trace, action) = match patched {
            Some((artifact, trace, touched, total)) => (
                artifact,
                Some(trace),
                ApplyAction::Patched {
                    touched_iterations: touched,
                    total_iterations: total,
                },
            ),
            None => {
                let (artifact, trace) = build_for_recipe(&new_graph, &self.recipe)?;
                (artifact, trace, ApplyAction::Rebuilt { reason: fallback })
            }
        };

        let version = self.version + 1;
        let report = ApplyReport {
            version,
            applied: deltas.len(),
            last_seq,
            action,
        };
        Ok((
            DynamicArtifact {
                artifact: Arc::new(artifact),
                version,
                recipe: self.recipe.clone(),
                trace,
                log,
            },
            report,
        ))
    }
}

/// Runs a recipe from scratch: the traced path for repairable algorithms,
/// the registry path otherwise.
fn build_for_recipe(
    graph: &Graph,
    recipe: &BuildRecipe,
) -> Result<(FtSpanner, Option<ConversionTrace>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(recipe.seed);
    if let Some(plan) = repairable_plan(recipe) {
        let (result, trace) = plan.converter.build_traced(
            graph,
            plan.black_box.as_ref(),
            &mut rng,
            recipe.request.effective_threads(),
        );
        let artifact = FtSpanner::from_edge_set(
            graph,
            result.edges,
            &recipe.algorithm,
            &recipe.tagged_provenance(&plan.provenance),
            FaultModel::Vertex,
            recipe.request.faults,
            plan.stretch,
        )?;
        return Ok((artifact, Some(trace)));
    }
    let registry = Registry::from_algorithms(core_algorithms());
    let algorithm = registry
        .get(&recipe.algorithm)
        .ok_or_else(|| CoreError::InvalidParameter {
            message: format!(
                "unknown algorithm `{}`; registered: {}",
                recipe.algorithm,
                registry.names().join(", ")
            ),
        })?;
    let mut report = algorithm.build(GraphInput::from(graph), &recipe.request, &mut rng)?;
    report.provenance = recipe.tagged_provenance(&report.provenance);
    let artifact = FtSpanner::from_report(graph, &report)?;
    Ok((artifact, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;
    use rand::Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn node(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn small_request(faults: usize, iterations: usize) -> SpannerRequest {
        SpannerRequest {
            faults,
            iterations: Some(iterations),
            threads: Some(1),
            ..SpannerRequest::default()
        }
    }

    #[test]
    fn delta_log_assigns_monotone_sequence_numbers() {
        let mut log = DeltaLog::new();
        assert_eq!(log.next_seq(), 1);
        assert_eq!(
            log.append(EdgeDelta::Delete {
                u: node(0),
                v: node(1)
            }),
            1
        );
        assert_eq!(
            log.append(EdgeDelta::Insert {
                u: node(1),
                v: node(2),
                weight: 2.0
            }),
            2
        );
        assert_eq!(log.last_seq(), Some(2));
        assert_eq!(log.records_since(0).len(), 2);
        assert_eq!(log.records_since(1).len(), 1);
        assert_eq!(log.records_since(2).len(), 0);
        assert!(DeltaLog::from_records(vec![
            SequencedDelta {
                seq: 2,
                delta: EdgeDelta::Delete {
                    u: node(0),
                    v: node(1)
                }
            },
            SequencedDelta {
                seq: 2,
                delta: EdgeDelta::Delete {
                    u: node(1),
                    v: node(2)
                }
            },
        ])
        .is_err());
    }

    #[test]
    fn recipe_tag_round_trips_every_knob_exactly() {
        let request = SpannerRequest {
            faults: 3,
            stretch: 5.0_f64.sqrt(), // an irrational: only bit-exact encoding survives
            fault_model: FaultModel::Edge,
            black_box: ftspan_spanners::BlackBoxKind::BaswanaSen,
            iterations: Some(12),
            scale: 0.75,
            alpha_constant: Some(1.5),
            degree_bound: Some(9),
            max_cut_rounds: 17,
            repetitions: Some(4),
            batch: Some(6),
            samples: Some(32),
            repair: false,
            threads: Some(8),
        };
        let recipe = BuildRecipe::new("conversion", request, 0xDEADBEEF);
        let provenance = recipe.tagged_provenance("Theorem 2.1 conversion over greedy");
        let back = BuildRecipe::from_tagged_provenance("conversion", &provenance)
            .expect("tagged provenance parses");
        assert_eq!(back.algorithm, "conversion");
        assert_eq!(back.seed, 0xDEADBEEF);
        // Every knob but `threads` round-trips exactly; `threads` is
        // normalized away (results are worker-count invariant).
        let mut expected = request;
        expected.threads = None;
        assert_eq!(back.request, expected);
        // Re-tagging the parsed recipe reproduces the same tag bytes.
        assert_eq!(back.provenance_tag(), recipe.provenance_tag());
    }

    #[test]
    fn recipe_tag_parser_rejects_untagged_and_mangled_provenance() {
        assert!(BuildRecipe::from_tagged_provenance("conversion", "").is_none());
        assert!(BuildRecipe::from_tagged_provenance(
            "conversion",
            "Theorem 2.1 conversion over greedy (k = 3, r = 1)"
        )
        .is_none());
        let recipe = BuildRecipe::new("conversion", SpannerRequest::default(), 7);
        let good = recipe.tagged_provenance("base");
        assert!(BuildRecipe::from_tagged_provenance("conversion", &good).is_some());
        // Truncations and field mutations must parse to None, never panic.
        for cut in 0..good.len() {
            let _ = BuildRecipe::from_tagged_provenance("conversion", &good[..cut]);
        }
        for mangled in [
            good.replace("model=vertex", "model=diagonal"),
            good.replace("bb=greedy", "bb=unknown"),
            good.replace("repair=1", "repair=yes"),
            good.replace("seed=7", "seed=x"),
            good.replace("stretch=", "stretchiness="),
        ] {
            assert!(
                BuildRecipe::from_tagged_provenance("conversion", &mangled).is_none(),
                "mangled tag parsed: {mangled}"
            );
        }
    }

    #[test]
    fn recipe_builds_store_a_parseable_tag_that_reproduces_the_artifact() {
        let mut r = rng(88);
        let g = generate::connected_gnp(18, 0.3, generate::WeightKind::Unit, &mut r);
        for algorithm in ["conversion", "corollary-2.2", "edge-fault"] {
            let recipe = BuildRecipe::new(algorithm, small_request(1, 4), 88);
            let built = DynamicArtifact::build(&g, recipe.clone()).unwrap();
            let parsed = BuildRecipe::from_tagged_provenance(
                built.artifact().algorithm(),
                built.artifact().provenance(),
            )
            .expect("recipe builds tag their provenance");
            let again = DynamicArtifact::build(&g, parsed).unwrap();
            assert_eq!(
                built.artifact(),
                again.artifact(),
                "{algorithm}: the recorded recipe does not reproduce the artifact"
            );
        }
    }

    #[test]
    fn ftdelta_codec_round_trips() {
        let mut log = DeltaLog::new();
        log.append(EdgeDelta::Insert {
            u: node(3),
            v: node(7),
            weight: 2.5,
        });
        log.append(EdgeDelta::Delete {
            u: node(0),
            v: node(1),
        });
        log.append(EdgeDelta::Reweight {
            u: node(2),
            v: node(4),
            weight: 0.125,
        });
        let mut bytes = Vec::new();
        log.to_binary_writer(&mut bytes).unwrap();
        let decoded = DeltaLog::from_binary_reader(&bytes[..]).unwrap();
        assert_eq!(decoded, log);
        // Appending after a round trip continues the sequence.
        let mut decoded = decoded;
        assert_eq!(
            decoded.append(EdgeDelta::Delete {
                u: node(2),
                v: node(4)
            }),
            4
        );
    }

    #[test]
    fn apply_deltas_validates_and_preserves_order() {
        let g = Graph::from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]).unwrap();
        let mut log = DeltaLog::new();
        log.append(EdgeDelta::Delete {
            u: node(1),
            v: node(2),
        });
        log.append(EdgeDelta::Insert {
            u: node(0),
            v: node(4),
            weight: 2.0,
        });
        log.append(EdgeDelta::Reweight {
            u: node(2),
            v: node(3),
            weight: 5.0,
        });
        let patched = log.replay(&g).unwrap();
        // Surviving edges keep relative order; the insert lands at the end.
        let edges: Vec<(usize, usize, f64)> = patched
            .edges()
            .map(|(_, e)| (e.u.index(), e.v.index(), e.weight))
            .collect();
        assert_eq!(
            edges,
            vec![(0, 1, 1.0), (2, 3, 5.0), (3, 4, 1.0), (0, 4, 2.0)]
        );

        let bad =
            |delta: EdgeDelta| apply_deltas(&g, &[SequencedDelta { seq: 1, delta }]).unwrap_err();
        bad(EdgeDelta::Insert {
            u: node(0),
            v: node(1),
            weight: 1.0,
        }); // exists
        bad(EdgeDelta::Delete {
            u: node(0),
            v: node(3),
        }); // missing
        bad(EdgeDelta::Reweight {
            u: node(0),
            v: node(3),
            weight: 1.0,
        }); // missing
        bad(EdgeDelta::Delete {
            u: node(0),
            v: node(9),
        }); // out of range
        bad(EdgeDelta::Insert {
            u: node(2),
            v: node(2),
            weight: 1.0,
        }); // self-loop
        bad(EdgeDelta::Insert {
            u: node(0),
            v: node(3),
            weight: f64::NAN,
        }); // bad weight
    }

    #[test]
    fn rebuild_policy_budgets() {
        let policy = RebuildPolicy::default();
        assert!(policy.patch_allowed(1, 10)); // minimum budget of 1
        assert!(policy.patch_allowed(5, 100));
        assert!(!policy.patch_allowed(6, 100));
        assert_eq!(policy.touched_budget(100), 25);
        assert!(!RebuildPolicy::always_rebuild().patch_allowed(1, 1_000_000));
        assert!(RebuildPolicy::always_patch().patch_allowed(1_000, 10));
        assert_eq!(
            RebuildPolicy::always_patch().touched_budget(100),
            usize::MAX
        );
    }

    #[test]
    fn dynamic_build_matches_the_registry_build_bit_for_bit() {
        let g = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut rng(30));
        for algorithm in ["conversion", "corollary-2.2", "clpr09"] {
            let request = small_request(1, 20);
            let recipe = BuildRecipe::new(algorithm, request, 2011);
            let dynamic = DynamicArtifact::build(&g, recipe.clone()).unwrap();
            let registry = Registry::from_algorithms(core_algorithms());
            let mut r = rng(2011);
            let mut report = registry
                .get(algorithm)
                .unwrap()
                .build(GraphInput::from(&g), &request, &mut r)
                .unwrap();
            // Recipe builds tag their provenance; the reference build gets
            // the same tag to stay byte-comparable.
            report.provenance = recipe.tagged_provenance(&report.provenance);
            let reference = FtSpanner::from_report(&g, &report).unwrap();
            assert_eq!(*dynamic.artifact(), reference, "algorithm = {algorithm}");
            assert_eq!(
                dynamic.is_repairable(),
                algorithm != "clpr09",
                "algorithm = {algorithm}"
            );
        }
    }

    #[test]
    fn patched_apply_matches_a_from_scratch_rebuild() {
        let g = generate::connected_gnp(24, 0.3, generate::WeightKind::Unit, &mut rng(31));
        let recipe = BuildRecipe::new("conversion", small_request(2, 40), 7);
        let v1 = DynamicArtifact::build(&g, recipe.clone()).unwrap();

        // A mixed batch: delete an existing edge, insert a fresh one.
        let existing = *g.edge(ftspan_graph::EdgeId::new(1));
        let mut r = rng(32);
        let (mut iu, mut iv) = (0, 0);
        while iu == iv || g.has_edge(node(iu), node(iv)) {
            iu = r.gen_range(0..g.node_count());
            iv = r.gen_range(0..g.node_count());
        }
        let deltas = vec![
            EdgeDelta::Delete {
                u: existing.u,
                v: existing.v,
            },
            EdgeDelta::Insert {
                u: node(iu),
                v: node(iv),
                weight: 1.0,
            },
        ];

        let (patched, report) = v1.apply(&deltas, &RebuildPolicy::always_patch()).unwrap();
        assert!(report.action.is_patch(), "action = {:?}", report.action);
        assert_eq!(report.version, 2);
        assert_eq!(report.applied, 2);
        assert_eq!(report.last_seq, 2);
        assert_eq!(patched.applied_seq(), 2);

        let (rebuilt, rebuilt_report) =
            v1.apply(&deltas, &RebuildPolicy::always_rebuild()).unwrap();
        assert!(!rebuilt_report.action.is_patch());
        assert_eq!(*patched.artifact(), *rebuilt.artifact());

        // And both equal a version-1 build on the post-delta graph.
        let post = v1.log().clone();
        assert!(post.is_empty(), "v1's own log must be untouched");
        let fresh_graph = patched.log().replay(&g).unwrap();
        let fresh = DynamicArtifact::build(&fresh_graph, recipe).unwrap();
        assert_eq!(*patched.artifact(), *fresh.artifact());

        // A second batch patches on top of the first.
        let deltas2 = vec![EdgeDelta::Reweight {
            u: node(iu),
            v: node(iv),
            weight: 3.0,
        }];
        let (v3, report3) = patched
            .apply(&deltas2, &RebuildPolicy::always_patch())
            .unwrap();
        assert!(report3.action.is_patch());
        assert_eq!(v3.version(), 3);
        assert_eq!(v3.applied_seq(), 3);
        let fresh3_graph = v3.log().replay(&g).unwrap();
        let fresh3 = DynamicArtifact::build(&fresh3_graph, v3.recipe().clone()).unwrap();
        assert_eq!(*v3.artifact(), *fresh3.artifact());
    }

    #[test]
    fn policy_falls_back_to_rebuild_and_reports_why() {
        let g = generate::connected_gnp(18, 0.4, generate::WeightKind::Unit, &mut rng(33));
        let recipe = BuildRecipe::new("conversion", small_request(1, 20), 9);
        let v1 = DynamicArtifact::build(&g, recipe).unwrap();
        let existing = *g.edge(ftspan_graph::EdgeId::new(0));
        let deltas = vec![EdgeDelta::Reweight {
            u: existing.u,
            v: existing.v,
            weight: 4.0,
        }];

        // Touched budget 0 forces the TouchedSet fallback (p = 1/2, so some
        // of the 20 iterations expose the edge with overwhelming probability).
        let tight = RebuildPolicy {
            max_delta_fraction: f64::INFINITY,
            max_touched_fraction: 0.0,
        };
        let (_, report) = v1.apply(&deltas, &tight).unwrap();
        match report.action {
            ApplyAction::Rebuilt {
                reason: RebuildReason::TouchedSet { touched },
            } => assert!(touched > 0),
            other => panic!("expected TouchedSet fallback, got {other:?}"),
        }

        let (_, report) = v1.apply(&deltas, &RebuildPolicy::always_rebuild()).unwrap();
        assert_eq!(
            report.action,
            ApplyAction::Rebuilt {
                reason: RebuildReason::DeltaVolume
            }
        );

        // A non-repairable algorithm reports NoTrace even under always_patch.
        let recipe = BuildRecipe::new("clpr09", small_request(1, 4), 9);
        let v1 = DynamicArtifact::build(&g, recipe).unwrap();
        let (_, report) = v1.apply(&deltas, &RebuildPolicy::always_patch()).unwrap();
        assert_eq!(
            report.action,
            ApplyAction::Rebuilt {
                reason: RebuildReason::NoTrace
            }
        );
    }
}
