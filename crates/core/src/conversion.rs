//! The conversion theorem (Theorem 2.1) and Corollary 2.2.
//!
//! The construction is deliberately simple — the paper's title promise. In
//! each of `α = Θ(r³ log n)` independent iterations:
//!
//! 1. every vertex joins a sampled "oversized fault set" `J` independently
//!    with probability `p = 1 − 1/r` (`p = 1/2` when `r ≤ 1`);
//! 2. the given black-box `k`-spanner algorithm is run on `G \ J`;
//! 3. the resulting edges are added to the output.
//!
//! For any real fault set `F` (`|F| ≤ r`) and any surviving edge `(u, v)`
//! whose shortest surviving path is the edge itself, an iteration "covers"
//! the pair when `u, v ∉ J` and `F ⊆ J`; this happens with probability at
//! least `1/(4r²)`, so `Θ(r³ log n)` iterations cover every pair and every
//! fault set with high probability. The expected number of surviving vertices
//! per iteration is `n/r`, which is where the `f(2n/r)` in the size bound
//! comes from.

use crate::par;
use crate::{CoreError, Result};
use ftspan_graph::{EdgeId, EdgeSet, Graph, NodeId};
use ftspan_spanners::SpannerAlgorithm;
use rand::Rng;
use rand::RngCore;

/// Parameters of the fault-tolerant conversion (Theorem 2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionParams {
    /// Number of vertex faults `r` to tolerate.
    pub faults: usize,
    /// Explicit number of iterations `α`. When `None`, the theorem's
    /// `⌈scale · 4 r² (r + 2) ln n⌉` is used.
    pub iterations: Option<usize>,
    /// Multiplier on the default iteration count. The paper's analysis uses a
    /// conservative union bound; experiments can lower this (and re-verify
    /// the output) to study how many iterations are needed in practice — the
    /// `ablation_alpha` benchmark does exactly that.
    pub scale: f64,
}

impl ConversionParams {
    /// Parameters tolerating `faults` vertex failures with the default
    /// iteration count.
    pub fn new(faults: usize) -> Self {
        ConversionParams {
            faults,
            iterations: None,
            scale: 1.0,
        }
    }

    /// Overrides the number of iterations `α`.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Scales the default iteration count by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "iteration scale must be positive");
        self.scale = scale;
        self
    }

    /// The sampling probability `p` with which each vertex joins the
    /// oversized fault set `J` (Theorem 2.1 uses `1 − 1/r`, or `1/2` when
    /// `r ≤ 1`).
    pub fn sampling_probability(&self) -> f64 {
        if self.faults <= 1 {
            0.5
        } else {
            1.0 - 1.0 / self.faults as f64
        }
    }

    /// The number of iterations `α` that will be used for an `n`-vertex
    /// graph.
    ///
    /// The default follows the proof of Theorem 2.1: the per-iteration
    /// success probability for a fixed pair and fault set is at least
    /// `1/(4r²)`, and a union bound over the roughly `n^{r+2}` (pair, fault
    /// set) combinations requires `α ≈ 4 r² (r + 2) ln n`.
    pub fn iterations_for(&self, n: usize) -> usize {
        if let Some(it) = self.iterations {
            return it.max(1);
        }
        let r = self.faults.max(1) as f64;
        let ln_n = (n.max(2) as f64).ln();
        let alpha = self.scale * 4.0 * r * r * (r + 2.0) * ln_n;
        alpha.ceil().max(1.0) as usize
    }

    /// The size bound `O(r³ log n · f(2n/r))` of Theorem 2.1, evaluated with
    /// the concrete iteration count used by this configuration and the
    /// black box's own size bound `f`.
    pub fn size_bound(&self, n: usize, f: impl Fn(usize) -> f64) -> f64 {
        let r = self.faults.max(1);
        let per_iteration_n = (2 * n / r).max(2);
        self.iterations_for(n) as f64 * f(per_iteration_n)
    }
}

/// Per-iteration record kept by [`FaultTolerantConverter::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationStats {
    /// Number of vertices that survived the oversampled fault set `J`.
    pub surviving_vertices: usize,
    /// Number of edges of `G \ J`.
    pub surviving_edges: usize,
    /// Number of edges the black box selected in this iteration.
    pub spanner_edges: usize,
    /// Number of those edges that were new to the union.
    pub new_edges: usize,
}

/// The output of the conversion: the fault-tolerant spanner plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionResult {
    /// The edges of the `r`-fault-tolerant `k`-spanner (over the input
    /// graph's edge identifiers).
    pub edges: EdgeSet,
    /// The number of iterations that were run.
    pub iterations: usize,
    /// Per-iteration statistics, in order.
    pub per_iteration: Vec<IterationStats>,
}

impl ConversionResult {
    /// Number of edges in the constructed spanner.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// The mean number of vertices surviving the oversampling per iteration
    /// (the paper's analysis shows this concentrates around `n/r`).
    pub fn mean_surviving_vertices(&self) -> f64 {
        if self.per_iteration.is_empty() {
            return 0.0;
        }
        self.per_iteration
            .iter()
            .map(|s| s.surviving_vertices as f64)
            .sum::<f64>()
            / self.per_iteration.len() as f64
    }
}

/// The Theorem 2.1 converter: wraps any [`SpannerAlgorithm`] and produces
/// `r`-fault-tolerant spanners.
///
/// # Example
///
/// ```
/// use ftspan_core::conversion::{ConversionParams, FaultTolerantConverter};
/// use ftspan_spanners::{BaswanaSenSpanner, SpannerAlgorithm};
/// use ftspan_graph::{generate, verify};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let g = generate::gnp(30, 0.4, generate::WeightKind::Unit, &mut rng);
/// let alg = BaswanaSenSpanner::new(2); // a 3-spanner black box
/// let converter = FaultTolerantConverter::new(ConversionParams::new(1));
/// let result = converter.build(&g, &alg, &mut rng);
/// assert!(verify::is_fault_tolerant_k_spanner(&g, &result.edges, 3.0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTolerantConverter {
    params: ConversionParams,
}

impl FaultTolerantConverter {
    /// Creates a converter with the given parameters.
    pub fn new(params: ConversionParams) -> Self {
        FaultTolerantConverter { params }
    }

    /// The conversion parameters.
    pub fn params(&self) -> &ConversionParams {
        &self.params
    }

    /// Runs the conversion of Theorem 2.1 on `graph` with the given black-box
    /// spanner algorithm, sequentially (one worker).
    ///
    /// The output is an `r`-fault-tolerant `algorithm.stretch()`-spanner with
    /// high probability; use `ftspan_graph::verify` to check it when
    /// certainty is required.
    pub fn build<A>(&self, graph: &Graph, algorithm: &A, rng: &mut dyn RngCore) -> ConversionResult
    where
        A: SpannerAlgorithm + ?Sized,
    {
        self.build_with_threads(graph, algorithm, rng, 1)
    }

    /// [`FaultTolerantConverter::build`] with the `α` independent iterations
    /// fanned out across up to `threads` workers.
    ///
    /// Each iteration derives a private random stream from a seed drawn
    /// sequentially from `rng` (see [`crate::par`]) and the per-iteration
    /// results are merged in iteration order, so the output — the edge union
    /// *and* every statistic — is byte-identical at any worker count.
    pub fn build_with_threads<A>(
        &self,
        graph: &Graph,
        algorithm: &A,
        rng: &mut dyn RngCore,
        threads: usize,
    ) -> ConversionResult
    where
        A: SpannerAlgorithm + ?Sized,
    {
        let n = graph.node_count();
        let p = self.params.sampling_probability();
        let alpha = self.params.iterations_for(n);
        let seeds = par::derive_seeds(rng, alpha);

        let outcomes = par::map(threads, alpha, |i| {
            let mut task_rng = par::stream(seeds[i]);
            // Sample the oversized fault set J.
            let alive: Vec<bool> = (0..n).map(|_| task_rng.gen::<f64>() >= p).collect();
            // Build G \ J, remembering how its edge ids map back to G.
            let (sub, edge_map) = induced_subgraph(graph, &alive);
            let spanner = algorithm.build(&sub, &mut task_rng);
            let edges: Vec<EdgeId> = spanner
                .iter()
                .map(|sub_edge| edge_map[sub_edge.index()])
                .collect();
            let stats = IterationStats {
                surviving_vertices: alive.iter().filter(|&&a| a).count(),
                surviving_edges: sub.edge_count(),
                spanner_edges: spanner.len(),
                new_edges: 0, // filled during the in-order merge below
            };
            (edges, stats)
        });

        let mut union = graph.empty_edge_set();
        let mut per_iteration = Vec::with_capacity(alpha);
        for (edges, mut stats) in outcomes {
            for parent in edges {
                if union.insert(parent) {
                    stats.new_edges += 1;
                }
            }
            per_iteration.push(stats);
        }

        ConversionResult {
            edges: union,
            iterations: alpha,
            per_iteration,
        }
    }
}

/// Replay record of one conversion iteration, kept by
/// [`FaultTolerantConverter::build_traced`].
///
/// The oversampled fault set itself is not stored — it is a pure function of
/// the iteration's seed (the mask consumes exactly `n` `f64` draws from the
/// seed's private stream), so a repair can recompute it bit-exactly. Only
/// what the black box *decided* is recorded: the endpoint pairs of the edges
/// it admitted, in output order.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedIteration {
    /// Normalized `(u, v)` endpoint pairs of the edges the black box
    /// admitted, in the order they were merged into the union.
    pub endpoints: Vec<(NodeId, NodeId)>,
    /// Number of vertices that survived the oversampled fault set.
    pub surviving_vertices: usize,
    /// Number of edges of `G \ J`.
    pub surviving_edges: usize,
}

/// Everything needed to replay a conversion build iteration-by-iteration:
/// the per-iteration seeds plus each iteration's admitted edges.
///
/// A trace makes the conversion *incrementally repairable*: after an
/// edge-only change to the graph, an iteration whose oversampled fault set
/// does not expose any changed edge (no changed edge has both endpoints
/// alive) produced — and would again produce — exactly the same black-box
/// output, so its recorded endpoints can be replayed without re-running the
/// black box. See [`FaultTolerantConverter::repair_traced`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionTrace {
    /// Vertex count of the graph the trace was built on. Repair requires the
    /// vertex set to be unchanged (edge-only deltas), because the alive mask
    /// consumes exactly this many draws per iteration.
    pub nodes: usize,
    /// Per-iteration seeds, in iteration order, as drawn by
    /// [`crate::par::derive_seeds`] from the root generator.
    pub seeds: Vec<u64>,
    /// Per-iteration replay records, in iteration order.
    pub iterations: Vec<TracedIteration>,
}

/// A successful incremental repair: the rebuilt result, the refreshed trace
/// (valid for the *post-delta* graph), and how much work it took.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairedConversion {
    /// The conversion result on the post-delta graph — bit-identical to what
    /// [`FaultTolerantConverter::build_traced`] would produce from scratch
    /// with the same root generator state.
    pub result: ConversionResult,
    /// The refreshed trace, usable for the next repair.
    pub trace: ConversionTrace,
    /// Number of iterations whose black box had to be re-run.
    pub touched_iterations: usize,
}

/// Outcome of a repair attempt (see
/// [`FaultTolerantConverter::repair_traced`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RepairAttempt {
    /// The repair completed within the touched-iteration budget.
    Repaired(RepairedConversion),
    /// More iterations were touched than `max_touched` allows; nothing was
    /// rebuilt — the caller should fall back to a full build.
    TooManyTouched {
        /// Number of iterations that would have to re-run the black box.
        touched: usize,
    },
}

impl FaultTolerantConverter {
    /// [`FaultTolerantConverter::build_with_threads`], additionally recording
    /// a [`ConversionTrace`] that makes the build incrementally repairable.
    ///
    /// The returned [`ConversionResult`] is bit-identical to what
    /// [`FaultTolerantConverter::build_with_threads`] produces from the same
    /// generator state — tracing only records, it never draws.
    pub fn build_traced<A>(
        &self,
        graph: &Graph,
        algorithm: &A,
        rng: &mut dyn RngCore,
        threads: usize,
    ) -> (ConversionResult, ConversionTrace)
    where
        A: SpannerAlgorithm + ?Sized,
    {
        let n = graph.node_count();
        let p = self.params.sampling_probability();
        let alpha = self.params.iterations_for(n);
        let seeds = par::derive_seeds(rng, alpha);

        let outcomes = par::map(threads, alpha, |i| {
            let mut task_rng = par::stream(seeds[i]);
            let alive: Vec<bool> = (0..n).map(|_| task_rng.gen::<f64>() >= p).collect();
            let (sub, edge_map) = induced_subgraph(graph, &alive);
            let spanner = algorithm.build(&sub, &mut task_rng);
            let edges: Vec<EdgeId> = spanner
                .iter()
                .map(|sub_edge| edge_map[sub_edge.index()])
                .collect();
            let endpoints: Vec<(NodeId, NodeId)> = edges
                .iter()
                .map(|&id| {
                    let e = graph.edge(id);
                    (e.u, e.v)
                })
                .collect();
            let stats = IterationStats {
                surviving_vertices: alive.iter().filter(|&&a| a).count(),
                surviving_edges: sub.edge_count(),
                spanner_edges: spanner.len(),
                new_edges: 0, // filled during the in-order merge below
            };
            (edges, endpoints, stats)
        });

        let mut union = graph.empty_edge_set();
        let mut per_iteration = Vec::with_capacity(alpha);
        let mut iterations = Vec::with_capacity(alpha);
        for (edges, endpoints, mut stats) in outcomes {
            for parent in edges {
                if union.insert(parent) {
                    stats.new_edges += 1;
                }
            }
            iterations.push(TracedIteration {
                endpoints,
                surviving_vertices: stats.surviving_vertices,
                surviving_edges: stats.surviving_edges,
            });
            per_iteration.push(stats);
        }

        (
            ConversionResult {
                edges: union,
                iterations: alpha,
                per_iteration,
            },
            ConversionTrace {
                nodes: n,
                seeds,
                iterations,
            },
        )
    }

    /// Incrementally repairs a traced build after an edge-only change.
    ///
    /// `new_graph` must be the post-delta graph with the *same vertex set*
    /// as the traced build and with the relative order of surviving edges
    /// preserved (deletions compact, insertions append — the contract of
    /// `ftspan_core::dynamic::apply_deltas`). `changed` lists the endpoint
    /// pairs of every inserted, deleted, or reweighted edge.
    ///
    /// An iteration is *touched* when some changed edge has both endpoints
    /// alive in that iteration's oversampled mask — only then can its
    /// induced subgraph differ from the traced build's, so only those
    /// iterations re-run the black box (from the recorded seed, drawing the
    /// mask first so the stream position matches a from-scratch run).
    /// Untouched iterations replay their recorded endpoints. Merging in
    /// iteration order then reproduces — bit-identically — the result of
    /// [`FaultTolerantConverter::build_traced`] on `new_graph` from the same
    /// root generator state, because that build would draw the very same
    /// seeds (`α` depends only on `n` and the parameters, both unchanged).
    ///
    /// When more than `max_touched` iterations are touched the attempt is
    /// abandoned before any black-box work and
    /// [`RepairAttempt::TooManyTouched`] is returned.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] if the vertex count changed, if the
    ///   parameters no longer yield the traced iteration count, or if an
    ///   untouched iteration's recorded edge is missing from `new_graph`
    ///   (the `changed` list was incomplete).
    pub fn repair_traced<A>(
        &self,
        new_graph: &Graph,
        algorithm: &A,
        trace: &ConversionTrace,
        changed: &[(NodeId, NodeId)],
        max_touched: usize,
        threads: usize,
    ) -> Result<RepairAttempt>
    where
        A: SpannerAlgorithm + ?Sized,
    {
        let n = new_graph.node_count();
        if n != trace.nodes {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "conversion repair requires an unchanged vertex set: trace has {} nodes, \
                     graph has {n}",
                    trace.nodes
                ),
            });
        }
        let alpha = self.params.iterations_for(n);
        if alpha != trace.seeds.len() || trace.iterations.len() != trace.seeds.len() {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "conversion repair parameters drifted: trace has {} iterations, parameters \
                     now yield {alpha}",
                    trace.seeds.len()
                ),
            });
        }
        let p = self.params.sampling_probability();

        // Pass 1: recompute the masks (n draws each, no subgraphs) and flag
        // the touched iterations.
        let touched_flags = par::map(threads, alpha, |i| {
            let mut task_rng = par::stream(trace.seeds[i]);
            let alive: Vec<bool> = (0..n).map(|_| task_rng.gen::<f64>() >= p).collect();
            changed
                .iter()
                .any(|&(u, v)| alive[u.index()] && alive[v.index()])
        });
        let touched = touched_flags.iter().filter(|&&t| t).count();
        if touched > max_touched {
            return Ok(RepairAttempt::TooManyTouched { touched });
        }

        // Pass 2: re-run the black box for touched iterations, replay the
        // recorded endpoints for the rest.
        let outcomes = par::map(threads, alpha, |i| -> Result<_> {
            if touched_flags[i] {
                let mut task_rng = par::stream(trace.seeds[i]);
                let alive: Vec<bool> = (0..n).map(|_| task_rng.gen::<f64>() >= p).collect();
                let (sub, edge_map) = induced_subgraph(new_graph, &alive);
                let spanner = algorithm.build(&sub, &mut task_rng);
                let edges: Vec<EdgeId> = spanner
                    .iter()
                    .map(|sub_edge| edge_map[sub_edge.index()])
                    .collect();
                let endpoints: Vec<(NodeId, NodeId)> = edges
                    .iter()
                    .map(|&id| {
                        let e = new_graph.edge(id);
                        (e.u, e.v)
                    })
                    .collect();
                let record = TracedIteration {
                    endpoints,
                    surviving_vertices: alive.iter().filter(|&&a| a).count(),
                    surviving_edges: sub.edge_count(),
                };
                Ok((edges, record))
            } else {
                let record = trace.iterations[i].clone();
                let edges = record
                    .endpoints
                    .iter()
                    .map(|&(u, v)| {
                        new_graph
                            .find_edge(u, v)
                            .ok_or_else(|| CoreError::InvalidParameter {
                                message: format!(
                                    "conversion repair replay: recorded edge ({u}, {v}) of \
                                     iteration {i} is missing from the post-delta graph — the \
                                     changed-edge list was incomplete"
                                ),
                            })
                    })
                    .collect::<Result<Vec<EdgeId>>>()?;
                Ok((edges, record))
            }
        });

        let mut union = new_graph.empty_edge_set();
        let mut per_iteration = Vec::with_capacity(alpha);
        let mut iterations = Vec::with_capacity(alpha);
        for outcome in outcomes {
            let (edges, record) = outcome?;
            let mut stats = IterationStats {
                surviving_vertices: record.surviving_vertices,
                surviving_edges: record.surviving_edges,
                spanner_edges: record.endpoints.len(),
                new_edges: 0,
            };
            for parent in edges {
                if union.insert(parent) {
                    stats.new_edges += 1;
                }
            }
            per_iteration.push(stats);
            iterations.push(record);
        }

        Ok(RepairAttempt::Repaired(RepairedConversion {
            result: ConversionResult {
                edges: union,
                iterations: alpha,
                per_iteration,
            },
            trace: ConversionTrace {
                nodes: n,
                seeds: trace.seeds.clone(),
                iterations,
            },
            touched_iterations: touched,
        }))
    }
}

/// Builds the subgraph of `graph` induced by the vertices with
/// `alive[v] == true`, preserving vertex identifiers, together with a map
/// from the subgraph's edge ids back to the parent graph's edge ids.
fn induced_subgraph(graph: &Graph, alive: &[bool]) -> (Graph, Vec<EdgeId>) {
    let mut sub = Graph::new(graph.node_count());
    let mut map = Vec::new();
    for (id, e) in graph.edges() {
        if alive[e.u.index()] && alive[e.v.index()] {
            sub.add_edge(e.u, e.v, e.weight)
                .expect("edges of a valid graph remain valid in a subgraph");
            map.push(id);
        }
    }
    (sub, map)
}

/// Corollary 2.2: the conversion applied to the greedy spanner of Althöfer et
/// al., giving `r`-fault-tolerant `k`-spanners of size
/// `O(r^{2−2/(k+1)} n^{1+2/(k+1)} log n)` for odd `k ≥ 1`.
///
/// # Panics
///
/// Panics if `stretch < 1`.
pub fn corollary_2_2(
    graph: &Graph,
    stretch: f64,
    faults: usize,
    rng: &mut dyn RngCore,
) -> ConversionResult {
    let converter = FaultTolerantConverter::new(ConversionParams::new(faults));
    converter.build(graph, &ftspan_spanners::GreedySpanner::new(stretch), rng)
}

/// Samples the oversized fault set once (exposed for the distributed
/// implementation in `ftspan-local`, where each vertex makes this decision
/// locally).
pub fn sample_oversized_fault_set<R: Rng + ?Sized>(
    n: usize,
    params: &ConversionParams,
    rng: &mut R,
) -> Vec<NodeId> {
    let p = params.sampling_probability();
    (0..n)
        .filter(|_| rng.gen::<f64>() < p)
        .map(NodeId::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use ftspan_spanners::{BaswanaSenSpanner, GreedySpanner};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn iteration_count_follows_theorem() {
        let p = ConversionParams::new(2);
        let n = 100;
        let expected = (4.0 * 4.0 * 4.0 * (100f64).ln()).ceil() as usize;
        assert_eq!(p.iterations_for(n), expected);
        assert_eq!(p.with_iterations(17).iterations_for(n), 17);
        let scaled = ConversionParams::new(2).with_scale(0.5);
        assert!(scaled.iterations_for(n) < expected);
    }

    #[test]
    fn sampling_probability_special_cases() {
        assert_eq!(ConversionParams::new(0).sampling_probability(), 0.5);
        assert_eq!(ConversionParams::new(1).sampling_probability(), 0.5);
        assert_eq!(ConversionParams::new(4).sampling_probability(), 0.75);
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        ConversionParams::new(1).with_scale(0.0);
    }

    #[test]
    fn output_is_fault_tolerant_r1_k3() {
        let mut r = rng(1);
        let g = generate::gnp(25, 0.5, generate::WeightKind::Unit, &mut r);
        let result = corollary_2_2(&g, 3.0, 1, &mut r);
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            &result.edges,
            3.0,
            1
        ));
        assert!(result.size() <= g.edge_count());
        assert_eq!(result.per_iteration.len(), result.iterations);
    }

    #[test]
    fn output_is_fault_tolerant_r2_weighted() {
        let mut r = rng(2);
        let g = generate::connected_gnp(
            18,
            0.4,
            generate::WeightKind::Uniform { min: 1.0, max: 3.0 },
            &mut r,
        );
        let result = corollary_2_2(&g, 3.0, 2, &mut r);
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            &result.edges,
            3.0,
            2
        ));
    }

    #[test]
    fn works_with_baswana_sen_black_box() {
        let mut r = rng(3);
        let g = generate::gnp(24, 0.5, generate::WeightKind::Unit, &mut r);
        let alg = BaswanaSenSpanner::new(2);
        let converter = FaultTolerantConverter::new(ConversionParams::new(1));
        let result = converter.build(&g, &alg, &mut r);
        assert!(verify::is_fault_tolerant_k_spanner(
            &g,
            &result.edges,
            3.0,
            1
        ));
    }

    #[test]
    fn oversampling_keeps_roughly_n_over_r_vertices() {
        let mut r = rng(4);
        let g = generate::gnp(60, 0.2, generate::WeightKind::Unit, &mut r);
        let params = ConversionParams::new(4).with_iterations(200);
        let converter = FaultTolerantConverter::new(params);
        let result = converter.build(&g, &GreedySpanner::new(3.0), &mut r);
        let mean = result.mean_surviving_vertices();
        // Expected survivors: n / r = 15; allow generous sampling slack.
        assert!(mean > 9.0 && mean < 21.0, "mean survivors {mean}");
    }

    #[test]
    fn more_faults_need_more_edges() {
        let mut r = rng(5);
        let g = generate::gnp(30, 0.5, generate::WeightKind::Unit, &mut r);
        let small = corollary_2_2(&g, 3.0, 1, &mut r).size();
        let large = corollary_2_2(&g, 3.0, 3, &mut r).size();
        assert!(
            large >= small,
            "r=3 spanner ({large}) smaller than r=1 ({small})"
        );
    }

    #[test]
    fn size_bound_helper_composes_f() {
        let params = ConversionParams::new(2);
        let bound = params.size_bound(100, |n| n as f64);
        assert_eq!(bound, params.iterations_for(100) as f64 * 100.0);
    }

    #[test]
    fn sample_oversized_fault_set_has_expected_density() {
        let mut r = rng(6);
        let params = ConversionParams::new(4); // p = 3/4
        let sampled = sample_oversized_fault_set(1000, &params, &mut r);
        assert!(
            sampled.len() > 650 && sampled.len() < 850,
            "got {}",
            sampled.len()
        );
    }

    #[test]
    fn empty_graph_yields_empty_spanner() {
        let mut r = rng(7);
        let g = Graph::new(0);
        let result = corollary_2_2(&g, 3.0, 2, &mut r);
        assert_eq!(result.size(), 0);
    }

    #[test]
    fn traced_build_matches_untraced_build_exactly() {
        let g = generate::gnp(22, 0.4, generate::WeightKind::Unit, &mut rng(11));
        let converter = FaultTolerantConverter::new(ConversionParams::new(2).with_iterations(30));
        let plain = converter.build_with_threads(&g, &GreedySpanner::new(3.0), &mut rng(12), 2);
        let (traced, trace) = converter.build_traced(&g, &GreedySpanner::new(3.0), &mut rng(12), 2);
        assert_eq!(plain, traced);
        assert_eq!(trace.nodes, g.node_count());
        assert_eq!(trace.seeds.len(), 30);
        assert_eq!(trace.iterations.len(), 30);
        for (record, stats) in trace.iterations.iter().zip(&traced.per_iteration) {
            assert_eq!(record.endpoints.len(), stats.spanner_edges);
            assert_eq!(record.surviving_vertices, stats.surviving_vertices);
        }
    }

    #[test]
    fn repair_with_no_changes_replays_the_trace_verbatim() {
        let g = generate::gnp(20, 0.4, generate::WeightKind::Unit, &mut rng(13));
        let converter = FaultTolerantConverter::new(ConversionParams::new(1).with_iterations(25));
        let alg = GreedySpanner::new(3.0);
        let (result, trace) = converter.build_traced(&g, &alg, &mut rng(14), 1);
        match converter
            .repair_traced(&g, &alg, &trace, &[], usize::MAX, 2)
            .unwrap()
        {
            RepairAttempt::Repaired(repaired) => {
                assert_eq!(repaired.result, result);
                assert_eq!(repaired.trace, trace);
                assert_eq!(repaired.touched_iterations, 0);
            }
            RepairAttempt::TooManyTouched { .. } => panic!("no change touched an iteration"),
        }
    }

    #[test]
    fn repair_matches_a_from_scratch_rebuild_bit_for_bit() {
        let mut r = rng(15);
        let g = generate::connected_gnp(24, 0.3, generate::WeightKind::Unit, &mut r);
        let converter = FaultTolerantConverter::new(ConversionParams::new(2).with_iterations(40));
        let alg = GreedySpanner::new(3.0);
        let (_, trace) = converter.build_traced(&g, &alg, &mut rng(16), 2);

        // Post-delta graph: drop one edge (compacting), append one new edge —
        // the contract repair_traced documents.
        let dropped = *g.edge(ftspan_graph::EdgeId::new(0));
        let mut new_graph = Graph::new(g.node_count());
        for (id, e) in g.edges() {
            if id.index() != 0 {
                new_graph.add_edge(e.u, e.v, e.weight).unwrap();
            }
        }
        let (mut iu, mut iv) = (NodeId::new(0), NodeId::new(0));
        'outer: for u in 0..g.node_count() {
            for v in (u + 1)..g.node_count() {
                if g.find_edge(NodeId::new(u), NodeId::new(v)).is_none() {
                    iu = NodeId::new(u);
                    iv = NodeId::new(v);
                    break 'outer;
                }
            }
        }
        assert_ne!(iu, iv, "test graph unexpectedly complete");
        new_graph.add_edge(iu, iv, 1.0).unwrap();
        let changed = vec![(dropped.u, dropped.v), (iu, iv)];

        let (reference, _) = converter.build_traced(&new_graph, &alg, &mut rng(16), 1);
        for threads in [1usize, 2, 8] {
            match converter
                .repair_traced(&new_graph, &alg, &trace, &changed, usize::MAX, threads)
                .unwrap()
            {
                RepairAttempt::Repaired(repaired) => {
                    assert_eq!(repaired.result, reference, "threads = {threads}");
                    assert!(repaired.touched_iterations > 0);
                    assert!(repaired.touched_iterations < trace.seeds.len());
                }
                RepairAttempt::TooManyTouched { .. } => panic!("unlimited budget"),
            }
        }
    }

    #[test]
    fn repair_respects_the_touched_budget_and_rejects_node_changes() {
        let g = generate::gnp(18, 0.5, generate::WeightKind::Unit, &mut rng(17));
        let converter = FaultTolerantConverter::new(ConversionParams::new(1).with_iterations(20));
        let alg = GreedySpanner::new(3.0);
        let (_, trace) = converter.build_traced(&g, &alg, &mut rng(18), 1);
        let e = *g.edge(ftspan_graph::EdgeId::new(0));
        let changed = vec![(e.u, e.v)];
        // p = 1/2: both endpoints alive in ~1/4 of 20 iterations; budget 0
        // forces the fallback signal.
        match converter
            .repair_traced(&g, &alg, &trace, &changed, 0, 1)
            .unwrap()
        {
            RepairAttempt::TooManyTouched { touched } => assert!(touched > 0),
            RepairAttempt::Repaired(_) => panic!("budget 0 must refuse any touched iteration"),
        }
        let bigger = Graph::new(g.node_count() + 1);
        assert!(converter
            .repair_traced(&bigger, &alg, &trace, &[], usize::MAX, 1)
            .is_err());
    }

    #[test]
    fn parallel_build_is_byte_identical_across_worker_counts() {
        let g = generate::gnp(24, 0.4, generate::WeightKind::Unit, &mut rng(8));
        let converter = FaultTolerantConverter::new(ConversionParams::new(2).with_iterations(40));
        let reference = converter.build_with_threads(&g, &GreedySpanner::new(3.0), &mut rng(9), 1);
        for threads in [2usize, 3, 8] {
            let got =
                converter.build_with_threads(&g, &GreedySpanner::new(3.0), &mut rng(9), threads);
            assert_eq!(reference, got, "threads = {threads} changed the result");
        }
        // The randomized black box follows the same discipline.
        let bs = BaswanaSenSpanner::new(2);
        let reference = converter.build_with_threads(&g, &bs, &mut rng(10), 1);
        let got = converter.build_with_threads(&g, &bs, &mut rng(10), 4);
        assert_eq!(reference, got);
    }
}
