//! Error type for the fault-tolerant spanner constructions.

use ftspan_graph::GraphError;
use ftspan_lp::LpError;
use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the fault-tolerant spanner constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from the LP solver (most commonly an infeasible or
    /// unbounded relaxation, which indicates a malformed instance).
    Lp(LpError),
    /// A parameter of a construction was invalid.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Lp(e) => write!(f, "linear programming error: {e}"),
            CoreError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl StdError for CoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Lp(e) => Some(e),
            CoreError::InvalidParameter { .. } => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let g: CoreError = GraphError::SelfLoop { node: 1 }.into();
        assert!(g.to_string().contains("graph error"));
        let l: CoreError = LpError::Infeasible.into();
        assert!(l.to_string().contains("infeasible"));
        let p = CoreError::InvalidParameter {
            message: "r must be positive".into(),
        };
        assert!(p.to_string().contains("r must be positive"));
    }

    #[test]
    fn source_chains() {
        let e: CoreError = LpError::Unbounded.into();
        assert!(e.source().is_some());
        let p = CoreError::InvalidParameter {
            message: "x".into(),
        };
        assert!(p.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: StdError + Send + Sync>() {}
        check::<CoreError>();
    }
}
