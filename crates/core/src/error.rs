//! Error type for the fault-tolerant spanner constructions.

use crate::api::FaultModel;
use ftspan_graph::GraphError;
use ftspan_lp::LpError;
use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the fault-tolerant spanner constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from the LP solver (most commonly an infeasible or
    /// unbounded relaxation, which indicates a malformed instance).
    Lp(LpError),
    /// A parameter of a construction was invalid.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        message: String,
    },
    /// A query-session fault set exceeded the artifact's declared budget `r`.
    TooManyFaults {
        /// Number of (distinct) faults the caller supplied.
        given: usize,
        /// The fault budget the artifact was built for.
        budget: usize,
    },
    /// A query referenced a vertex outside the artifact's vertex set.
    UnknownNode {
        /// The offending vertex index.
        node: usize,
        /// Number of vertices in the artifact.
        nodes: usize,
    },
    /// An edge-fault referenced an edge the source graph does not contain.
    UnknownEdge {
        /// Tail endpoint of the missing edge.
        u: usize,
        /// Head endpoint of the missing edge.
        v: usize,
    },
    /// A fault session of the wrong kind was requested (vertex faults on an
    /// edge-fault artifact or vice versa).
    FaultModelMismatch {
        /// The fault model the artifact guarantees.
        declared: FaultModel,
        /// The fault model the session asked for.
        requested: FaultModel,
    },
    /// A batch query named a serving artifact that was never registered.
    UnknownArtifact {
        /// The name the query asked for.
        name: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Lp(e) => write!(f, "linear programming error: {e}"),
            CoreError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            CoreError::TooManyFaults { given, budget } => write!(
                f,
                "fault set has {given} faults but the artifact tolerates at most {budget}"
            ),
            CoreError::UnknownNode { node, nodes } => write!(
                f,
                "vertex {node} does not exist (the artifact has {nodes} vertices)"
            ),
            CoreError::UnknownEdge { u, v } => {
                write!(f, "edge ({u}, {v}) does not exist in the source graph")
            }
            CoreError::FaultModelMismatch {
                declared,
                requested,
            } => write!(
                f,
                "the artifact guarantees {declared}-fault tolerance but the session \
                 supplied {requested} faults"
            ),
            CoreError::UnknownArtifact { name } => {
                write!(f, "no artifact named `{name}` is registered")
            }
        }
    }
}

impl StdError for CoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let g: CoreError = GraphError::SelfLoop { node: 1 }.into();
        assert!(g.to_string().contains("graph error"));
        let l: CoreError = LpError::Infeasible.into();
        assert!(l.to_string().contains("infeasible"));
        let p = CoreError::InvalidParameter {
            message: "r must be positive".into(),
        };
        assert!(p.to_string().contains("r must be positive"));
    }

    #[test]
    fn source_chains() {
        let e: CoreError = LpError::Unbounded.into();
        assert!(e.source().is_some());
        let p = CoreError::InvalidParameter {
            message: "x".into(),
        };
        assert!(p.source().is_none());
    }

    #[test]
    fn query_path_error_displays() {
        let e = CoreError::TooManyFaults {
            given: 5,
            budget: 2,
        };
        assert_eq!(
            e.to_string(),
            "fault set has 5 faults but the artifact tolerates at most 2"
        );
        let e = CoreError::UnknownNode { node: 9, nodes: 4 };
        assert_eq!(
            e.to_string(),
            "vertex 9 does not exist (the artifact has 4 vertices)"
        );
        let e = CoreError::UnknownEdge { u: 1, v: 2 };
        assert_eq!(
            e.to_string(),
            "edge (1, 2) does not exist in the source graph"
        );
        let e = CoreError::FaultModelMismatch {
            declared: FaultModel::Vertex,
            requested: FaultModel::Edge,
        };
        assert_eq!(
            e.to_string(),
            "the artifact guarantees vertex-fault tolerance but the session supplied edge faults"
        );
        let e = CoreError::UnknownArtifact {
            name: "prod".into(),
        };
        assert_eq!(e.to_string(), "no artifact named `prod` is registered");
        for e in [
            CoreError::TooManyFaults {
                given: 1,
                budget: 0,
            },
            CoreError::UnknownNode { node: 0, nodes: 0 },
            CoreError::UnknownEdge { u: 0, v: 1 },
            CoreError::UnknownArtifact {
                name: String::new(),
            },
        ] {
            assert!(e.source().is_none());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: StdError + Send + Sync>() {}
        check::<CoreError>();
    }
}
