//! Property-based tests for the classic spanner constructions: whatever the
//! input graph, the stretch guarantee and basic sanity invariants must hold.

use ftspan_graph::{verify, Graph, NodeId};
use ftspan_spanners::{BaswanaSenSpanner, ClusterSpanner, GreedySpanner, SpannerAlgorithm};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph_from_bits(n: usize, bits: &[bool], weights: &[f64]) -> Graph {
    let mut g = Graph::new(n);
    let mut idx = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            if idx < bits.len() && bits[idx] {
                let w = weights.get(idx).copied().unwrap_or(1.0).abs().max(0.01);
                g.add_edge(NodeId::new(u), NodeId::new(v), w).unwrap();
            }
            idx += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Greedy spanners respect their stretch bound on weighted graphs and the
    /// girth-based sparsity is monotone: higher stretch never keeps more
    /// edges.
    #[test]
    fn greedy_stretch_and_monotonicity(
        n in 2usize..14,
        bits in proptest::collection::vec(any::<bool>(), 0..91),
        weights in proptest::collection::vec(0.1f64..5.0, 0..91),
        seed in any::<u64>(),
    ) {
        let g = graph_from_bits(n, &bits, &weights);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s3 = GreedySpanner::new(3.0).build(&g, &mut rng);
        let s5 = GreedySpanner::new(5.0).build(&g, &mut rng);
        prop_assert!(verify::is_k_spanner(&g, &s3, 3.0));
        prop_assert!(verify::is_k_spanner(&g, &s5, 5.0));
        prop_assert!(s5.len() <= s3.len());
        // Greedy keeps connectivity of each component: the spanner reaches
        // every vertex the graph reaches.
        let full = ftspan_graph::shortest_path::dijkstra(&g, NodeId::new(0)).unwrap();
        let sub = ftspan_graph::shortest_path::dijkstra_on_edges(&g, &s3, NodeId::new(0)).unwrap();
        for v in 0..n {
            prop_assert_eq!(full[v].is_finite(), sub[v].is_finite());
        }
    }

    /// Baswana-Sen and the cluster spanner always meet their stretch bounds
    /// (unit weights for the cluster spanner, arbitrary for Baswana-Sen).
    #[test]
    fn randomized_spanners_meet_their_stretch(
        n in 2usize..14,
        bits in proptest::collection::vec(any::<bool>(), 0..91),
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let g = graph_from_bits(n, &bits, &[]);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bs = BaswanaSenSpanner::new(k);
        let s = bs.build(&g, &mut rng);
        prop_assert!(verify::is_k_spanner(&g, &s, bs.stretch()));

        let cs = ClusterSpanner::with_radius(1);
        let c = cs.build(&g, &mut rng);
        prop_assert!(verify::is_k_spanner(&g, &c, cs.stretch()));
    }

    /// Every construction returns a subset of the input's edges sized within
    /// its own documented bound (plus slack for the bound's constant).
    #[test]
    fn sizes_are_subsets_and_bounded(
        n in 2usize..14,
        bits in proptest::collection::vec(any::<bool>(), 0..91),
        seed in any::<u64>(),
    ) {
        let g = graph_from_bits(n, &bits, &[]);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let algorithms: Vec<Box<dyn SpannerAlgorithm>> = vec![
            Box::new(GreedySpanner::new(3.0)),
            Box::new(BaswanaSenSpanner::new(2)),
            Box::new(ClusterSpanner::with_radius(1)),
        ];
        for alg in &algorithms {
            let s = alg.build(&g, &mut rng);
            prop_assert!(s.len() <= g.edge_count());
            prop_assert!(s.capacity() == g.edge_count());
            // The documented f(n) bound (with a generous constant of 4 for
            // the randomized constructions) is respected.
            prop_assert!((s.len() as f64) <= 4.0 * alg.size_bound(n) + 8.0);
        }
    }
}
