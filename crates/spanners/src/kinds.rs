//! Runtime selection of the conversion theorem's black box.
//!
//! The conversion of Theorem 2.1 is parameterized by *any*
//! [`SpannerAlgorithm`]; the unified construction API in `ftspan-core` lets
//! callers pick that black box by name at runtime (from a `SpannerRequest` or
//! a benchmark's command line) rather than by type. [`BlackBoxKind`] is the
//! closed enumeration of the black boxes this crate ships, with a factory
//! that instantiates each for a target stretch.

use crate::{
    BaswanaSenSpanner, ClusterSpanner, GreedySpanner, SpannerAlgorithm, ThorupZwickSpanner,
};

/// A named black-box spanner construction that the conversion theorem can be
/// instantiated with at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlackBoxKind {
    /// The greedy construction of Althöfer et al. (Corollary 2.2's choice).
    #[default]
    Greedy,
    /// The randomized clustering construction of Baswana & Sen.
    BaswanaSen,
    /// The Thorup–Zwick cluster spanner (the CLPR09 ingredient).
    ThorupZwick,
    /// A ball-carving cluster spanner (the distributed-friendly stand-in for
    /// Derbel–Gavoille–Peleg–Viennot).
    Cluster,
}

impl BlackBoxKind {
    /// All selectable kinds, in display order.
    pub const ALL: [BlackBoxKind; 4] = [
        BlackBoxKind::Greedy,
        BlackBoxKind::BaswanaSen,
        BlackBoxKind::ThorupZwick,
        BlackBoxKind::Cluster,
    ];

    /// The stable string key for this kind (also accepted by [`Self::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            BlackBoxKind::Greedy => "greedy",
            BlackBoxKind::BaswanaSen => "baswana-sen",
            BlackBoxKind::ThorupZwick => "thorup-zwick",
            BlackBoxKind::Cluster => "cluster",
        }
    }

    /// Looks a kind up by its string key.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Instantiates this black box so that it guarantees stretch at most
    /// `stretch`.
    ///
    /// The clustering constructions only realize odd stretches `2t − 1`; for
    /// other values of `stretch` the largest parameter whose guarantee does
    /// not exceed `stretch` is chosen, so the returned algorithm's
    /// [`SpannerAlgorithm::stretch`] is always `≤ stretch` (and `build`
    /// output remains a valid `stretch`-spanner a fortiori).
    ///
    /// # Panics
    ///
    /// Panics if `stretch < 1`.
    pub fn instantiate(self, stretch: f64) -> Box<dyn SpannerAlgorithm> {
        assert!(stretch >= 1.0, "spanner stretch must be at least 1");
        // Largest t with 2t - 1 <= stretch.
        let t = (((stretch + 1.0) / 2.0).floor() as usize).max(1);
        match self {
            BlackBoxKind::Greedy => Box::new(GreedySpanner::new(stretch)),
            BlackBoxKind::BaswanaSen => Box::new(BaswanaSenSpanner::new(t)),
            BlackBoxKind::ThorupZwick => Box::new(ThorupZwickSpanner::new(t)),
            BlackBoxKind::Cluster => Box::new(ClusterSpanner::for_stretch(
                ((2 * t).saturating_sub(1)).max(1),
            )),
        }
    }
}

impl std::fmt::Display for BlackBoxKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in BlackBoxKind::ALL {
            assert_eq!(BlackBoxKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BlackBoxKind::parse("no-such-box"), None);
    }

    #[test]
    fn instantiation_never_exceeds_requested_stretch() {
        for kind in BlackBoxKind::ALL {
            for stretch in [1.0f64, 3.0, 5.0, 7.0] {
                let alg = kind.instantiate(stretch);
                assert!(
                    alg.stretch() <= stretch + 1e-9,
                    "{} instantiated for {stretch} guarantees {}",
                    kind,
                    alg.stretch()
                );
            }
        }
    }

    #[test]
    fn stretch_three_picks_the_classic_parameters() {
        assert_eq!(BlackBoxKind::Greedy.instantiate(3.0).stretch(), 3.0);
        assert_eq!(BlackBoxKind::BaswanaSen.instantiate(3.0).stretch(), 3.0);
        assert_eq!(BlackBoxKind::ThorupZwick.instantiate(3.0).stretch(), 3.0);
    }

    #[test]
    #[should_panic]
    fn sub_unit_stretch_rejected() {
        BlackBoxKind::Greedy.instantiate(0.5);
    }
}
