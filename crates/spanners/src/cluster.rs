//! A simple ball-carving cluster spanner, the distributed-friendly black box.

use crate::SpannerAlgorithm;
use ftspan_graph::{EdgeSet, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::RngCore;
use std::collections::{HashMap, VecDeque};

/// A ball-carving cluster spanner for unit-length graphs.
///
/// Vertices are visited in random order; each unclustered vertex starts a new
/// cluster and absorbs all unclustered vertices within `radius` hops, adding
/// the BFS tree edges to the spanner. Finally one edge is added between every
/// pair of adjacent clusters.
///
/// For unit-length graphs the resulting subgraph is a `(4·radius + 1)`-spanner:
/// an intra-cluster edge is replaced by a tree path of length at most
/// `2·radius`, and an inter-cluster edge `(u, v)` by a path through the two
/// cluster trees and the representative edge, of length at most
/// `4·radius + 1`.
///
/// This construction is the sequential counterpart of the algorithm run by
/// `ftspan-local`; it stands in for the Derbel–Gavoille–Peleg–Viennot
/// construction referenced by Corollary 2.4 of the paper (see DESIGN.md).
/// On weighted graphs it still produces a spanning structure but the stretch
/// guarantee applies to hop counts only.
///
/// # Example
///
/// ```
/// use ftspan_spanners::{ClusterSpanner, SpannerAlgorithm};
/// use ftspan_graph::{generate, verify};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let g = generate::gnp(60, 0.2, generate::WeightKind::Unit, &mut rng);
/// let alg = ClusterSpanner::with_radius(1); // stretch 5
/// let s = alg.build(&g, &mut rng);
/// assert!(verify::is_k_spanner(&g, &s, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpanner {
    radius: usize,
}

impl ClusterSpanner {
    /// Creates a cluster spanner carving balls of the given hop `radius`.
    pub fn with_radius(radius: usize) -> Self {
        ClusterSpanner { radius }
    }

    /// Creates a cluster spanner whose stretch is at most `k`, i.e. with
    /// radius `⌊(k − 1) / 4⌋`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1`.
    pub fn for_stretch(k: usize) -> Self {
        assert!(k >= 1, "stretch must be at least 1");
        ClusterSpanner {
            radius: (k - 1) / 4,
        }
    }

    /// The ball radius used when carving clusters.
    pub fn radius(&self) -> usize {
        self.radius
    }
}

impl SpannerAlgorithm for ClusterSpanner {
    fn name(&self) -> &str {
        "cluster"
    }

    fn stretch(&self) -> f64 {
        (4 * self.radius + 1) as f64
    }

    fn build(&self, graph: &Graph, rng: &mut dyn RngCore) -> EdgeSet {
        let n = graph.node_count();
        let mut spanner = graph.empty_edge_set();
        if n == 0 {
            return spanner;
        }

        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);

        // cluster id of each vertex, usize::MAX = unclustered
        let mut cluster = vec![usize::MAX; n];
        let mut next_cluster = 0usize;

        for &start in &order {
            if cluster[start] != usize::MAX {
                continue;
            }
            let cid = next_cluster;
            next_cluster += 1;
            // BFS over unclustered vertices up to `radius` hops, adding tree
            // edges to the spanner.
            cluster[start] = cid;
            let mut queue = VecDeque::new();
            queue.push_back((NodeId::new(start), 0usize));
            while let Some((v, depth)) = queue.pop_front() {
                if depth == self.radius {
                    continue;
                }
                for (u, eid) in graph.incident(v) {
                    if cluster[u.index()] == usize::MAX {
                        cluster[u.index()] = cid;
                        spanner.insert(eid);
                        queue.push_back((u, depth + 1));
                    }
                }
            }
        }

        // One representative edge per pair of adjacent clusters.
        let mut picked: HashMap<(usize, usize), ftspan_graph::EdgeId> = HashMap::new();
        for (eid, e) in graph.edges() {
            let cu = cluster[e.u.index()];
            let cv = cluster[e.v.index()];
            if cu != cv {
                let key = (cu.min(cv), cu.max(cv));
                picked.entry(key).or_insert(eid);
            }
        }
        for (_, eid) in picked {
            spanner.insert(eid);
        }
        spanner
    }

    fn size_bound(&self, n: usize) -> f64 {
        // n - 1 tree edges plus at most one edge per cluster pair; with q
        // clusters that is q(q-1)/2, and q <= n, so the loose worst case is
        // quadratic. Experiments report measured sizes instead.
        (n as f64) + (n as f64) * (n as f64) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn radius_zero_keeps_every_edge() {
        let g = generate::complete(8);
        let alg = ClusterSpanner::with_radius(0);
        assert_eq!(alg.stretch(), 1.0);
        let s = alg.build(&g, &mut rng(1));
        assert_eq!(s.len(), g.edge_count());
    }

    #[test]
    fn for_stretch_maps_to_radius() {
        assert_eq!(ClusterSpanner::for_stretch(1).radius(), 0);
        assert_eq!(ClusterSpanner::for_stretch(5).radius(), 1);
        assert_eq!(ClusterSpanner::for_stretch(9).radius(), 2);
        assert_eq!(ClusterSpanner::for_stretch(7).radius(), 1);
    }

    #[test]
    fn stretch_guarantee_on_unit_graphs() {
        let mut r = rng(2);
        for radius in [1usize, 2] {
            for _ in 0..4 {
                let g = generate::gnp(50, 0.15, generate::WeightKind::Unit, &mut r);
                let alg = ClusterSpanner::with_radius(radius);
                let s = alg.build(&g, &mut r);
                assert!(
                    verify::is_k_spanner(&g, &s, alg.stretch()),
                    "not a {}-spanner with radius {radius}",
                    alg.stretch()
                );
            }
        }
    }

    #[test]
    fn grid_spanner_preserves_connectivity() {
        let g = generate::grid(8, 8);
        let alg = ClusterSpanner::with_radius(2);
        let s = alg.build(&g, &mut rng(3));
        let sub = g.subgraph(&s).unwrap();
        assert!(sub.is_connected());
        assert!(verify::is_k_spanner(&g, &s, alg.stretch()));
    }

    #[test]
    fn handles_empty_graph() {
        let g = Graph::new(0);
        let s = ClusterSpanner::with_radius(1).build(&g, &mut rng(4));
        assert!(s.is_empty());
    }

    #[test]
    fn dense_graph_is_compressed() {
        let g = generate::complete(40);
        let alg = ClusterSpanner::with_radius(1);
        let s = alg.build(&g, &mut rng(5));
        // One cluster swallows everything at radius 1 of the first center in
        // K_n, so the spanner is close to a tree.
        assert!(s.len() < g.edge_count() / 2);
        assert!(verify::is_k_spanner(&g, &s, alg.stretch()));
    }

    #[test]
    fn reports_metadata() {
        let alg = ClusterSpanner::with_radius(3);
        assert_eq!(alg.name(), "cluster");
        assert_eq!(alg.stretch(), 13.0);
        assert!(alg.size_bound(10) > 0.0);
    }
}
