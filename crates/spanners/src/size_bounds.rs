//! Theoretical size bounds of the spanner constructions.
//!
//! The experiments plot measured spanner sizes against these bounds; the
//! conversion theorem's size analysis (`ftspan-core::conversion`) composes
//! them with the `O(r³ log n · f(2n/r))` overhead.

/// Size bound `f(n)` of the greedy `k`-spanner of Althöfer et al.
///
/// For stretch `k` the greedy spanner has girth greater than `k + 1`, hence at
/// most `n^{1 + 2/(k+1)} + n` edges (the Moore-type bound used throughout the
/// paper). The bound is meaningful for `k >= 1`; fractional stretches are
/// rounded down to the nearest odd integer for the exponent.
pub fn greedy_size_bound(n: usize, stretch: f64) -> f64 {
    let n = n as f64;
    let k = stretch.max(1.0);
    n.powf(1.0 + 2.0 / (k + 1.0)) + n
}

/// Expected size bound of the Baswana–Sen construction with parameter `k`
/// (stretch `2k − 1`): `O(k · n^{1 + 1/k})`.
pub fn baswana_sen_size_bound(n: usize, k: usize) -> f64 {
    let n = n as f64;
    let k = k.max(1) as f64;
    k * n.powf(1.0 + 1.0 / k) + n
}

/// Expected size bound of the Thorup–Zwick cluster spanner with hierarchy
/// depth `k` (stretch `2k − 1`): `O(k · n^{1 + 1/k})`.
pub fn thorup_zwick_size_bound(n: usize, k: usize) -> f64 {
    let n = n as f64;
    let k = k.max(1) as f64;
    k * n.powf(1.0 + 1.0 / k) + n
}

/// The size bound of Corollary 2.2 of the paper: applying the conversion
/// theorem to the greedy spanner yields an `r`-fault-tolerant `k`-spanner
/// with `O(r^{2 − 2/(k+1)} · n^{1 + 2/(k+1)} · log n)` edges.
pub fn corollary_2_2_bound(n: usize, r: usize, k: f64) -> f64 {
    let n_f = n as f64;
    let r_f = r.max(1) as f64;
    let exponent = 2.0 / (k + 1.0);
    r_f.powf(2.0 - exponent) * n_f.powf(1.0 + exponent) * n_f.max(2.0).ln()
}

/// The size bound of the previous construction by Chechik, Langberg, Peleg
/// and Roditty (CLPR09) for `(2k−1)`-spanners:
/// `O(r² · k^{r+1} · n^{1+1/k} · log^{1−1/k} n)`.
///
/// The experiments use this to contrast the exponential dependence on `r`
/// with the polynomial dependence of Corollary 2.2.
pub fn clpr09_bound(n: usize, r: usize, k: usize) -> f64 {
    let n_f = n as f64;
    let r_f = r.max(1) as f64;
    let k_f = k.max(1) as f64;
    r_f * r_f
        * k_f.powf(r_f + 1.0)
        * n_f.powf(1.0 + 1.0 / k_f)
        * n_f.max(2.0).ln().powf(1.0 - 1.0 / k_f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_bound_matches_known_exponents() {
        // k = 3  =>  n^{3/2} + n
        let b = greedy_size_bound(100, 3.0);
        assert!((b - (100f64.powf(1.5) + 100.0)).abs() < 1e-9);
        // Larger stretch gives a smaller bound.
        assert!(greedy_size_bound(1000, 5.0) < greedy_size_bound(1000, 3.0));
    }

    #[test]
    fn baswana_sen_bound_behaviour() {
        assert!(baswana_sen_size_bound(1000, 2) > baswana_sen_size_bound(1000, 5) / 5.0);
        assert!(baswana_sen_size_bound(2000, 2) > baswana_sen_size_bound(1000, 2));
    }

    #[test]
    fn corollary_bound_is_polynomial_in_r() {
        let n = 500;
        let b1 = corollary_2_2_bound(n, 1, 3.0);
        let b8 = corollary_2_2_bound(n, 8, 3.0);
        // r^{1.5} growth: going from r=1 to r=8 multiplies by 8^{1.5} ≈ 22.6.
        let ratio = b8 / b1;
        assert!(ratio > 20.0 && ratio < 25.0, "ratio {ratio}");
    }

    #[test]
    fn clpr_bound_is_exponential_in_r() {
        let n = 500;
        let k = 2;
        let b1 = clpr09_bound(n, 1, k);
        let b8 = clpr09_bound(n, 8, k);
        // k^{r+1} growth dominates: 2^9 / 2^2 = 128, times (8/1)^2 = 64.
        assert!(b8 / b1 > 1000.0);
        // And for moderate r it already exceeds the polynomial bound.
        assert!(clpr09_bound(n, 10, 2) > corollary_2_2_bound(n, 10, 3.0));
    }

    #[test]
    fn thorup_zwick_bound_behaviour() {
        assert!(thorup_zwick_size_bound(2000, 2) > thorup_zwick_size_bound(1000, 2));
        // Matches the Baswana-Sen exponent (both are (2k-1)-spanner bounds).
        assert_eq!(
            thorup_zwick_size_bound(500, 3),
            baswana_sen_size_bound(500, 3)
        );
    }

    #[test]
    fn bounds_handle_degenerate_inputs() {
        assert!(greedy_size_bound(0, 3.0) >= 0.0);
        assert!(baswana_sen_size_bound(1, 1) >= 0.0);
        assert!(thorup_zwick_size_bound(1, 1) >= 0.0);
        assert!(corollary_2_2_bound(1, 0, 3.0) >= 0.0);
        assert!(clpr09_bound(1, 0, 1) >= 0.0);
    }
}
