//! The [`SpannerAlgorithm`] trait: the black box consumed by the conversion
//! theorem.

use ftspan_graph::{EdgeSet, Graph};
use rand::RngCore;

/// A `k`-spanner construction.
///
/// Implementations build, for any input graph, a subgraph (given as an
/// [`EdgeSet`] over the input's edges) that is a `k`-spanner of the input for
/// the stretch reported by [`SpannerAlgorithm::stretch`].
///
/// The conversion theorem of the paper (Theorem 2.1, implemented in
/// `ftspan-core::conversion`) accepts any type implementing this trait, runs
/// it on `O(r³ log n)` random vertex-induced subgraphs, and unions the
/// results into an `r`-fault-tolerant `k`-spanner.
///
/// Deterministic algorithms simply ignore the random source.
///
/// Implementations must be [`Sync`]: the conversion constructions in
/// `ftspan-core` share one black-box instance across their worker threads
/// (each iteration carries its own derived random stream, so the shared state
/// is read-only).
pub trait SpannerAlgorithm: Sync {
    /// Short human-readable name for reporting ("greedy", "baswana-sen", …).
    fn name(&self) -> &str;

    /// The stretch `k` this construction guarantees.
    fn stretch(&self) -> f64;

    /// Builds a spanner of `graph`, returning the selected edges.
    ///
    /// The result must be a `self.stretch()`-spanner of `graph`; randomized
    /// constructions may use `rng`.
    fn build(&self, graph: &Graph, rng: &mut dyn RngCore) -> EdgeSet;

    /// The size guarantee `f(n)` of this construction: an upper bound on the
    /// number of edges produced on any `n`-vertex graph (up to the constant
    /// documented by the implementation).
    ///
    /// Used by the experiments to plot measured sizes against the bound the
    /// conversion theorem predicts.
    fn size_bound(&self, n: usize) -> f64;
}

/// Summary statistics about a constructed spanner, collected by experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannerStats {
    /// Number of vertices of the input graph.
    pub nodes: usize,
    /// Number of edges of the input graph.
    pub input_edges: usize,
    /// Number of edges selected by the construction.
    pub spanner_edges: usize,
    /// Total weight of the selected edges.
    pub spanner_weight: f64,
    /// The stretch bound the construction guarantees.
    pub stretch: f64,
}

impl SpannerStats {
    /// Gathers statistics for `spanner` built on `graph` with stretch `k`.
    ///
    /// # Panics
    ///
    /// Panics if `spanner` was built for a different graph.
    pub fn collect(graph: &Graph, spanner: &EdgeSet, stretch: f64) -> Self {
        let weight = graph
            .edge_set_weight(spanner)
            .expect("spanner must belong to the graph");
        SpannerStats {
            nodes: graph.node_count(),
            input_edges: graph.edge_count(),
            spanner_edges: spanner.len(),
            spanner_weight: weight,
            stretch,
        }
    }

    /// Fraction of input edges kept by the spanner (1.0 for an empty input).
    pub fn compression_ratio(&self) -> f64 {
        if self.input_edges == 0 {
            1.0
        } else {
            self.spanner_edges as f64 / self.input_edges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::generate;

    struct KeepAll;

    impl SpannerAlgorithm for KeepAll {
        fn name(&self) -> &str {
            "keep-all"
        }
        fn stretch(&self) -> f64 {
            1.0
        }
        fn build(&self, graph: &Graph, _rng: &mut dyn RngCore) -> EdgeSet {
            graph.full_edge_set()
        }
        fn size_bound(&self, n: usize) -> f64 {
            (n * n) as f64
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let alg: Box<dyn SpannerAlgorithm> = Box::new(KeepAll);
        assert_eq!(alg.name(), "keep-all");
        assert_eq!(alg.stretch(), 1.0);
        assert!(alg.size_bound(10) >= 100.0);
    }

    #[test]
    fn stats_collection() {
        let g = generate::complete(5);
        let full = g.full_edge_set();
        let stats = SpannerStats::collect(&g, &full, 1.0);
        assert_eq!(stats.nodes, 5);
        assert_eq!(stats.input_edges, 10);
        assert_eq!(stats.spanner_edges, 10);
        assert_eq!(stats.spanner_weight, 10.0);
        assert_eq!(stats.compression_ratio(), 1.0);

        let empty = g.empty_edge_set();
        let stats2 = SpannerStats::collect(&g, &empty, 3.0);
        assert_eq!(stats2.compression_ratio(), 0.0);
    }

    #[test]
    fn compression_ratio_of_empty_graph_is_one() {
        let g = Graph::new(3);
        let stats = SpannerStats::collect(&g, &g.full_edge_set(), 3.0);
        assert_eq!(stats.compression_ratio(), 1.0);
    }
}
