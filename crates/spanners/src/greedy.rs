//! The greedy spanner of Althöfer, Das, Dobkin, Joseph and Soares.

use crate::SpannerAlgorithm;
use ftspan_graph::{csr::CsrSubgraph, EdgeSet, Graph};
use rand::RngCore;

/// The greedy `k`-spanner construction (Althöfer et al., Discrete Comput.
/// Geom. 1993).
///
/// Edges are examined in non-decreasing order of weight; an edge `(u, v)` is
/// added to the spanner exactly when the distance between `u` and `v` in the
/// spanner built so far exceeds `k · w(u, v)`.
///
/// For stretch `k = 2t − 1` the resulting spanner has girth greater than
/// `2t`, hence at most `O(n^{1+1/t})` edges — equivalently, for odd
/// `k` the size is `O(n^{1 + 2/(k+1)})`, the bound used by Corollary 2.2 of
/// the paper. The construction is deterministic and works with arbitrary
/// non-negative edge lengths.
///
/// # Example
///
/// ```
/// use ftspan_spanners::{GreedySpanner, SpannerAlgorithm};
/// use ftspan_graph::{generate, verify};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let g = generate::complete(30);
/// let spanner = GreedySpanner::new(3.0).build(&g, &mut rng);
/// assert!(verify::is_k_spanner(&g, &spanner, 3.0));
/// // K_30 has 435 edges; the 3-spanner is much sparser.
/// assert!(spanner.len() < 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedySpanner {
    stretch: f64,
}

impl GreedySpanner {
    /// Creates a greedy spanner construction with the given stretch `k >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `stretch < 1` or is not finite.
    pub fn new(stretch: f64) -> Self {
        assert!(
            stretch.is_finite() && stretch >= 1.0,
            "stretch must be a finite number >= 1, got {stretch}"
        );
        GreedySpanner { stretch }
    }
}

impl SpannerAlgorithm for GreedySpanner {
    fn name(&self) -> &str {
        "greedy"
    }

    fn stretch(&self) -> f64 {
        self.stretch
    }

    fn build(&self, graph: &Graph, _rng: &mut dyn RngCore) -> EdgeSet {
        let mut order: Vec<_> = graph.edges().map(|(id, e)| (e.weight, id)).collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // The partial spanner is the input's CSR with a dead-edge mask that
        // starts all-dead and comes alive edge by edge: bounded Dijkstra then
        // streams packed arrays instead of walking a growing adjacency graph.
        let csr = CsrSubgraph::from_graph(graph);
        let mut not_selected = vec![true; graph.edge_count()];
        let mut spanner = graph.empty_edge_set();
        for (w, id) in order {
            let e = graph.edge(id);
            let budget = self.stretch * w;
            // Bounded-radius Dijkstra inside the partial spanner: if u already
            // reaches v within k·w we can skip the edge.
            let dist = csr
                .sssp_bounded(e.u, None, Some(&not_selected), budget)
                .expect("the CSR view shares the graph's vertex and edge ids");
            if dist[e.v.index()] > budget {
                spanner.insert(id);
                not_selected[id.index()] = false;
            }
        }
        spanner
    }

    fn size_bound(&self, n: usize) -> f64 {
        crate::size_bounds::greedy_size_bound(n, self.stretch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify, NodeId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    #[should_panic]
    fn rejects_stretch_below_one() {
        GreedySpanner::new(0.5);
    }

    #[test]
    fn stretch_one_keeps_all_edges_of_a_metric_graph() {
        // In a unit-weight complete graph every edge is the unique shortest
        // path, so a 1-spanner must keep everything.
        let g = generate::complete(8);
        let s = GreedySpanner::new(1.0).build(&g, &mut rng());
        assert_eq!(s.len(), g.edge_count());
    }

    #[test]
    fn produces_valid_spanners_on_random_graphs() {
        let mut r = rng();
        for k in [3.0, 5.0, 7.0] {
            let g = generate::gnp(
                50,
                0.3,
                generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
                &mut r,
            );
            let s = GreedySpanner::new(k).build(&g, &mut r);
            assert!(
                verify::is_k_spanner(&g, &s, k),
                "greedy output is not a {k}-spanner"
            );
        }
    }

    #[test]
    fn three_spanner_of_complete_graph_is_sparse() {
        let g = generate::complete(40);
        let s = GreedySpanner::new(3.0).build(&g, &mut rng());
        // Girth > 4 implies O(n^{3/2}) edges; for n = 40 that is ~ 253 + 40,
        // far below the 780 edges of K_40.
        assert!(s.len() < 300, "3-spanner too dense: {}", s.len());
        assert!(verify::is_k_spanner(&g, &s, 3.0));
    }

    #[test]
    fn keeps_a_spanning_structure_when_connected() {
        let mut r = rng();
        let g = generate::connected_gnp(30, 0.2, generate::WeightKind::Unit, &mut r);
        let s = GreedySpanner::new(5.0).build(&g, &mut r);
        let sub = g.subgraph(&s).unwrap();
        assert!(sub.is_connected());
    }

    #[test]
    fn respects_edge_weights() {
        // Heavy shortcut edge must be dropped: 0-1-2 path of total weight 2,
        // shortcut (0,2) of weight 10 is within stretch 3 * d(0,2)=2? No:
        // d(0,2) = 2, spanner must give <= 3*2 = 6 <= path already 2, so the
        // shortcut (weight 10) is never needed.
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)]).unwrap();
        let s = GreedySpanner::new(3.0).build(&g, &mut rng());
        assert_eq!(s.len(), 2);
        let kept = g.subgraph(&s).unwrap();
        assert!(!kept.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn greedy_spanner_girth_exceeds_stretch_plus_one() {
        // The size analysis of Althöfer et al. rests on exactly this: on
        // unit-weight graphs the greedy k-spanner contains no cycle of length
        // k + 1 or shorter.
        let mut r = rng();
        for k in [3.0f64, 5.0] {
            let g = generate::gnp(40, 0.3, generate::WeightKind::Unit, &mut r);
            let s = GreedySpanner::new(k).build(&g, &mut r);
            let sub = g.subgraph(&s).unwrap();
            if let Some(girth) = ftspan_graph::stats::girth(&sub) {
                assert!(
                    girth as f64 > k + 1.0,
                    "girth {girth} too small for stretch {k}"
                );
            }
        }
    }

    #[test]
    fn size_bound_is_monotone_in_n() {
        let alg = GreedySpanner::new(3.0);
        assert!(alg.size_bound(100) < alg.size_bound(200));
        assert!(alg.size_bound(10) >= 10.0);
    }
}
