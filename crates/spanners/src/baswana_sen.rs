//! The randomized clustering spanner of Baswana & Sen.

use crate::SpannerAlgorithm;
use ftspan_graph::{EdgeId, EdgeSet, Graph, NodeId};
use rand::Rng;
use rand::RngCore;
use std::collections::{BTreeMap, HashSet};

/// The Baswana–Sen randomized `(2k−1)`-spanner construction.
///
/// The algorithm maintains a clustering of the vertices and runs `k − 1`
/// rounds of cluster sampling (each cluster survives with probability
/// `n^{−1/k}`), followed by a final vertex–cluster joining phase. Its expected
/// size is `O(k · n^{1+1/k})` and it works with arbitrary non-negative edge
/// lengths.
///
/// In this workspace it serves as an alternative black box for the conversion
/// theorem (Theorem 2.1), exercising the theorem's claim that *any* spanner
/// construction can be made fault tolerant.
///
/// # Example
///
/// ```
/// use ftspan_spanners::{BaswanaSenSpanner, SpannerAlgorithm};
/// use ftspan_graph::{generate, verify};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let g = generate::gnp(50, 0.4, generate::WeightKind::Unit, &mut rng);
/// let alg = BaswanaSenSpanner::new(2); // stretch 2*2 - 1 = 3
/// let spanner = alg.build(&g, &mut rng);
/// assert!(verify::is_k_spanner(&g, &spanner, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaswanaSenSpanner {
    k: usize,
}

impl BaswanaSenSpanner {
    /// Creates the construction with parameter `k >= 1`; the produced spanner
    /// has stretch `2k − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "Baswana-Sen parameter k must be at least 1");
        BaswanaSenSpanner { k }
    }

    /// The clustering parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimum-weight alive edge from `v` to each adjacent cluster.
    ///
    /// Keyed by a `BTreeMap` so iteration (and therefore tie-breaking among
    /// equal-weight edges) is ordered by cluster id: the construction must be
    /// a pure function of `(graph, rng state)` for the workspace's
    /// determinism guarantees, which rules out hash-ordered traversal.
    fn neighbor_clusters(
        graph: &Graph,
        alive: &[bool],
        cluster: &[Option<usize>],
        v: NodeId,
    ) -> BTreeMap<usize, (f64, EdgeId)> {
        let mut best: BTreeMap<usize, (f64, EdgeId)> = BTreeMap::new();
        for (u, eid) in graph.incident(v) {
            if !alive[eid.index()] {
                continue;
            }
            if let Some(c) = cluster[u.index()] {
                let w = graph.edge(eid).weight;
                best.entry(c)
                    .and_modify(|entry| {
                        if w < entry.0 {
                            *entry = (w, eid);
                        }
                    })
                    .or_insert((w, eid));
            }
        }
        best
    }

    /// Discards every alive edge between `v` and the cluster `c`.
    fn discard_edges_to_cluster(
        graph: &Graph,
        alive: &mut [bool],
        cluster: &[Option<usize>],
        v: NodeId,
        c: usize,
    ) {
        for (u, eid) in graph.incident(v) {
            if alive[eid.index()] && cluster[u.index()] == Some(c) {
                alive[eid.index()] = false;
            }
        }
    }
}

impl SpannerAlgorithm for BaswanaSenSpanner {
    fn name(&self) -> &str {
        "baswana-sen"
    }

    fn stretch(&self) -> f64 {
        (2 * self.k - 1) as f64
    }

    fn build(&self, graph: &Graph, rng: &mut dyn RngCore) -> EdgeSet {
        let n = graph.node_count();
        let mut spanner = graph.empty_edge_set();
        if n == 0 || graph.edge_count() == 0 {
            return spanner;
        }
        let p = (n as f64).powf(-1.0 / self.k as f64);

        let mut alive = vec![true; graph.edge_count()];
        // cluster[v] = Some(center) while v is clustered, None once discarded.
        let mut cluster: Vec<Option<usize>> = (0..n).map(Some).collect();

        // Phase 1: k - 1 rounds of cluster sampling.
        for _round in 0..self.k.saturating_sub(1) {
            // Which cluster centers survive this round? The coin flips are
            // assigned to centers in ascending id order so the sampled set is
            // a pure function of the rng state (hash order is not).
            let mut centers: Vec<usize> = cluster.iter().flatten().copied().collect();
            centers.sort_unstable();
            centers.dedup();
            let sampled: HashSet<usize> = centers
                .into_iter()
                .filter(|_| rng.gen::<f64>() < p)
                .collect();

            let mut next_cluster: Vec<Option<usize>> = vec![None; n];
            // Vertices of sampled clusters stay put.
            for v in 0..n {
                if let Some(c) = cluster[v] {
                    if sampled.contains(&c) {
                        next_cluster[v] = Some(c);
                    }
                }
            }

            for v_idx in 0..n {
                let v = NodeId::new(v_idx);
                let Some(own) = cluster[v_idx] else { continue };
                if sampled.contains(&own) {
                    continue;
                }
                let neighbors = Self::neighbor_clusters(graph, &alive, &cluster, v);
                // Closest sampled neighbor cluster, if any.
                let best_sampled = neighbors
                    .iter()
                    .filter(|(c, _)| sampled.contains(c))
                    .min_by(|a, b| {
                        a.1 .0
                            .partial_cmp(&b.1 .0)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(&c, &(w, e))| (c, w, e));

                match best_sampled {
                    None => {
                        // No sampled neighbor: buy the cheapest edge to every
                        // neighboring cluster and drop out of the clustering.
                        for (&c, &(_w, e)) in &neighbors {
                            spanner.insert(e);
                            Self::discard_edges_to_cluster(graph, &mut alive, &cluster, v, c);
                        }
                        next_cluster[v_idx] = None;
                    }
                    Some((c_star, w_star, e_star)) => {
                        spanner.insert(e_star);
                        next_cluster[v_idx] = Some(c_star);
                        Self::discard_edges_to_cluster(graph, &mut alive, &cluster, v, c_star);
                        for (&c, &(w, e)) in &neighbors {
                            if c != c_star && w < w_star {
                                spanner.insert(e);
                                Self::discard_edges_to_cluster(graph, &mut alive, &cluster, v, c);
                            }
                        }
                    }
                }
            }

            // Remove edges that became internal to a cluster.
            for (eid, e) in graph.edges() {
                if alive[eid.index()] {
                    if let (Some(cu), Some(cv)) =
                        (next_cluster[e.u.index()], next_cluster[e.v.index()])
                    {
                        if cu == cv {
                            alive[eid.index()] = false;
                        }
                    }
                }
            }

            cluster = next_cluster;
        }

        // Phase 2: every vertex buys the cheapest edge to each remaining
        // adjacent cluster.
        for v_idx in 0..n {
            let v = NodeId::new(v_idx);
            let neighbors = Self::neighbor_clusters(graph, &alive, &cluster, v);
            for (&c, &(_w, e)) in &neighbors {
                spanner.insert(e);
                Self::discard_edges_to_cluster(graph, &mut alive, &cluster, v, c);
            }
        }

        spanner
    }

    fn size_bound(&self, n: usize) -> f64 {
        crate::size_bounds::baswana_sen_size_bound(n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    #[should_panic]
    fn rejects_k_zero() {
        BaswanaSenSpanner::new(0);
    }

    #[test]
    fn k_one_keeps_every_edge() {
        // Stretch 1 requires every edge of a unit-weight complete graph.
        let g = generate::complete(7);
        let s = BaswanaSenSpanner::new(1).build(&g, &mut rng(1));
        assert_eq!(s.len(), g.edge_count());
    }

    #[test]
    fn stretch_guarantee_on_random_graphs() {
        let mut r = rng(2);
        for k in [2usize, 3] {
            for trial in 0..5 {
                let g = generate::gnp(
                    40,
                    0.3,
                    generate::WeightKind::Uniform { min: 1.0, max: 5.0 },
                    &mut r,
                );
                let alg = BaswanaSenSpanner::new(k);
                let s = alg.build(&g, &mut r);
                assert!(
                    verify::is_k_spanner(&g, &s, alg.stretch()),
                    "trial {trial}: not a {}-spanner",
                    alg.stretch()
                );
            }
        }
    }

    #[test]
    fn stretch_guarantee_on_dense_unit_graph() {
        let mut r = rng(3);
        let g = generate::complete(30);
        let alg = BaswanaSenSpanner::new(2);
        let s = alg.build(&g, &mut r);
        assert!(verify::is_k_spanner(&g, &s, 3.0));
        // Expected size O(k n^{1.5}) ≈ 2 * 164; leave generous slack but stay
        // well below the 435 input edges.
        assert!(s.len() < 420, "spanner too dense: {}", s.len());
    }

    #[test]
    fn handles_empty_and_tiny_graphs() {
        let alg = BaswanaSenSpanner::new(3);
        let empty = Graph::new(0);
        assert_eq!(alg.build(&empty, &mut rng(4)).len(), 0);
        let isolated = Graph::new(5);
        assert_eq!(alg.build(&isolated, &mut rng(5)).len(), 0);
        let mut two = Graph::new(2);
        two.add_edge(NodeId::new(0), NodeId::new(1), 2.0).unwrap();
        let s = alg.build(&two, &mut rng(6));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn size_bound_grows_with_k_and_n() {
        let a2 = BaswanaSenSpanner::new(2);
        let a3 = BaswanaSenSpanner::new(3);
        assert!(a2.size_bound(1000) > a3.size_bound(1000) / 3.0);
        assert!(a2.size_bound(2000) > a2.size_bound(1000));
    }

    #[test]
    fn reports_name_and_stretch() {
        let alg = BaswanaSenSpanner::new(4);
        assert_eq!(alg.name(), "baswana-sen");
        assert_eq!(alg.stretch(), 7.0);
        assert_eq!(alg.k(), 4);
    }
}
