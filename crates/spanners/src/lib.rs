//! Classic (non-fault-tolerant) spanner constructions.
//!
//! The conversion theorem of Dinitz & Krauthgamer (Theorem 2.1) is a *black
//! box* transformation: it takes **any** algorithm that builds a `k`-spanner
//! with `f(n)` edges and produces an `r`-fault-tolerant `k`-spanner with
//! `O(r³ log n · f(2n/r))` edges. This crate provides the black boxes:
//!
//! * [`GreedySpanner`] — the greedy construction of Althöfer et al., size
//!   `O(n^{1+2/(k+1)})` for stretch `k = 2t+1`; this is the instantiation used
//!   by Corollary 2.2.
//! * [`BaswanaSenSpanner`] — the randomized clustering construction of
//!   Baswana & Sen, expected size `O(k n^{1+1/k})` for stretch `2k−1`.
//! * [`ThorupZwickSpanner`] — the cluster spanner underlying the
//!   Thorup–Zwick distance oracles, the construction the CLPR09 baseline is
//!   built on; expected size `O(k n^{1+1/k})` for stretch `2k−1`.
//! * [`ClusterSpanner`] — a simple ball-carving cluster spanner that is easy
//!   to run distributedly; it stands in for the Derbel–Gavoille–Peleg–Viennot
//!   construction used by Corollary 2.4 (see DESIGN.md for the substitution).
//! * [`SpannerAlgorithm`] — the trait all of them implement, and which
//!   `ftspan-core::conversion` consumes.
//!
//! # Example
//!
//! ```
//! use ftspan_spanners::{GreedySpanner, SpannerAlgorithm};
//! use ftspan_graph::{generate, verify};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = generate::gnp(60, 0.4, generate::WeightKind::Unit, &mut rng);
//! let spanner = GreedySpanner::new(3.0).build(&g, &mut rng);
//! assert!(verify::is_k_spanner(&g, &spanner, 3.0));
//! assert!(spanner.len() <= g.edge_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithm;
mod baswana_sen;
mod cluster;
mod greedy;
mod kinds;
pub mod size_bounds;
mod thorup_zwick;

pub use algorithm::{SpannerAlgorithm, SpannerStats};
pub use baswana_sen::BaswanaSenSpanner;
pub use cluster::ClusterSpanner;
pub use greedy::GreedySpanner;
pub use kinds::BlackBoxKind;
pub use thorup_zwick::ThorupZwickSpanner;
