//! The Thorup–Zwick cluster spanner.
//!
//! Thorup and Zwick's approximate distance oracles (J. ACM 2005) are built
//! on a sampled hierarchy of vertex sets; the union of the shortest-path
//! trees of the resulting *clusters* is a `(2k − 1)`-spanner with expected
//! size `O(k · n^{1 + 1/k})`. This is the construction that the CLPR09
//! fault-tolerant spanner (the baseline the paper improves on) applies to
//! every fault set, so having it as a [`SpannerAlgorithm`] black box lets the
//! experiments run both the baseline and the paper's conversion on the same
//! underlying construction.

use crate::SpannerAlgorithm;
use ftspan_graph::{EdgeId, EdgeSet, Graph, NodeId};
use rand::{Rng, RngCore};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The Thorup–Zwick `(2k − 1)`-spanner construction.
///
/// A hierarchy `V = A_0 ⊇ A_1 ⊇ … ⊇ A_k = ∅` is sampled by keeping each
/// vertex of `A_i` in `A_{i+1}` independently with probability `n^{-1/k}`.
/// For every center `w ∈ A_i \ A_{i+1}` the *cluster* of `w` is
/// `C(w) = { v : d(w, v) < d(A_{i+1}, v) }`, and the spanner is the union of
/// the shortest-path trees of all clusters, rooted at their centers.
///
/// * Stretch: `2k − 1` (with certainty — the stretch argument does not
///   depend on the random sampling).
/// * Size: `O(k · n^{1 + 1/k})` in expectation.
///
/// # Example
///
/// ```
/// use ftspan_spanners::{SpannerAlgorithm, ThorupZwickSpanner};
/// use ftspan_graph::{generate, verify};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let g = generate::gnp(40, 0.4, generate::WeightKind::Unit, &mut rng);
/// let alg = ThorupZwickSpanner::new(2); // stretch 3
/// let spanner = alg.build(&g, &mut rng);
/// assert!(verify::is_k_spanner(&g, &spanner, alg.stretch()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThorupZwickSpanner {
    k: usize,
}

impl ThorupZwickSpanner {
    /// Creates the construction with hierarchy depth `k >= 1` (stretch
    /// `2k − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(
            k >= 1,
            "the Thorup-Zwick hierarchy needs at least one level"
        );
        ThorupZwickSpanner { k }
    }

    /// The hierarchy depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Max-heap entry ordered by ascending distance (same trick as the
/// shortest-path module: reverse the comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Multi-source Dijkstra: distance from every vertex to its nearest source.
/// Returns `INFINITY` entries when `sources` is empty.
fn multi_source_distances(graph: &Graph, sources: &[bool]) -> Vec<f64> {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    for v in 0..n {
        if sources[v] {
            dist[v] = 0.0;
            heap.push(HeapEntry {
                dist: 0.0,
                node: NodeId::new(v),
            });
        }
    }
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > dist[v.index()] {
            continue;
        }
        for (u, eid) in graph.incident(v) {
            let nd = d + graph.edge(eid).weight;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(HeapEntry { dist: nd, node: u });
            }
        }
    }
    dist
}

/// Dijkstra from `center`, restricted to the cluster
/// `{ v : d(center, v) < bound[v] }`; inserts the tree edge of every cluster
/// member into `spanner`.
fn grow_cluster(graph: &Graph, center: NodeId, bound: &[f64], spanner: &mut EdgeSet) {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut via: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[center.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: center,
    });
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > dist[v.index()] {
            continue;
        }
        if let Some(e) = via[v.index()] {
            spanner.insert(e);
        }
        for (u, eid) in graph.incident(v) {
            let nd = d + graph.edge(eid).weight;
            // The defining condition of a Thorup-Zwick cluster: only grow
            // into u while the distance from the center stays strictly below
            // u's distance to the next level of the hierarchy.
            if nd < dist[u.index()] && nd < bound[u.index()] {
                dist[u.index()] = nd;
                via[u.index()] = Some(eid);
                heap.push(HeapEntry { dist: nd, node: u });
            }
        }
    }
}

impl SpannerAlgorithm for ThorupZwickSpanner {
    fn name(&self) -> &str {
        "thorup-zwick"
    }

    fn stretch(&self) -> f64 {
        (2 * self.k - 1) as f64
    }

    fn build(&self, graph: &Graph, rng: &mut dyn RngCore) -> EdgeSet {
        let n = graph.node_count();
        let mut spanner = graph.empty_edge_set();
        if n == 0 || graph.edge_count() == 0 {
            return spanner;
        }
        let p = (n as f64).powf(-1.0 / self.k as f64);

        // Sample the hierarchy A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}; A_k = ∅.
        let mut levels: Vec<Vec<bool>> = Vec::with_capacity(self.k + 1);
        levels.push(vec![true; n]);
        for i in 1..self.k {
            let prev = &levels[i - 1];
            let next: Vec<bool> = prev
                .iter()
                .map(|&in_prev| in_prev && rng.gen::<f64>() < p)
                .collect();
            levels.push(next);
        }
        levels.push(vec![false; n]);

        for i in 0..self.k {
            // Distance of every vertex to the next level A_{i+1}
            // (INFINITY at the top level, so the last clusters are whole
            // shortest-path trees — exactly the Thorup-Zwick definition).
            let bound = multi_source_distances(graph, &levels[i + 1]);
            for (w, (&in_level, &in_next)) in levels[i].iter().zip(levels[i + 1].iter()).enumerate()
            {
                if in_level && !in_next {
                    grow_cluster(graph, NodeId::new(w), &bound, &mut spanner);
                }
            }
        }
        spanner
    }

    fn size_bound(&self, n: usize) -> f64 {
        crate::size_bounds::thorup_zwick_size_bound(n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generate, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(2025)
    }

    #[test]
    #[should_panic]
    fn rejects_zero_levels() {
        ThorupZwickSpanner::new(0);
    }

    #[test]
    fn k_one_keeps_every_edge_on_shortest_paths() {
        // With k = 1 the only level is V itself and every vertex is a
        // cluster center with an unbounded cluster: the spanner contains a
        // full shortest-path tree per vertex, hence stretch 1.
        let g = generate::complete(10);
        let alg = ThorupZwickSpanner::new(1);
        assert_eq!(alg.stretch(), 1.0);
        let s = alg.build(&g, &mut rng());
        assert!(verify::is_k_spanner(&g, &s, 1.0));
    }

    #[test]
    fn stretch_holds_on_random_unit_graphs() {
        let mut r = rng();
        for k in [2usize, 3] {
            let alg = ThorupZwickSpanner::new(k);
            for seed in 0..3u64 {
                let mut gr = ChaCha8Rng::seed_from_u64(seed);
                let g = generate::gnp(45, 0.25, generate::WeightKind::Unit, &mut gr);
                let s = alg.build(&g, &mut r);
                assert!(
                    verify::is_k_spanner(&g, &s, alg.stretch()),
                    "not a {}-spanner (k = {k}, seed = {seed})",
                    alg.stretch()
                );
            }
        }
    }

    #[test]
    fn stretch_holds_on_weighted_graphs() {
        let mut r = rng();
        let alg = ThorupZwickSpanner::new(2);
        let g = generate::gnp(
            40,
            0.3,
            generate::WeightKind::Uniform { min: 0.5, max: 5.0 },
            &mut r,
        );
        let s = alg.build(&g, &mut r);
        assert!(verify::is_k_spanner(&g, &s, 3.0));
    }

    #[test]
    fn three_spanner_of_complete_graph_is_sparse() {
        let g = generate::complete(50);
        let alg = ThorupZwickSpanner::new(2);
        let mut sizes = Vec::new();
        let mut r = rng();
        for _ in 0..5 {
            sizes.push(alg.build(&g, &mut r).len());
        }
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        // K_50 has 1225 edges; expected size is O(k n^{1.5}) ≈ 700, so the
        // average over a few runs stays clearly below the input size.
        assert!(avg < 1100.0, "spanner too dense on average: {avg}");
        assert!(verify::is_k_spanner(&g, &alg.build(&g, &mut r), 3.0));
    }

    #[test]
    fn handles_trivial_graphs() {
        let alg = ThorupZwickSpanner::new(2);
        assert!(alg.build(&Graph::new(0), &mut rng()).is_empty());
        assert!(alg.build(&Graph::new(5), &mut rng()).is_empty());
    }

    #[test]
    fn size_bound_grows_with_n_and_k() {
        let a = ThorupZwickSpanner::new(2);
        let b = ThorupZwickSpanner::new(3);
        assert!(a.size_bound(200) > a.size_bound(100));
        // Larger k gives asymptotically fewer edges per level but more levels;
        // the bound stays finite and positive.
        assert!(b.size_bound(100) > 0.0);
        assert_eq!(a.name(), "thorup-zwick");
        assert_eq!(a.k(), 2);
    }
}
