//! End-to-end smoke test for the dynamic-artifact path — the second half of
//! the CI serve-smoke job:
//!
//! ```text
//! delta_smoke STORE_DIR ADDR [--artifact NAME] [--shutdown]
//! ```
//!
//! Connects to a running `ftspan_serve --dynamic` instance serving
//! `STORE_DIR`. First asserts the promoted artifact is **invisible until
//! the first delta**: a mixed query battery against the server must answer
//! bit-identically to the flat stored artifact loaded locally. Then it
//! pushes a deterministic edge-delta batch at `NAME` (default `mesh`)
//! through `ApplyDeltas` and asserts the warm-swapped artifact answers the
//! battery **identically** to a from-scratch `DynamicArtifact::build` on
//! the post-delta graph computed locally — the paper-level repair
//! invariant, checked over a real socket. Any protocol error, typed
//! rejection, or answer mismatch panics (non-zero exit).
//!
//! With `--shutdown`, asks the server to drain and exit afterwards.

use fault_tolerant_spanners::prelude::*;
use fault_tolerant_spanners::{ArtifactStore, BuildRecipe, DeltaLog, DynamicArtifact, EdgeDelta};
use ftspan_net::Client;

fn main() {
    let mut positional = Vec::new();
    let mut artifact_name = "mesh".to_string();
    let mut shutdown = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--artifact" => {
                artifact_name = it.next().expect("--artifact requires a value");
            }
            "--shutdown" => shutdown = true,
            other => positional.push(other.to_string()),
        }
    }
    let [store_dir, addr] = positional.as_slice() else {
        panic!("usage: delta_smoke STORE_DIR ADDR [--artifact NAME] [--shutdown]");
    };

    // Re-derive the exact recipe the server's `--dynamic` promotion used:
    // the one recorded in the stored artifact's own provenance tag.
    let store = ArtifactStore::open(store_dir).expect("store opens");
    let flat = store.load(&artifact_name).expect("stored artifact loads");
    let base = flat.source_graph().clone();
    let recipe = BuildRecipe::from_tagged_provenance(flat.algorithm(), flat.provenance())
        .expect("the stored artifact records its build recipe");

    // A deterministic churn batch: drop the first edge, reweight the last,
    // and insert the lexicographically first absent pair.
    let n = base.node_count();
    let (_, first) = base.edges().next().expect("graph has edges");
    let (_, last) = base.edges().last().expect("graph has edges");
    let absent = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .find(|&(u, v)| {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            base.find_edge(u, v).is_none() && !(first.u == u && first.v == v)
        })
        .expect("the demo graphs are not complete");
    let deltas = vec![
        EdgeDelta::Delete {
            u: first.u,
            v: first.v,
        },
        EdgeDelta::Reweight {
            u: last.u,
            v: last.v,
            weight: last.weight + 0.5,
        },
        EdgeDelta::Insert {
            u: NodeId::new(absent.0),
            v: NodeId::new(absent.1),
            weight: 1.25,
        },
    ];

    // A mixed battery: plain and fault-scoped distances, paths and
    // certificates, plus one over-budget scope that must fail identically.
    let battery = |n: usize| {
        let mut queries = Vec::new();
        for q in 0..60usize {
            let u = NodeId::new((q * 7 + 1) % n);
            let v = NodeId::new((q * 11 + 3) % n);
            let scope = if q % 3 == 0 {
                vec![NodeId::new((q * 5 + 2) % n)]
            } else {
                vec![]
            };
            queries.push(match q % 4 {
                0 => Query::certificate(&artifact_name, scope, u, v),
                1 => Query::path(&artifact_name, scope, u, v),
                _ => Query::distance(&artifact_name, scope, u, v),
            });
        }
        queries.push(Query::distance(
            &artifact_name,
            (0..n.min(8)).map(NodeId::new).collect(),
            NodeId::new(0),
            NodeId::new(1),
        ));
        queries
    };

    let mut client = Client::connect(addr).expect("server is reachable");

    // Before any delta, promotion must be invisible: the server's answers
    // must be bit-identical to the flat stored artifact served locally.
    let queries = battery(n);
    let mut flat_engine = Engine::new();
    flat_engine.register(&artifact_name, flat.clone());
    let expected_flat = flat_engine.run_batch(&queries);
    let got_flat = client
        .run_batch(&queries)
        .expect("transport succeeds")
        .expect_results()
        .expect("batch admitted");
    assert_eq!(
        got_flat, expected_flat,
        "promoted artifact answers differ from the stored flat artifact before any delta"
    );
    println!(
        "delta-smoke: {} pre-delta answers identical to the stored flat artifact",
        queries.len()
    );

    let info = client
        .apply_deltas(&artifact_name, &deltas)
        .expect("transport succeeds")
        .expect("deltas apply cleanly");
    assert_eq!(info.applied, deltas.len() as u64, "all deltas applied");
    assert!(info.version >= 2, "the served version advanced");

    // The local differential: replay the same deltas on the base graph and
    // build from scratch with the same recipe.
    let mut log = DeltaLog::new();
    for delta in &deltas {
        log.append(delta.clone());
    }
    let post = log.replay(&base).expect("deltas replay on the base graph");
    let fresh = DynamicArtifact::build(&post, recipe).expect("fresh build succeeds");
    let mut expected_engine = Engine::new();
    expected_engine.register_dynamic(&artifact_name, fresh);

    let queries = battery(n);
    let expected = expected_engine.run_batch(&queries);
    let got = client
        .run_batch(&queries)
        .expect("transport succeeds")
        .expect_results()
        .expect("batch admitted");
    assert_eq!(
        got, expected,
        "post-swap answers differ from a fresh rebuild on the post-delta graph"
    );

    let stats = client.stats().expect("stats succeed");
    assert!(stats.engine.swaps >= 1, "the swap counter moved");
    assert_eq!(
        stats.engine.deltas_applied,
        deltas.len() as u64,
        "the delta counter moved"
    );

    println!(
        "delta-smoke OK: {} deltas -> version {} ({}), {} answers identical to fresh rebuild",
        info.applied,
        info.version,
        if info.rebuilt { "rebuilt" } else { "patched" },
        queries.len(),
    );

    if shutdown {
        client
            .shutdown_server()
            .expect("server acknowledges shutdown");
    }
}
