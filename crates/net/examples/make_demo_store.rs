//! Builds a small seeded artifact store on disk — the input `ftspan_serve`
//! loads. Used by the CI server-smoke job and handy for trying the server
//! locally:
//!
//! ```text
//! cargo run --release -p ftspan-net --example make_demo_store -- /tmp/ftspan-store
//! cargo run --release -p ftspan-net --bin ftspan_serve -- --store /tmp/ftspan-store --print-port
//! ```

use fault_tolerant_spanners::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .expect("usage: make_demo_store DIR [SEED]");
    let seed: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("SEED must be a u64"))
        .unwrap_or(2011);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let store = ArtifactStore::open(&dir).expect("store directory is creatable");

    let g = generate::connected_gnp(40, 0.25, generate::WeightKind::Unit, &mut rng);
    let backbone = FtSpannerBuilder::new("conversion")
        .faults(2)
        .build_artifact(&g)
        .expect("backbone builds");
    store.save("backbone", &backbone).expect("backbone saves");

    let h = generate::connected_gnp(
        24,
        0.35,
        generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
        &mut rng,
    );
    let mesh = FtSpannerBuilder::new("conversion")
        .faults(1)
        .build_artifact(&h)
        .expect("mesh builds");
    store.save("mesh", &mesh).expect("mesh saves");

    // A sharded artifact: partitioned build, per-shard .ftspan files plus a
    // manifest, served through the scatter-gather path.
    let wide = generate::connected_gnp(60, 0.15, generate::WeightKind::Unit, &mut rng);
    let builder = FtSpannerBuilder::new("conversion").faults(1);
    let config = partition::PartitionConfig::new(3).with_seed(seed);
    let grid_net =
        ShardedArtifact::build(&wide, &builder, &config).expect("sharded artifact builds");
    store.save_sharded("wide", &grid_net).expect("wide saves");

    println!(
        "wrote {} .ftspan files and {} shard manifest(s) to {}",
        store.names().expect("store lists").len(),
        store.sharded_names().expect("store lists").len(),
        dir
    );
}
