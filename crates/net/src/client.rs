//! A blocking client for the framed protocol.

use crate::error::NetError;
use crate::protocol::{ArtifactInfo, DeltaApplyInfo, Request, Response, ServerStats};
use fault_tolerant_spanners::core::CoreError;
use fault_tolerant_spanners::{EdgeDelta, Query, QueryOutcome};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The server's answer to a batch: results, or a typed admission-control
/// rejection the caller must decide how to handle (retry, back off, fail).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchReply {
    /// One result per query, in input order — exactly what
    /// `Engine::run_batch` would have returned in-process.
    Results(Vec<Result<QueryOutcome, CoreError>>),
    /// The server's pending-batch queue was full; the batch did not run.
    Overloaded,
    /// The server is shutting down; the batch did not run.
    ShuttingDown,
}

impl BatchReply {
    /// Unwraps the results, turning `Overloaded` / `ShuttingDown` into a
    /// typed [`NetError::Io`] for callers that treat rejection as failure.
    pub fn expect_results(self) -> Result<Vec<Result<QueryOutcome, CoreError>>, NetError> {
        match self {
            BatchReply::Results(results) => Ok(results),
            BatchReply::Overloaded => Err(NetError::Io {
                message: "server overloaded: batch was rejected by admission control".into(),
            }),
            BatchReply::ShuttingDown => Err(NetError::Io {
                message: "server is shutting down: batch was not executed".into(),
            }),
        }
    }

    /// `true` for [`BatchReply::Overloaded`].
    pub fn is_overloaded(&self) -> bool {
        matches!(self, BatchReply::Overloaded)
    }
}

/// A blocking connection to an `ftspan_serve` server.
///
/// One request is in flight at a time (the protocol is strict
/// request/response per connection); open several clients for concurrency.
///
/// # Example
///
/// ```no_run
/// use fault_tolerant_spanners::prelude::*;
/// use ftspan_net::Client;
///
/// let mut client = Client::connect("127.0.0.1:7401").unwrap();
/// for artifact in client.artifacts().unwrap() {
///     println!("{}: {} nodes", artifact.name, artifact.nodes);
/// }
/// let reply = client
///     .run_batch(&[Query::distance("backbone", vec![], NodeId::new(0), NodeId::new(5))])
///     .unwrap();
/// ```
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with a connect timeout, and applies the same duration as
    /// the read and write timeout of the resulting connection.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client, NetError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> Result<Client, NetError> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        request.write_to(&mut self.writer)?;
        Response::read_from(&mut self.reader)
    }

    /// Executes a query batch on the server.
    pub fn run_batch(&mut self, queries: &[Query]) -> Result<BatchReply, NetError> {
        match self.call(&Request::RunBatch(queries.to_vec()))? {
            Response::Batch(results) => Ok(BatchReply::Results(results)),
            Response::Overloaded => Ok(BatchReply::Overloaded),
            Response::ShuttingDown => Ok(BatchReply::ShuttingDown),
            other => Err(unexpected(&other, "batch")),
        }
    }

    /// Lists the artifacts the server is holding.
    pub fn artifacts(&mut self) -> Result<Vec<ArtifactInfo>, NetError> {
        match self.call(&Request::ListArtifacts)? {
            Response::Artifacts(infos) => Ok(infos),
            other => Err(unexpected(&other, "artifact list")),
        }
    }

    /// Snapshots the server's serving counters.
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other, "stats")),
        }
    }

    /// Applies an edge-delta batch to a dynamic artifact on the server and
    /// waits for the warm swap to complete. The inner `Result` is the same
    /// typed outcome `Engine::apply_deltas` returns in-process (unknown or
    /// non-dynamic artifact, invalid delta, concurrent-change retry); the
    /// outer error is transport-level. A server mid-shutdown answers
    /// `ShuttingDown`, surfaced here as a typed [`NetError::Io`].
    pub fn apply_deltas(
        &mut self,
        artifact: &str,
        deltas: &[EdgeDelta],
    ) -> Result<Result<DeltaApplyInfo, CoreError>, NetError> {
        let request = Request::ApplyDeltas {
            artifact: artifact.to_string(),
            deltas: deltas.to_vec(),
        };
        match self.call(&request)? {
            Response::DeltasApplied(result) => Ok(result),
            Response::ShuttingDown => Err(NetError::Io {
                message: "server is shutting down: deltas were not applied".into(),
            }),
            other => Err(unexpected(&other, "deltas-applied")),
        }
    }

    /// Asks the server to shut down gracefully; returns once the server has
    /// acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other, "shutdown acknowledgement")),
        }
    }
}

fn unexpected(response: &Response, wanted: &str) -> NetError {
    NetError::Malformed {
        message: format!("expected a {wanted} response, got {response:?}"),
    }
}
