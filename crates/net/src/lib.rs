//! Network serving for fault-tolerant spanner engines.
//!
//! This crate puts a TCP front door on the in-process serving
//! [`Engine`](fault_tolerant_spanners::Engine):
//!
//! * [`protocol`] — a versioned, length-prefixed framed wire protocol with
//!   typed decode errors and allocation-bomb guards (the same discipline as
//!   the `.ftspan` artifact format);
//! * [`server`] — a worker-pool server with a bounded pending-batch queue,
//!   typed [`Overloaded`](protocol::Response::Overloaded) backpressure,
//!   per-connection timeouts and graceful drain on shutdown;
//! * [`client`] — a blocking client speaking the same frames.
//!
//! The server is **observationally transparent** over the engine: a batch
//! sent through a [`Client`] returns results identical to calling
//! [`Engine::run_batch`](fault_tolerant_spanners::Engine::run_batch)
//! in-process — including typed per-query errors, which round-trip the wire
//! losslessly — at any worker count and any queue capacity.
//!
//! The `ftspan_serve` binary wraps [`Server`] around an artifact-store
//! directory; the `ftspan_loadgen` binary (in the bench crate) drives a
//! server with seeded open-loop traffic and reports latency histograms.
//!
//! Everything is dependency-free `std`: threads, `TcpListener`, a
//! `Mutex<VecDeque>` + condvar queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;

pub use client::{BatchReply, Client};
pub use error::NetError;
pub use protocol::{
    ArtifactInfo, DeltaApplyInfo, Request, Response, ServerStats, MAX_FRAME_LEN, PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
};
pub use server::{RunningServer, Server, ServerConfig, ServerHandle};
