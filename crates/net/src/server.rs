//! The TCP server: a worker pool with admission control and backpressure
//! over an [`Engine`].
//!
//! # Architecture
//!
//! One acceptor thread polls a non-blocking listener. Each accepted
//! connection gets its own thread that reads request frames and answers
//! them. [`Request::RunBatch`] frames do
//! **not** run on the connection thread: they are admitted into a bounded
//! pending-batch queue and executed by a fixed worker pool, so one slow
//! batch cannot starve protocol handling and the server's concurrency is
//! capped regardless of how many clients connect.
//!
//! Admission control is non-blocking: when the queue is full the batch is
//! answered immediately with a typed
//! [`Response::Overloaded`] frame —
//! never a hang, never a dropped connection. The client owns the retry
//! policy.
//!
//! # Graceful shutdown
//!
//! [`ServerHandle::request_shutdown`] (or a
//! [`Request::Shutdown`] frame) drains
//! rather than drops: the acceptor stops accepting, newly arriving batches
//! are answered `ShuttingDown`, queued and in-flight batches run to
//! completion and their responses are written, and only then are connection
//! read-halves shut down to unblock idle readers. Responses for drained
//! batches are never lost because only the **read** half of each connection
//! is closed.

use crate::error::NetError;
use crate::protocol::{ArtifactInfo, DeltaApplyInfo, Request, Response, ServerStats};
use fault_tolerant_spanners::core::CoreError;
use fault_tolerant_spanners::{EdgeDelta, Engine, Query, QueryOutcome, RebuildPolicy};
use std::collections::VecDeque;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Worker threads executing admitted batches (clamped to at least 1).
    /// Defaults to one per available CPU.
    pub workers: usize,
    /// Capacity of the pending-batch queue (clamped to at least 1). A batch
    /// arriving while the queue holds this many is answered `Overloaded`.
    pub queue_capacity: usize,
    /// Per-connection read timeout. A connection idle longer than this is
    /// closed. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout for response frames.
    pub write_timeout: Option<Duration>,
    /// Patch-vs-rebuild policy applied to [`Request::ApplyDeltas`] frames.
    pub rebuild_policy: RebuildPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: fault_tolerant_spanners::graph::par::available_threads(),
            queue_capacity: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            rebuild_policy: RebuildPolicy::default(),
        }
    }
}

/// One admitted batch: the decoded queries plus the channel its results go
/// back through to the owning connection thread.
struct Job {
    queries: Vec<Query>,
    reply: mpsc::SyncSender<Vec<Result<QueryOutcome, CoreError>>>,
}

/// Outcome of a non-blocking push attempt on the pending-batch queue.
enum Admission {
    Admitted,
    Full,
    Closed,
}

/// The bounded pending-batch queue: a plain `Mutex<VecDeque>` with one
/// condvar for poppers. Pushes never block (admission control answers
/// `Overloaded` instead); pops block until an item arrives or the queue is
/// closed **and** drained, so closing the queue lets workers finish every
/// admitted batch before exiting.
struct BoundedQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
}

struct QueueInner {
    items: VecDeque<Job>,
    capacity: usize,
    closed: bool,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    fn try_push(&self, job: Job) -> Admission {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Admission::Closed;
        }
        if inner.items.len() >= inner.capacity {
            return Admission::Full;
        }
        inner.items.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
        Admission::Admitted
    }

    /// Blocks until a job is available; `None` once the queue is closed and
    /// every admitted job has been handed out.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }
}

/// Serving counters, shared between all server threads and snapshotted into
/// [`ServerStats`] wire frames.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    batches_enqueued: AtomicU64,
    batches_started: AtomicU64,
    batches_completed: AtomicU64,
    batches_rejected: AtomicU64,
}

/// State shared by the acceptor, connection threads, workers and handles.
struct Shared {
    engine: Engine,
    queue: BoundedQueue,
    counters: Counters,
    rebuild_policy: RebuildPolicy,
    shutting_down: AtomicBool,
    /// Read-half handles of live connections, so shutdown can unblock
    /// threads parked in `read`. Writes stay open for drained responses.
    /// Slots are cleared when a connection thread exits, so a dead
    /// connection does not pin its file descriptor until shutdown.
    connections: Mutex<Vec<Option<TcpStream>>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.counters.connections_accepted.load(Ordering::Relaxed),
            batches_enqueued: self.counters.batches_enqueued.load(Ordering::Relaxed),
            batches_started: self.counters.batches_started.load(Ordering::Relaxed),
            batches_completed: self.counters.batches_completed.load(Ordering::Relaxed),
            batches_rejected: self.counters.batches_rejected.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            engine: self.engine.stats(),
        }
    }

    fn artifact_infos(&self) -> Vec<ArtifactInfo> {
        self.engine
            .names()
            .into_iter()
            .map(|name| {
                let handle = self
                    .engine
                    .artifact_handle(&name)
                    .expect("names() only lists registered artifacts");
                ArtifactInfo {
                    name,
                    fault_model: handle.fault_model(),
                    fault_budget: handle.fault_budget() as u64,
                    stretch: handle.stretch(),
                    nodes: handle.node_count() as u64,
                    spanner_edges: handle.spanner_edge_count() as u64,
                }
            })
            .collect()
    }
}

/// A bound-but-not-yet-running server. [`Server::spawn`] starts the
/// acceptor, workers and connection threads and returns a
/// [`RunningServer`].
///
/// # Example
///
/// ```
/// use fault_tolerant_spanners::prelude::*;
/// use ftspan_net::{Client, Server, ServerConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let network = generate::connected_gnp(20, 0.3, generate::WeightKind::Unit, &mut rng);
/// let artifact = FtSpannerBuilder::new("conversion")
///     .faults(1)
///     .build_artifact(&network)
///     .unwrap();
/// let mut engine = Engine::new();
/// engine.register("backbone", artifact);
///
/// let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default())
///     .unwrap()
///     .spawn()
///     .unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// let reply = client
///     .run_batch(&[Query::distance("backbone", vec![], NodeId::new(0), NodeId::new(5))])
///     .unwrap()
///     .expect_results()
///     .unwrap();
/// assert!(reply[0].is_ok());
/// drop(client);
/// server.shutdown().unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    config: ServerConfig,
}

impl Server {
    /// Binds a listener and prepares the shared state. `addr` may use port
    /// 0 to let the OS pick an ephemeral port ([`Server::local_addr`] /
    /// [`RunningServer::addr`] report the resolved address).
    pub fn bind(
        engine: Engine,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server, NetError> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(config.queue_capacity),
            counters: Counters::default(),
            rebuild_policy: config.rebuild_policy,
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
        });
        Ok(Server {
            listener,
            shared,
            config,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Starts the worker pool and the acceptor thread; returns immediately.
    pub fn spawn(self) -> Result<RunningServer, NetError> {
        let addr = self.local_addr()?;
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                thread::Builder::new()
                    .name(format!("ftspan-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&self.shared);
            let listener = self.listener;
            let config = self.config.clone();
            thread::Builder::new()
                .name("ftspan-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, &config))
                .expect("spawn acceptor thread")
        };
        Ok(RunningServer {
            addr,
            shared: self.shared,
            workers,
            acceptor,
        })
    }
}

/// A live server: its address, a stats/shutdown surface, and the thread
/// handles [`RunningServer::shutdown`] joins.
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    acceptor: thread::JoinHandle<()>,
}

impl RunningServer {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters (same numbers a client sees via
    /// [`Request::Stats`]).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// A cloneable handle for triggering shutdown from another thread (or
    /// from a ctrl-c handler).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Gracefully shuts down: stop accepting, answer new batches
    /// `ShuttingDown`, drain queued and in-flight batches (their responses
    /// are written), then close connections and join every thread.
    pub fn shutdown(self) -> Result<ServerStats, NetError> {
        // Order matters. (1) Flag: the acceptor stops accepting and
        // connection threads reject newly arriving batches.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // (2) Close the queue: workers drain what was admitted, then exit.
        self.shared.queue.close();
        for worker in self.workers {
            worker.join().map_err(|_| NetError::Io {
                message: "a worker thread panicked".into(),
            })?;
        }
        // (3) Every admitted batch has now been answered through its reply
        // channel and written by its connection thread (writes happen on the
        // still-open write half). Unblock readers: shut down only the READ
        // half so an in-flight response write can still complete.
        for conn in self
            .shared
            .connections
            .lock()
            .expect("registry poisoned")
            .iter()
            .flatten()
        {
            conn.shutdown(Shutdown::Read).ok();
        }
        // (4) The acceptor notices the flag, joins the connection threads
        // (their reads now return 0) and exits.
        self.acceptor.join().map_err(|_| NetError::Io {
            message: "the acceptor thread panicked".into(),
        })?;
        Ok(self.shared.stats())
    }
}

/// A cloneable shutdown/stats handle onto a [`RunningServer`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests shutdown. The acceptor and workers begin draining; call
    /// [`RunningServer::shutdown`] to join the threads.
    pub fn request_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared
            .counters
            .batches_started
            .fetch_add(1, Ordering::Relaxed);
        let results = shared.engine.run_batch(&job.queries);
        shared
            .counters
            .batches_completed
            .fetch_add(1, Ordering::Relaxed);
        // A dropped receiver means the connection died mid-batch; the work
        // is wasted but nothing else is affected.
        job.reply.send(results).ok();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>, config: &ServerConfig) {
    listener
        .set_nonblocking(true)
        .expect("listener supports non-blocking accept");
    let mut connection_threads = Vec::new();
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                stream.set_nonblocking(false).ok();
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(config.read_timeout).ok();
                stream.set_write_timeout(config.write_timeout).ok();
                let slot = {
                    let mut connections = shared.connections.lock().expect("registry poisoned");
                    connections.push(stream.try_clone().ok());
                    connections.len() - 1
                };
                let shared = Arc::clone(shared);
                if let Ok(handle) =
                    thread::Builder::new()
                        .name("ftspan-conn".into())
                        .spawn(move || {
                            connection_loop(stream, &shared);
                            shared.connections.lock().expect("registry poisoned")[slot] = None;
                        })
                {
                    connection_threads.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    for handle in connection_threads {
        handle.join().ok();
    }
}

/// Serves one connection: read a request frame, answer it, repeat until the
/// peer hangs up, times out, or sends garbage. Protocol errors terminate
/// the connection (the stream position is unrecoverable after a malformed
/// frame) but never the server.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match Request::read_from(&mut reader) {
            Ok(request) => request,
            // Clean hang-up, timeout, reset, or garbage: close this
            // connection. Each is per-connection, never server-fatal.
            Err(_) => return,
        };
        let response = match request {
            Request::RunBatch(queries) => run_batch_response(shared, queries),
            Request::ListArtifacts => Response::Artifacts(shared.artifact_infos()),
            Request::Stats => Response::Stats(shared.stats()),
            Request::Shutdown => {
                shared.shutting_down.store(true, Ordering::SeqCst);
                shared.queue.close();
                Response::ShuttingDown
            }
            // Runs inline on the connection thread, NOT on the worker pool:
            // a minutes-long rebuild must not occupy a batch worker, and
            // query traffic keeps flowing against the old version while the
            // new one builds. One slow updater stalls only its own
            // connection.
            Request::ApplyDeltas { artifact, deltas } => {
                apply_deltas_response(shared, &artifact, &deltas)
            }
        };
        if response.write_to(&mut writer).is_err() {
            return;
        }
    }
}

fn apply_deltas_response(shared: &Arc<Shared>, artifact: &str, deltas: &[EdgeDelta]) -> Response {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Response::ShuttingDown;
    }
    let result = shared
        .engine
        .apply_deltas(artifact, deltas, &shared.rebuild_policy)
        .map(|report| DeltaApplyInfo {
            version: report.version,
            applied: report.applied as u64,
            last_seq: report.last_seq,
            rebuilt: !report.action.is_patch(),
        });
    Response::DeltasApplied(result)
}

fn run_batch_response(shared: &Arc<Shared>, queries: Vec<Query>) -> Response {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Response::ShuttingDown;
    }
    // Rendezvous channel: the worker parks on `send` only if this thread
    // died between admitting and receiving, which `recv`'s error arm covers.
    let (reply, results) = mpsc::sync_channel(1);
    match shared.queue.try_push(Job { queries, reply }) {
        Admission::Admitted => {
            shared
                .counters
                .batches_enqueued
                .fetch_add(1, Ordering::Relaxed);
            match results.recv() {
                Ok(results) => Response::Batch(results),
                // Workers only drop a job's reply sender without sending if
                // they exited before popping it — i.e. mid-shutdown.
                Err(_) => Response::ShuttingDown,
            }
        }
        Admission::Full => {
            shared
                .counters
                .batches_rejected
                .fetch_add(1, Ordering::Relaxed);
            Response::Overloaded
        }
        Admission::Closed => Response::ShuttingDown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(reply: mpsc::SyncSender<Vec<Result<QueryOutcome, CoreError>>>) -> Job {
        Job {
            queries: Vec::new(),
            reply,
        }
    }

    #[test]
    fn queue_admits_up_to_capacity_then_rejects() {
        let queue = BoundedQueue::new(2);
        let (tx, _rx) = mpsc::sync_channel(1);
        assert!(matches!(
            queue.try_push(job(tx.clone())),
            Admission::Admitted
        ));
        assert!(matches!(
            queue.try_push(job(tx.clone())),
            Admission::Admitted
        ));
        assert!(matches!(queue.try_push(job(tx.clone())), Admission::Full));
        assert_eq!(queue.len(), 2);
        assert!(queue.pop().is_some());
        assert!(matches!(queue.try_push(job(tx)), Admission::Admitted));
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let queue = BoundedQueue::new(4);
        let (tx, _rx) = mpsc::sync_channel(1);
        assert!(matches!(
            queue.try_push(job(tx.clone())),
            Admission::Admitted
        ));
        queue.close();
        assert!(matches!(queue.try_push(job(tx)), Admission::Closed));
        // The admitted job is still handed out; then pops return None.
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());
        assert!(queue.pop().is_none());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let queue = BoundedQueue::new(0);
        let (tx, _rx) = mpsc::sync_channel(1);
        assert!(matches!(
            queue.try_push(job(tx.clone())),
            Admission::Admitted
        ));
        assert!(matches!(queue.try_push(job(tx)), Admission::Full));
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let queue = Arc::new(BoundedQueue::new(1));
        let popper = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.pop().is_some())
        };
        thread::sleep(Duration::from_millis(20));
        let (tx, _rx) = mpsc::sync_channel(1);
        assert!(matches!(queue.try_push(job(tx)), Admission::Admitted));
        assert!(popper.join().unwrap());

        let waiter = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.pop().is_none())
        };
        thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(waiter.join().unwrap());
    }
}
