//! `ftspan_serve` — serve an artifact-store directory over TCP.
//!
//! ```text
//! ftspan_serve --store DIR [--addr HOST:PORT] [--workers N]
//!              [--queue-capacity N] [--timeout-secs N] [--dynamic]
//!              [--print-port]
//! ```
//!
//! * `--store` — directory of `.ftspan` artifacts (required). Every
//!   artifact is loaded into the engine at startup under its file stem.
//! * `--dynamic` — promote every flat artifact to a *dynamic* registration:
//!   the exact `BuildRecipe` (seed, black box, every request knob) is
//!   recovered from the recipe tag the builder records in the artifact's
//!   provenance, the artifact is rebuilt from its embedded source graph and
//!   checked **bit-identical** to the stored one, and clients may then push
//!   `ApplyDeltas` frames at it — the server patches or rebuilds off-lock
//!   and warm-swaps the new version under live traffic. Sharded artifacts
//!   stay sharded (they have no delta path). A flat artifact with no recipe
//!   tag, whose recipe cannot rebuild, or whose rebuild does not reproduce
//!   the stored bytes keeps its flat registration, with a warning — the
//!   server never silently serves a different spanner than the store holds.
//! * `--addr` — listen address (default `127.0.0.1:0`; port 0 lets the OS
//!   pick).
//! * `--workers` — batch-executing worker threads (default: one per CPU).
//! * `--queue-capacity` — pending-batch queue bound; beyond it batches are
//!   answered `Overloaded` (default 64).
//! * `--timeout-secs` — per-connection read/write timeout (default 30).
//! * `--print-port` — print `PORT <n>` on stdout once listening (used by
//!   the CI smoke test to discover the ephemeral port).
//!
//! The server runs until a client sends a `Shutdown` frame, then drains
//! in-flight batches and exits 0, printing a final stats line.

use fault_tolerant_spanners::{ArtifactStore, BuildRecipe, DynamicArtifact, Engine};
use ftspan_net::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    store: Option<std::path::PathBuf>,
    addr: String,
    config: ServerConfig,
    dynamic: bool,
    print_port: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        store: None,
        addr: "127.0.0.1:0".to_string(),
        config: ServerConfig::default(),
        dynamic: false,
        print_port: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--store" => args.store = Some(value_of("--store").into()),
            "--addr" => args.addr = value_of("--addr"),
            "--workers" => {
                args.config.workers = value_of("--workers")
                    .parse()
                    .expect("--workers expects a positive integer");
            }
            "--queue-capacity" => {
                args.config.queue_capacity = value_of("--queue-capacity")
                    .parse()
                    .expect("--queue-capacity expects a positive integer");
            }
            "--timeout-secs" => {
                let secs: u64 = value_of("--timeout-secs")
                    .parse()
                    .expect("--timeout-secs expects a positive integer");
                args.config.read_timeout = Some(Duration::from_secs(secs));
                args.config.write_timeout = Some(Duration::from_secs(secs));
            }
            "--dynamic" => args.dynamic = true,
            "--print-port" => args.print_port = true,
            other => panic!("unknown argument `{other}` (see the ftspan_serve docs)"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(store_dir) = args.store else {
        eprintln!("ftspan_serve: --store DIR is required");
        return ExitCode::FAILURE;
    };

    let store = match ArtifactStore::open(&store_dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("ftspan_serve: cannot open store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut engine = Engine::new();
    let names = match store.load_into(&mut engine) {
        Ok(names) => names,
        Err(e) => {
            eprintln!("ftspan_serve: cannot load store: {e}");
            return ExitCode::FAILURE;
        }
    };
    if names.is_empty() {
        eprintln!(
            "ftspan_serve: store {} holds no artifacts",
            store_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let mut dynamic_count = 0usize;
    if args.dynamic {
        for name in &names {
            // Only flat registrations are promoted; sharded artifacts keep
            // their scatter-gather serving path.
            if engine.sharded_artifact(name).is_some() {
                continue;
            }
            let Some(flat) = engine.artifact(name) else {
                continue;
            };
            // The recipe comes from the artifact's own recorded provenance;
            // an artifact without a tag (pre-tag stores, external-RNG
            // builds) is *not* rebuilt under guessed parameters.
            let Some(recipe) =
                BuildRecipe::from_tagged_provenance(flat.algorithm(), flat.provenance())
            else {
                eprintln!(
                    "ftspan_serve: `{name}` records no build recipe in its provenance; \
                     serving it as a flat artifact"
                );
                continue;
            };
            match DynamicArtifact::build(flat.source_graph(), recipe) {
                Ok(dynamic) => {
                    // Promotion must be invisible until the first delta: the
                    // rebuilt artifact has to reproduce the stored bytes.
                    if dynamic.artifact() != &*flat {
                        eprintln!(
                            "ftspan_serve: rebuilding `{name}` from its recorded recipe \
                             does not reproduce the stored artifact; serving it as a \
                             flat artifact"
                        );
                        continue;
                    }
                    engine.register_dynamic(name, dynamic);
                    dynamic_count += 1;
                }
                Err(e) => {
                    eprintln!(
                        "ftspan_serve: cannot promote `{name}` to dynamic ({e}); \
                         serving it as a flat artifact"
                    );
                }
            }
        }
    }

    let server = match Server::bind(engine, args.addr.as_str(), args.config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ftspan_serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("ftspan_serve: cannot resolve listen address: {e}");
            return ExitCode::FAILURE;
        }
    };
    let running = match server.spawn() {
        Ok(running) => running,
        Err(e) => {
            eprintln!("ftspan_serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "ftspan_serve: serving {} artifact(s) [{}] on {addr} ({} workers, queue {}, \
         {dynamic_count} dynamic)",
        names.len(),
        names.join(", "),
        args.config.workers,
        args.config.queue_capacity,
    );
    if args.print_port {
        // Machine-readable line for scripts driving an ephemeral port.
        // Explicit flush: stdout is block-buffered when piped, and the
        // script is waiting on this line.
        use std::io::Write;
        println!("PORT {}", addr.port());
        std::io::stdout().flush().ok();
    }

    // Block until a client requests shutdown, then drain and exit.
    let handle = running.handle();
    while !handle.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    match running.shutdown() {
        Ok(stats) => {
            eprintln!(
                "ftspan_serve: drained and stopped ({} connections, {} batches completed, \
                 {} rejected, {} queries)",
                stats.connections_accepted,
                stats.batches_completed,
                stats.batches_rejected,
                stats.engine.queries,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ftspan_serve: shutdown failed: {e}");
            ExitCode::FAILURE
        }
    }
}
