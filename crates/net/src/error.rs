//! The typed error surface of the network layer.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the wire protocol, the server and the client.
///
/// Every way a peer can misbehave — wrong magic, skewed version, lying
/// lengths, truncation, trailing garbage — decodes to one of these variants;
/// the protocol layer never panics on adversarial bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The first four bytes of a frame were not the protocol magic.
    BadMagic {
        /// The bytes that were found instead.
        found: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    VersionSkew {
        /// The version the peer sent.
        found: u32,
        /// The version this build speaks.
        expected: u32,
    },
    /// A frame declared a payload larger than the protocol allows.
    FrameTooLarge {
        /// The declared payload length.
        declared: u64,
        /// The allowed maximum.
        limit: u64,
    },
    /// The stream ended inside a frame or a payload field.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A frame carried a tag this build does not know.
    UnknownTag {
        /// The unknown tag bytes.
        tag: [u8; 4],
    },
    /// A payload was structurally invalid (bad discriminant, lying sequence
    /// count, invalid UTF-8, trailing bytes).
    Malformed {
        /// What was wrong.
        message: String,
    },
    /// An I/O failure outside the protocol's own framing (connect, read,
    /// write, timeouts), rendered as a string so the error stays cloneable
    /// and comparable.
    Io {
        /// The underlying I/O error.
        message: String,
    },
    /// The peer closed the connection cleanly between frames.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (expected \"FTNW\")")
            }
            NetError::VersionSkew { found, expected } => {
                write!(
                    f,
                    "protocol version skew: peer speaks v{found}, this build speaks v{expected}"
                )
            }
            NetError::FrameTooLarge { declared, limit } => {
                write!(
                    f,
                    "frame declares a {declared}-byte payload (limit {limit})"
                )
            }
            NetError::Truncated { context } => {
                write!(f, "stream ended while decoding {context}")
            }
            NetError::UnknownTag { tag } => write!(f, "unknown frame tag {tag:?}"),
            NetError::Malformed { message } => write!(f, "malformed payload: {message}"),
            NetError::Io { message } => write!(f, "network i/o failed: {message}"),
            NetError::Closed => write!(f, "connection closed by peer"),
        }
    }
}

impl StdError for NetError {}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> Self {
        NetError::Io {
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_display_nonempty_and_informative() {
        let errors = vec![
            NetError::BadMagic { found: *b"HTTP" },
            NetError::VersionSkew {
                found: 2,
                expected: 1,
            },
            NetError::FrameTooLarge {
                declared: 1 << 40,
                limit: 1 << 26,
            },
            NetError::Truncated {
                context: "frame header",
            },
            NetError::UnknownTag { tag: *b"ZZZZ" },
            NetError::Malformed {
                message: "trailing bytes".into(),
            },
            NetError::Io {
                message: "connection reset".into(),
            },
            NetError::Closed,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(NetError::VersionSkew {
            found: 2,
            expected: 1
        }
        .to_string()
        .contains("v2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: StdError + Send + Sync>() {}
        check::<NetError>();
    }
}
