//! The wire protocol: versioned, length-prefixed frames over a byte stream.
//!
//! Every frame is `magic (4) · version (u32 LE) · tag (4) · payload length
//! (u64 LE) · payload`. The magic is [`PROTOCOL_MAGIC`] (`FTNW`), the version
//! is [`PROTOCOL_VERSION`], and the tag selects the frame type ([`Request`]
//! or [`Response`]). Payloads are flat little-endian encodings with
//! length-prefixed strings and sequences — the same section discipline as
//! the `.ftspan` artifact format, including its defenses:
//!
//! * a declared payload length above [`MAX_FRAME_LEN`] is rejected **before**
//!   any allocation ([`NetError::FrameTooLarge`]);
//! * payload bytes are read through [`Read::take`], so a frame lying about
//!   its length can never read past its own end, and a short stream is a
//!   typed [`NetError::Truncated`] — not a hang or a huge allocation;
//! * inside a payload, every sequence count is validated against the bytes
//!   actually remaining before any element is allocated, so a hostile count
//!   cannot become an allocation bomb;
//! * trailing bytes after a well-formed payload are [`NetError::Malformed`]
//!   (a frame must mean exactly one thing).
//!
//! Decoding never panics on adversarial input: every failure is a typed
//! [`NetError`].
//!
//! # Example
//!
//! ```
//! use fault_tolerant_spanners::prelude::*;
//! use ftspan_net::protocol::{Request, Response};
//!
//! // A client encodes a batch request into a frame...
//! let request = Request::RunBatch(vec![Query::distance(
//!     "backbone",
//!     vec![NodeId::new(3)],
//!     NodeId::new(0),
//!     NodeId::new(7),
//! )]);
//! let mut wire = Vec::new();
//! request.write_to(&mut wire).unwrap();
//!
//! // ...and the server decodes exactly the same request back.
//! let decoded = Request::read_from(&mut wire.as_slice()).unwrap();
//! assert_eq!(decoded, request);
//!
//! // Responses travel the same way, including typed per-query errors.
//! let response = Response::Overloaded;
//! let mut wire = Vec::new();
//! response.write_to(&mut wire).unwrap();
//! assert_eq!(Response::read_from(&mut wire.as_slice()).unwrap(), response);
//! ```

use crate::error::NetError;
use fault_tolerant_spanners::core::{CoreError, FaultModel, StretchCertificate};
use fault_tolerant_spanners::graph::{GraphError, NodeId};
use fault_tolerant_spanners::lp::LpError;
use fault_tolerant_spanners::{EdgeDelta, EngineStats, Query, QueryKind, QueryOutcome};
use std::io::{Read, Write};

/// First four bytes of every frame.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"FTNW";

/// Protocol version carried in every frame; peers reject skewed versions
/// with [`NetError::VersionSkew`] instead of misinterpreting payloads.
///
/// Version 2 added the [`Request::ApplyDeltas`] / [`Response::DeltasApplied`]
/// frames and the dynamic-artifact counters in [`ServerStats`].
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a frame's declared payload length. Declaring more is
/// [`NetError::FrameTooLarge`] — rejected before any allocation.
pub const MAX_FRAME_LEN: u64 = 64 * 1024 * 1024;

const TAG_REQ_BATCH: [u8; 4] = *b"QBAT";
const TAG_REQ_LIST: [u8; 4] = *b"LIST";
const TAG_REQ_STATS: [u8; 4] = *b"STAT";
const TAG_REQ_SHUTDOWN: [u8; 4] = *b"SHUT";
const TAG_REQ_APPLY_DELTAS: [u8; 4] = *b"ADLT";
const TAG_RESP_BATCH: [u8; 4] = *b"RBAT";
const TAG_RESP_LIST: [u8; 4] = *b"RLST";
const TAG_RESP_STATS: [u8; 4] = *b"RSTA";
const TAG_RESP_OVERLOADED: [u8; 4] = *b"OVLD";
const TAG_RESP_SHUTTING_DOWN: [u8; 4] = *b"RSHD";
const TAG_RESP_DELTAS_APPLIED: [u8; 4] = *b"RADL";

/// What a client can ask a server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a query batch through the server's engine
    /// (answered by [`Response::Batch`], or [`Response::Overloaded`] /
    /// [`Response::ShuttingDown`] when admission control rejects it).
    RunBatch(Vec<Query>),
    /// List the artifacts the server is holding ([`Response::Artifacts`]).
    ListArtifacts,
    /// Snapshot the server's serving counters ([`Response::Stats`]).
    Stats,
    /// Ask the server to shut down gracefully, draining in-flight batches
    /// (acknowledged with [`Response::ShuttingDown`]).
    Shutdown,
    /// Apply an edge-delta batch to a dynamic artifact and warm-swap the new
    /// version in ([`Response::DeltasApplied`]). Deltas are sent bare —
    /// sequence numbers are assigned by the server's delta log, so clients
    /// never have to coordinate them.
    ApplyDeltas {
        /// Serving name of the dynamic artifact to evolve.
        artifact: String,
        /// The edge mutations, applied in order as one atomic batch.
        deltas: Vec<EdgeDelta>,
    },
}

/// What a server answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One result per query of the batch, **in input order** — byte-identical
    /// to what `Engine::run_batch` returns in-process, including typed
    /// per-query errors.
    Batch(Vec<Result<QueryOutcome, CoreError>>),
    /// The server's registered artifacts.
    Artifacts(Vec<ArtifactInfo>),
    /// A snapshot of the server's serving counters.
    Stats(ServerStats),
    /// Admission control rejected the batch: the pending-batch queue is
    /// full. The connection stays usable — retry later.
    Overloaded,
    /// The server is shutting down (sent for batches arriving during the
    /// drain, and as the acknowledgement of [`Request::Shutdown`]).
    ShuttingDown,
    /// The outcome of a [`Request::ApplyDeltas`]: the swap summary on
    /// success, or the same typed [`CoreError`] the in-process
    /// `Engine::apply_deltas` would have returned.
    DeltasApplied(Result<DeltaApplyInfo, CoreError>),
}

/// Summary of a completed delta apply ([`Response::DeltasApplied`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaApplyInfo {
    /// Version number of the artifact now being served.
    pub version: u64,
    /// Deltas applied in this batch.
    pub applied: u64,
    /// Sequence number the server's delta log assigned to the batch's last
    /// record.
    pub last_seq: u64,
    /// `true` when the new version came from a full rebuild rather than an
    /// incremental patch.
    pub rebuilt: bool,
}

/// One registered artifact, as reported by [`Response::Artifacts`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactInfo {
    /// Serving name the artifact is registered under.
    pub name: String,
    /// Fault model the artifact guarantees.
    pub fault_model: FaultModel,
    /// Declared fault budget `r`.
    pub fault_budget: u64,
    /// Declared stretch bound `k`.
    pub stretch: f64,
    /// Number of vertices.
    pub nodes: u64,
    /// Number of edges in the spanner.
    pub spanner_edges: u64,
}

/// A snapshot of a server's serving counters ([`Response::Stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Batches admitted into the pending queue.
    pub batches_enqueued: u64,
    /// Batches a worker has begun executing.
    pub batches_started: u64,
    /// Batches fully executed and answered.
    pub batches_completed: u64,
    /// Batches rejected with [`Response::Overloaded`].
    pub batches_rejected: u64,
    /// Batches currently waiting in the pending queue.
    pub queue_depth: u64,
    /// The underlying engine's planner and cache counters.
    pub engine: EngineStats,
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

/// Writes one frame: magic, version, `tag`, payload length, payload.
pub fn write_frame(w: &mut impl Write, tag: [u8; 4], payload: &[u8]) -> Result<(), NetError> {
    if payload.len() as u64 > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge {
            declared: payload.len() as u64,
            limit: MAX_FRAME_LEN,
        });
    }
    let mut header = [0u8; 20];
    header[..4].copy_from_slice(&PROTOCOL_MAGIC);
    header[4..8].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    header[8..12].copy_from_slice(&tag);
    header[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, returning its tag and payload.
///
/// A clean end-of-stream **before the first header byte** is
/// [`NetError::Closed`] (the peer hung up between frames); anywhere else a
/// short read is [`NetError::Truncated`]. The declared payload length is
/// checked against [`MAX_FRAME_LEN`] before reading, and the payload is
/// pulled through [`Read::take`], so a lying length can neither over-read
/// nor over-allocate.
pub fn read_frame(r: &mut impl Read) -> Result<([u8; 4], Vec<u8>), NetError> {
    let mut magic = [0u8; 4];
    read_exact_or(r, &mut magic, true)?;
    if magic != PROTOCOL_MAGIC {
        return Err(NetError::BadMagic { found: magic });
    }
    let mut version = [0u8; 4];
    read_exact_or(r, &mut version, false)?;
    let version = u32::from_le_bytes(version);
    if version != PROTOCOL_VERSION {
        return Err(NetError::VersionSkew {
            found: version,
            expected: PROTOCOL_VERSION,
        });
    }
    let mut tag = [0u8; 4];
    read_exact_or(r, &mut tag, false)?;
    let mut len = [0u8; 8];
    read_exact_or(r, &mut len, false)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge {
            declared: len,
            limit: MAX_FRAME_LEN,
        });
    }
    // read_to_end grows the buffer as bytes actually arrive, so a frame
    // declaring 64 MiB but carrying 10 bytes costs 10 bytes, not 64 MiB.
    let mut payload = Vec::new();
    r.take(len).read_to_end(&mut payload)?;
    if payload.len() as u64 != len {
        return Err(NetError::Truncated {
            context: "frame payload",
        });
    }
    Ok((tag, payload))
}

/// `read_exact` with the protocol's end-of-stream semantics: a clean EOF on
/// the very first byte is [`NetError::Closed`] when `start_of_frame`,
/// otherwise any short read is [`NetError::Truncated`].
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], start_of_frame: bool) -> Result<(), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if start_of_frame && filled == 0 {
                    NetError::Closed
                } else {
                    NetError::Truncated {
                        context: "frame header",
                    }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

impl Request {
    /// Encodes this request as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), NetError> {
        let (tag, payload) = match self {
            Request::RunBatch(queries) => {
                let mut buf = Vec::new();
                put_seq(&mut buf, queries, put_query);
                (TAG_REQ_BATCH, buf)
            }
            Request::ListArtifacts => (TAG_REQ_LIST, Vec::new()),
            Request::Stats => (TAG_REQ_STATS, Vec::new()),
            Request::Shutdown => (TAG_REQ_SHUTDOWN, Vec::new()),
            Request::ApplyDeltas { artifact, deltas } => {
                let mut buf = Vec::new();
                put_str(&mut buf, artifact);
                put_seq(&mut buf, deltas, put_edge_delta);
                (TAG_REQ_APPLY_DELTAS, buf)
            }
        };
        write_frame(w, tag, &payload)
    }

    /// Reads and decodes one request frame.
    pub fn read_from(r: &mut impl Read) -> Result<Self, NetError> {
        let (tag, payload) = read_frame(r)?;
        let mut c = Cursor::new(&payload);
        let request = match tag {
            TAG_REQ_BATCH => Request::RunBatch(c.seq(Cursor::query)?),
            TAG_REQ_LIST => Request::ListArtifacts,
            TAG_REQ_STATS => Request::Stats,
            TAG_REQ_SHUTDOWN => Request::Shutdown,
            TAG_REQ_APPLY_DELTAS => Request::ApplyDeltas {
                artifact: c.string("delta artifact")?,
                deltas: c.seq(Cursor::edge_delta)?,
            },
            _ => return Err(NetError::UnknownTag { tag }),
        };
        c.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes this response as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), NetError> {
        let (tag, payload) = match self {
            Response::Batch(results) => {
                let mut buf = Vec::new();
                put_seq(&mut buf, results, put_result);
                (TAG_RESP_BATCH, buf)
            }
            Response::Artifacts(infos) => {
                let mut buf = Vec::new();
                put_seq(&mut buf, infos, put_artifact_info);
                (TAG_RESP_LIST, buf)
            }
            Response::Stats(stats) => {
                let mut buf = Vec::new();
                put_server_stats(&mut buf, stats);
                (TAG_RESP_STATS, buf)
            }
            Response::Overloaded => (TAG_RESP_OVERLOADED, Vec::new()),
            Response::ShuttingDown => (TAG_RESP_SHUTTING_DOWN, Vec::new()),
            Response::DeltasApplied(result) => {
                let mut buf = Vec::new();
                match result {
                    Ok(info) => {
                        put_u8(&mut buf, 0);
                        put_u64(&mut buf, info.version);
                        put_u64(&mut buf, info.applied);
                        put_u64(&mut buf, info.last_seq);
                        put_u8(&mut buf, u8::from(info.rebuilt));
                    }
                    Err(e) => {
                        put_u8(&mut buf, 1);
                        put_core_error(&mut buf, e);
                    }
                }
                (TAG_RESP_DELTAS_APPLIED, buf)
            }
        };
        write_frame(w, tag, &payload)
    }

    /// Reads and decodes one response frame.
    pub fn read_from(r: &mut impl Read) -> Result<Self, NetError> {
        let (tag, payload) = read_frame(r)?;
        let mut c = Cursor::new(&payload);
        let response = match tag {
            TAG_RESP_BATCH => Response::Batch(c.seq(Cursor::result)?),
            TAG_RESP_LIST => Response::Artifacts(c.seq(Cursor::artifact_info)?),
            TAG_RESP_STATS => Response::Stats(c.server_stats()?),
            TAG_RESP_OVERLOADED => Response::Overloaded,
            TAG_RESP_SHUTTING_DOWN => Response::ShuttingDown,
            TAG_RESP_DELTAS_APPLIED => {
                Response::DeltasApplied(match c.u8("apply result kind")? {
                    0 => Ok(DeltaApplyInfo {
                        version: c.u64("apply field")?,
                        applied: c.u64("apply field")?,
                        last_seq: c.u64("apply field")?,
                        rebuilt: match c.u8("apply rebuilt flag")? {
                            0 => false,
                            1 => true,
                            other => {
                                return Err(NetError::Malformed {
                                    message: format!("invalid rebuilt discriminant {other}"),
                                })
                            }
                        },
                    }),
                    1 => Err(c.core_error()?),
                    other => {
                        return Err(NetError::Malformed {
                            message: format!("invalid apply result discriminant {other}"),
                        })
                    }
                })
            }
            _ => return Err(NetError::UnknownTag { tag }),
        };
        c.finish()?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_seq<T>(buf: &mut Vec<u8>, items: &[T], put: impl Fn(&mut Vec<u8>, &T)) {
    put_u64(buf, items.len() as u64);
    for item in items {
        put(buf, item);
    }
}

fn put_node(buf: &mut Vec<u8>, v: NodeId) {
    put_u64(buf, v.index() as u64);
}

fn put_opt_path(buf: &mut Vec<u8>, path: &Option<Vec<NodeId>>) {
    match path {
        None => put_u8(buf, 0),
        Some(nodes) => {
            put_u8(buf, 1);
            put_seq(buf, nodes, |b, &n| put_node(b, n));
        }
    }
}

fn fault_model_code(m: FaultModel) -> u8 {
    match m {
        FaultModel::Vertex => 0,
        FaultModel::Edge => 1,
    }
}

fn put_edge_delta(buf: &mut Vec<u8>, delta: &EdgeDelta) {
    match delta {
        EdgeDelta::Insert { u, v, weight } => {
            put_u8(buf, 0);
            put_node(buf, *u);
            put_node(buf, *v);
            put_f64(buf, *weight);
        }
        EdgeDelta::Delete { u, v } => {
            put_u8(buf, 1);
            put_node(buf, *u);
            put_node(buf, *v);
        }
        EdgeDelta::Reweight { u, v, weight } => {
            put_u8(buf, 2);
            put_node(buf, *u);
            put_node(buf, *v);
            put_f64(buf, *weight);
        }
    }
}

fn put_query(buf: &mut Vec<u8>, q: &Query) {
    put_str(buf, &q.artifact);
    put_seq(buf, &q.faults, |b, &n| put_node(b, n));
    put_seq(buf, &q.edge_faults, |b, &(u, v)| {
        put_node(b, u);
        put_node(b, v);
    });
    put_node(buf, q.u);
    put_node(buf, q.v);
    put_u8(
        buf,
        match q.kind {
            QueryKind::Distance => 0,
            QueryKind::Path => 1,
            QueryKind::Certificate => 2,
        },
    );
}

fn put_outcome(buf: &mut Vec<u8>, outcome: &QueryOutcome) {
    match outcome {
        QueryOutcome::Distance(d) => {
            put_u8(buf, 0);
            put_f64(buf, *d);
        }
        QueryOutcome::Path(path) => {
            put_u8(buf, 1);
            put_opt_path(buf, path);
        }
        QueryOutcome::Certificate(cert) => {
            put_u8(buf, 2);
            put_node(buf, cert.u);
            put_node(buf, cert.v);
            put_f64(buf, cert.spanner_distance);
            put_f64(buf, cert.baseline_distance);
            put_f64(buf, cert.stretch);
            put_f64(buf, cert.bound);
            put_opt_path(buf, &cert.path);
        }
    }
}

fn put_core_error(buf: &mut Vec<u8>, e: &CoreError) {
    match e {
        CoreError::Graph(g) => {
            put_u8(buf, 0);
            put_graph_error(buf, g);
        }
        CoreError::Lp(l) => {
            put_u8(buf, 1);
            put_lp_error(buf, l);
        }
        CoreError::InvalidParameter { message } => {
            put_u8(buf, 2);
            put_str(buf, message);
        }
        CoreError::TooManyFaults { given, budget } => {
            put_u8(buf, 3);
            put_u64(buf, *given as u64);
            put_u64(buf, *budget as u64);
        }
        CoreError::UnknownNode { node, nodes } => {
            put_u8(buf, 4);
            put_u64(buf, *node as u64);
            put_u64(buf, *nodes as u64);
        }
        CoreError::UnknownEdge { u, v } => {
            put_u8(buf, 5);
            put_u64(buf, *u as u64);
            put_u64(buf, *v as u64);
        }
        CoreError::FaultModelMismatch {
            declared,
            requested,
        } => {
            put_u8(buf, 6);
            put_u8(buf, fault_model_code(*declared));
            put_u8(buf, fault_model_code(*requested));
        }
        CoreError::UnknownArtifact { name } => {
            put_u8(buf, 7);
            put_str(buf, name);
        }
    }
}

fn put_graph_error(buf: &mut Vec<u8>, e: &GraphError) {
    match e {
        GraphError::NodeOutOfBounds { node, len } => {
            put_u8(buf, 0);
            put_u64(buf, *node as u64);
            put_u64(buf, *len as u64);
        }
        GraphError::EdgeOutOfBounds { edge, len } => {
            put_u8(buf, 1);
            put_u64(buf, *edge as u64);
            put_u64(buf, *len as u64);
        }
        GraphError::SelfLoop { node } => {
            put_u8(buf, 2);
            put_u64(buf, *node as u64);
        }
        GraphError::InvalidWeight { weight } => {
            put_u8(buf, 3);
            put_f64(buf, *weight);
        }
        GraphError::MismatchedEdgeSet { set_len, graph_len } => {
            put_u8(buf, 4);
            put_u64(buf, *set_len as u64);
            put_u64(buf, *graph_len as u64);
        }
        GraphError::InvalidParameter { message } => {
            put_u8(buf, 5);
            put_str(buf, message);
        }
        GraphError::Io { message } => {
            put_u8(buf, 6);
            put_str(buf, message);
        }
        GraphError::Parse { line, message } => {
            put_u8(buf, 7);
            put_u64(buf, *line as u64);
            put_str(buf, message);
        }
        GraphError::PartitionStalled { unassigned } => {
            put_u8(buf, 8);
            put_u64(buf, *unassigned as u64);
        }
    }
}

fn put_lp_error(buf: &mut Vec<u8>, e: &LpError) {
    match e {
        LpError::Infeasible => put_u8(buf, 0),
        LpError::Unbounded => put_u8(buf, 1),
        LpError::IterationLimit { iterations } => {
            put_u8(buf, 2);
            put_u64(buf, *iterations as u64);
        }
        LpError::InvalidProblem { message } => {
            put_u8(buf, 3);
            put_str(buf, message);
        }
    }
}

fn put_result(buf: &mut Vec<u8>, result: &Result<QueryOutcome, CoreError>) {
    match result {
        Ok(outcome) => {
            put_u8(buf, 0);
            put_outcome(buf, outcome);
        }
        Err(e) => {
            put_u8(buf, 1);
            put_core_error(buf, e);
        }
    }
}

fn put_artifact_info(buf: &mut Vec<u8>, info: &ArtifactInfo) {
    put_str(buf, &info.name);
    put_u8(buf, fault_model_code(info.fault_model));
    put_u64(buf, info.fault_budget);
    put_f64(buf, info.stretch);
    put_u64(buf, info.nodes);
    put_u64(buf, info.spanner_edges);
}

fn put_server_stats(buf: &mut Vec<u8>, s: &ServerStats) {
    put_u64(buf, s.connections_accepted);
    put_u64(buf, s.batches_enqueued);
    put_u64(buf, s.batches_started);
    put_u64(buf, s.batches_completed);
    put_u64(buf, s.batches_rejected);
    put_u64(buf, s.queue_depth);
    put_u64(buf, s.engine.batches);
    put_u64(buf, s.engine.queries);
    put_u64(buf, s.engine.planner_groups);
    put_u64(buf, s.engine.planner_units);
    put_u64(buf, s.engine.cache_hits);
    put_u64(buf, s.engine.cache_misses);
    put_u64(buf, s.engine.swaps);
    put_u64(buf, s.engine.deltas_applied);
    put_u64(buf, s.engine.rebuilds);
}

// ---------------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------------

/// A bounds-checked decoding cursor over one payload. Every read is
/// validated against the remaining bytes; nothing is allocated from a count
/// the remaining bytes cannot cover.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, NetError> {
        Ok(self.bytes(1, context)?[0])
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, NetError> {
        let b = self.bytes(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn usize(&mut self, context: &'static str) -> Result<usize, NetError> {
        usize::try_from(self.u64(context)?).map_err(|_| NetError::Malformed {
            message: format!("{context}: value does not fit a usize"),
        })
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, NetError> {
        let b = self.bytes(8, context)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            b.try_into().expect("8 bytes"),
        )))
    }

    fn string(&mut self, context: &'static str) -> Result<String, NetError> {
        let len = self.usize(context)?;
        if self.remaining() < len {
            return Err(NetError::Truncated { context });
        }
        let s =
            std::str::from_utf8(self.bytes(len, context)?).map_err(|_| NetError::Malformed {
                message: format!("{context}: string is not valid UTF-8"),
            })?;
        Ok(s.to_string())
    }

    /// Decodes a length-prefixed sequence. The declared count is validated
    /// against the remaining bytes (each element encodes to at least one
    /// byte), so a lying count fails typed before any allocation.
    fn seq<T>(
        &mut self,
        decode: impl Fn(&mut Self) -> Result<T, NetError>,
    ) -> Result<Vec<T>, NetError> {
        let count = self.usize("sequence length")?;
        if count > self.remaining() {
            return Err(NetError::Malformed {
                message: format!(
                    "sequence declares {count} elements but only {} bytes remain",
                    self.remaining()
                ),
            });
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(decode(self)?);
        }
        Ok(items)
    }

    fn node(&mut self, context: &'static str) -> Result<NodeId, NetError> {
        Ok(NodeId::new(self.usize(context)?))
    }

    fn opt_path(&mut self) -> Result<Option<Vec<NodeId>>, NetError> {
        match self.u8("optional path")? {
            0 => Ok(None),
            1 => Ok(Some(self.seq(|c| c.node("path vertex"))?)),
            other => Err(NetError::Malformed {
                message: format!("invalid option discriminant {other}"),
            }),
        }
    }

    fn fault_model(&mut self) -> Result<FaultModel, NetError> {
        match self.u8("fault model")? {
            0 => Ok(FaultModel::Vertex),
            1 => Ok(FaultModel::Edge),
            other => Err(NetError::Malformed {
                message: format!("invalid fault model discriminant {other}"),
            }),
        }
    }

    fn edge_delta(&mut self) -> Result<EdgeDelta, NetError> {
        match self.u8("delta kind")? {
            0 => Ok(EdgeDelta::Insert {
                u: self.node("delta endpoint")?,
                v: self.node("delta endpoint")?,
                weight: self.f64("delta weight")?,
            }),
            1 => Ok(EdgeDelta::Delete {
                u: self.node("delta endpoint")?,
                v: self.node("delta endpoint")?,
            }),
            2 => Ok(EdgeDelta::Reweight {
                u: self.node("delta endpoint")?,
                v: self.node("delta endpoint")?,
                weight: self.f64("delta weight")?,
            }),
            other => Err(NetError::Malformed {
                message: format!("invalid delta kind discriminant {other}"),
            }),
        }
    }

    fn query(&mut self) -> Result<Query, NetError> {
        let artifact = self.string("query artifact")?;
        let faults = self.seq(|c| c.node("vertex fault"))?;
        let edge_faults = self.seq(|c| {
            let u = c.node("edge fault endpoint")?;
            let v = c.node("edge fault endpoint")?;
            Ok((u, v))
        })?;
        let u = self.node("query endpoint")?;
        let v = self.node("query endpoint")?;
        let kind = match self.u8("query kind")? {
            0 => QueryKind::Distance,
            1 => QueryKind::Path,
            2 => QueryKind::Certificate,
            other => {
                return Err(NetError::Malformed {
                    message: format!("invalid query kind discriminant {other}"),
                })
            }
        };
        Ok(Query {
            artifact,
            faults,
            edge_faults,
            u,
            v,
            kind,
        })
    }

    fn outcome(&mut self) -> Result<QueryOutcome, NetError> {
        match self.u8("outcome kind")? {
            0 => Ok(QueryOutcome::Distance(self.f64("distance")?)),
            1 => Ok(QueryOutcome::Path(self.opt_path()?)),
            2 => Ok(QueryOutcome::Certificate(StretchCertificate {
                u: self.node("certificate endpoint")?,
                v: self.node("certificate endpoint")?,
                spanner_distance: self.f64("certificate field")?,
                baseline_distance: self.f64("certificate field")?,
                stretch: self.f64("certificate field")?,
                bound: self.f64("certificate field")?,
                path: self.opt_path()?,
            })),
            other => Err(NetError::Malformed {
                message: format!("invalid outcome discriminant {other}"),
            }),
        }
    }

    fn core_error(&mut self) -> Result<CoreError, NetError> {
        Ok(match self.u8("error kind")? {
            0 => CoreError::Graph(self.graph_error()?),
            1 => CoreError::Lp(self.lp_error()?),
            2 => CoreError::InvalidParameter {
                message: self.string("error message")?,
            },
            3 => CoreError::TooManyFaults {
                given: self.usize("error field")?,
                budget: self.usize("error field")?,
            },
            4 => CoreError::UnknownNode {
                node: self.usize("error field")?,
                nodes: self.usize("error field")?,
            },
            5 => CoreError::UnknownEdge {
                u: self.usize("error field")?,
                v: self.usize("error field")?,
            },
            6 => CoreError::FaultModelMismatch {
                declared: self.fault_model()?,
                requested: self.fault_model()?,
            },
            7 => CoreError::UnknownArtifact {
                name: self.string("error artifact name")?,
            },
            other => {
                return Err(NetError::Malformed {
                    message: format!("invalid core error discriminant {other}"),
                })
            }
        })
    }

    fn graph_error(&mut self) -> Result<GraphError, NetError> {
        Ok(match self.u8("graph error kind")? {
            0 => GraphError::NodeOutOfBounds {
                node: self.usize("error field")?,
                len: self.usize("error field")?,
            },
            1 => GraphError::EdgeOutOfBounds {
                edge: self.usize("error field")?,
                len: self.usize("error field")?,
            },
            2 => GraphError::SelfLoop {
                node: self.usize("error field")?,
            },
            3 => GraphError::InvalidWeight {
                weight: self.f64("error field")?,
            },
            4 => GraphError::MismatchedEdgeSet {
                set_len: self.usize("error field")?,
                graph_len: self.usize("error field")?,
            },
            5 => GraphError::InvalidParameter {
                message: self.string("error message")?,
            },
            6 => GraphError::Io {
                message: self.string("error message")?,
            },
            7 => GraphError::Parse {
                line: self.usize("error field")?,
                message: self.string("error message")?,
            },
            8 => GraphError::PartitionStalled {
                unassigned: self.usize("error field")?,
            },
            other => {
                return Err(NetError::Malformed {
                    message: format!("invalid graph error discriminant {other}"),
                })
            }
        })
    }

    fn lp_error(&mut self) -> Result<LpError, NetError> {
        Ok(match self.u8("lp error kind")? {
            0 => LpError::Infeasible,
            1 => LpError::Unbounded,
            2 => LpError::IterationLimit {
                iterations: self.usize("error field")?,
            },
            3 => LpError::InvalidProblem {
                message: self.string("error message")?,
            },
            other => {
                return Err(NetError::Malformed {
                    message: format!("invalid lp error discriminant {other}"),
                })
            }
        })
    }

    fn result(&mut self) -> Result<Result<QueryOutcome, CoreError>, NetError> {
        match self.u8("result kind")? {
            0 => Ok(Ok(self.outcome()?)),
            1 => Ok(Err(self.core_error()?)),
            other => Err(NetError::Malformed {
                message: format!("invalid result discriminant {other}"),
            }),
        }
    }

    fn artifact_info(&mut self) -> Result<ArtifactInfo, NetError> {
        Ok(ArtifactInfo {
            name: self.string("artifact name")?,
            fault_model: self.fault_model()?,
            fault_budget: self.u64("artifact field")?,
            stretch: self.f64("artifact field")?,
            nodes: self.u64("artifact field")?,
            spanner_edges: self.u64("artifact field")?,
        })
    }

    fn server_stats(&mut self) -> Result<ServerStats, NetError> {
        Ok(ServerStats {
            connections_accepted: self.u64("stats field")?,
            batches_enqueued: self.u64("stats field")?,
            batches_started: self.u64("stats field")?,
            batches_completed: self.u64("stats field")?,
            batches_rejected: self.u64("stats field")?,
            queue_depth: self.u64("stats field")?,
            engine: EngineStats {
                batches: self.u64("stats field")?,
                queries: self.u64("stats field")?,
                planner_groups: self.u64("stats field")?,
                planner_units: self.u64("stats field")?,
                cache_hits: self.u64("stats field")?,
                cache_misses: self.u64("stats field")?,
                swaps: self.u64("stats field")?,
                deltas_applied: self.u64("stats field")?,
                rebuilds: self.u64("stats field")?,
            },
        })
    }

    /// A payload must be consumed exactly: trailing bytes mean the peer and
    /// we disagree about the encoding, which is never safe to ignore.
    fn finish(self) -> Result<(), NetError> {
        if self.pos != self.buf.len() {
            return Err(NetError::Malformed {
                message: format!(
                    "{} trailing bytes after a complete payload",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let mut wire = Vec::new();
        request.write_to(&mut wire).unwrap();
        let decoded = Request::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let mut wire = Vec::new();
        response.write_to(&mut wire).unwrap();
        let decoded = Response::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(decoded, response);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::ListArtifacts);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::RunBatch(vec![]));
        round_trip_request(Request::RunBatch(vec![
            Query::distance(
                "backbone",
                vec![NodeId::new(3)],
                NodeId::new(0),
                NodeId::new(7),
            ),
            Query::path("alt", vec![], NodeId::new(1), NodeId::new(2)),
            Query::certificate(
                "backbone",
                vec![NodeId::new(9)],
                NodeId::new(4),
                NodeId::new(5),
            ),
            Query::distance("edges", vec![], NodeId::new(0), NodeId::new(1))
                .with_edge_faults(vec![(NodeId::new(0), NodeId::new(3))]),
        ]));
        round_trip_request(Request::ApplyDeltas {
            artifact: "backbone".into(),
            deltas: vec![],
        });
        round_trip_request(Request::ApplyDeltas {
            artifact: "backbone".into(),
            deltas: vec![
                EdgeDelta::Insert {
                    u: NodeId::new(0),
                    v: NodeId::new(7),
                    weight: 1.5,
                },
                EdgeDelta::Delete {
                    u: NodeId::new(3),
                    v: NodeId::new(4),
                },
                EdgeDelta::Reweight {
                    u: NodeId::new(2),
                    v: NodeId::new(9),
                    weight: 0.25,
                },
            ],
        });
    }

    #[test]
    fn responses_round_trip_including_every_error_variant() {
        round_trip_response(Response::Overloaded);
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Artifacts(vec![ArtifactInfo {
            name: "backbone".into(),
            fault_model: FaultModel::Edge,
            fault_budget: 2,
            stretch: 3.0,
            nodes: 30,
            spanner_edges: 87,
        }]));
        round_trip_response(Response::Stats(ServerStats {
            connections_accepted: 1,
            batches_enqueued: 2,
            batches_started: 3,
            batches_completed: 4,
            batches_rejected: 5,
            queue_depth: 6,
            engine: EngineStats {
                batches: 7,
                queries: 8,
                planner_groups: 9,
                planner_units: 10,
                cache_hits: 11,
                cache_misses: 12,
                swaps: 13,
                deltas_applied: 14,
                rebuilds: 15,
            },
        }));
        round_trip_response(Response::DeltasApplied(Ok(DeltaApplyInfo {
            version: 4,
            applied: 17,
            last_seq: 42,
            rebuilt: true,
        })));
        round_trip_response(Response::DeltasApplied(Err(CoreError::UnknownArtifact {
            name: "backbone".into(),
        })));

        let errors: Vec<CoreError> = vec![
            CoreError::Graph(GraphError::NodeOutOfBounds { node: 9, len: 4 }),
            CoreError::Graph(GraphError::EdgeOutOfBounds { edge: 7, len: 2 }),
            CoreError::Graph(GraphError::SelfLoop { node: 3 }),
            CoreError::Graph(GraphError::InvalidWeight { weight: -2.5 }),
            CoreError::Graph(GraphError::MismatchedEdgeSet {
                set_len: 4,
                graph_len: 6,
            }),
            CoreError::Graph(GraphError::InvalidParameter {
                message: "p must be in [0,1]".into(),
            }),
            CoreError::Graph(GraphError::Io {
                message: "file not found".into(),
            }),
            CoreError::Graph(GraphError::Parse {
                line: 3,
                message: "expected three fields".into(),
            }),
            CoreError::Lp(LpError::Infeasible),
            CoreError::Lp(LpError::Unbounded),
            CoreError::Lp(LpError::IterationLimit { iterations: 70 }),
            CoreError::Lp(LpError::InvalidProblem {
                message: "empty".into(),
            }),
            CoreError::InvalidParameter {
                message: "r must be positive".into(),
            },
            CoreError::TooManyFaults {
                given: 5,
                budget: 2,
            },
            CoreError::UnknownNode { node: 9, nodes: 4 },
            CoreError::UnknownEdge { u: 1, v: 2 },
            CoreError::FaultModelMismatch {
                declared: FaultModel::Vertex,
                requested: FaultModel::Edge,
            },
            CoreError::UnknownArtifact {
                name: "prod".into(),
            },
        ];
        let outcomes: Vec<Result<QueryOutcome, CoreError>> = vec![
            Ok(QueryOutcome::Distance(2.5)),
            Ok(QueryOutcome::Distance(f64::INFINITY)),
            Ok(QueryOutcome::Path(None)),
            Ok(QueryOutcome::Path(Some(vec![
                NodeId::new(0),
                NodeId::new(4),
                NodeId::new(2),
            ]))),
            Ok(QueryOutcome::Certificate(StretchCertificate {
                u: NodeId::new(1),
                v: NodeId::new(8),
                spanner_distance: 4.0,
                baseline_distance: 2.0,
                stretch: 2.0,
                bound: 3.0,
                path: Some(vec![NodeId::new(1), NodeId::new(5), NodeId::new(8)]),
            })),
        ];
        let mut results = outcomes;
        results.extend(errors.into_iter().map(Err));
        round_trip_response(Response::Batch(results));
    }

    #[test]
    fn frame_header_defenses() {
        // Bad magic.
        let mut wire = Vec::new();
        Request::Stats.write_to(&mut wire).unwrap();
        wire[0] = b'X';
        assert!(matches!(
            Request::read_from(&mut wire.as_slice()),
            Err(NetError::BadMagic { .. })
        ));

        // Version skew.
        let mut wire = Vec::new();
        Request::Stats.write_to(&mut wire).unwrap();
        wire[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Request::read_from(&mut wire.as_slice()),
            Err(NetError::VersionSkew {
                found: 99,
                expected: PROTOCOL_VERSION
            })
        );

        // Unknown tag.
        let mut wire = Vec::new();
        Request::Stats.write_to(&mut wire).unwrap();
        wire[8..12].copy_from_slice(b"ZZZZ");
        assert_eq!(
            Request::read_from(&mut wire.as_slice()),
            Err(NetError::UnknownTag { tag: *b"ZZZZ" })
        );

        // Oversized declared length is rejected before allocation.
        let mut wire = Vec::new();
        Request::Stats.write_to(&mut wire).unwrap();
        wire[12..20].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            Request::read_from(&mut wire.as_slice()),
            Err(NetError::FrameTooLarge {
                declared: MAX_FRAME_LEN + 1,
                limit: MAX_FRAME_LEN
            })
        );

        // A clean hang-up between frames is Closed, mid-header is Truncated.
        assert_eq!(
            Request::read_from(&mut [].as_slice()),
            Err(NetError::Closed)
        );
        let mut wire = Vec::new();
        Request::Stats.write_to(&mut wire).unwrap();
        for cut in 1..wire.len() {
            let err = Request::read_from(&mut &wire[..cut]).unwrap_err();
            assert!(
                matches!(err, NetError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = Vec::new();
        put_seq(&mut payload, &[] as &[Query], put_query);
        payload.push(0xFF);
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_REQ_BATCH, &payload).unwrap();
        assert!(matches!(
            Request::read_from(&mut wire.as_slice()),
            Err(NetError::Malformed { .. })
        ));
    }

    #[test]
    fn lying_sequence_counts_fail_before_allocating() {
        // A batch declaring u64::MAX queries in a 9-byte payload must fail
        // typed without attempting a huge allocation.
        let mut payload = Vec::new();
        put_u64(&mut payload, u64::MAX);
        payload.push(0);
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_REQ_BATCH, &payload).unwrap();
        assert!(matches!(
            Request::read_from(&mut wire.as_slice()),
            Err(NetError::Malformed { .. })
        ));
    }
}
