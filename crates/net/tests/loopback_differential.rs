//! Loopback differential test: a shuffled, mixed query batch — including
//! queries that fail with typed `CoreError`s — pushed through a real TCP
//! server must come back **identical** to what `Engine::run_batch` returns
//! in-process, at every worker count. The network layer is observationally
//! transparent; serialization is lossless down to error variants and
//! `f64::INFINITY` distances.

use fault_tolerant_spanners::prelude::*;
use ftspan_net::{Client, Server, ServerConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Two vertex-fault artifacts with different sizes, budgets and weights.
fn build_engine(seed: u64) -> Engine {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generate::connected_gnp(40, 0.25, generate::WeightKind::Unit, &mut rng);
    let backbone = FtSpannerBuilder::new("conversion")
        .faults(2)
        .build_artifact(&g)
        .expect("backbone artifact builds");
    let h = generate::connected_gnp(
        24,
        0.35,
        generate::WeightKind::Uniform { min: 1.0, max: 4.0 },
        &mut rng,
    );
    let mesh = FtSpannerBuilder::new("conversion")
        .faults(1)
        .build_artifact(&h)
        .expect("mesh artifact builds");
    let mut engine = Engine::new();
    engine.register("backbone", backbone);
    engine.register("mesh", mesh);
    engine
}

/// A mixed batch: every query kind, repeated and fresh fault scopes, both
/// artifacts, plus queries that must fail with typed errors (unknown
/// artifact, out-of-range vertex, over-budget scope, wrong fault model).
fn mixed_batch(seed: u64) -> Vec<Query> {
    let scopes = [
        vec![],
        vec![NodeId::new(3)],
        vec![NodeId::new(5), NodeId::new(11)],
        vec![NodeId::new(17)],
    ];
    let mut queries = Vec::new();
    for q in 0..240usize {
        let (name, n) = if q % 3 == 0 {
            ("mesh", 24)
        } else {
            ("backbone", 40)
        };
        let scope = if name == "mesh" {
            // mesh's budget is 1: only scopes of size <= 1 are valid here.
            scopes[q % 2].clone()
        } else {
            scopes[q % scopes.len()].clone()
        };
        let u = NodeId::new((q * 7 + 1) % n);
        let v = NodeId::new((q * 11 + 3) % n);
        queries.push(match q % 5 {
            0 => Query::certificate(name, scope, u, v),
            1 => Query::path(name, scope, u, v),
            _ => Query::distance(name, scope, u, v),
        });
    }
    // Typed-error queries: each must come back as the SAME CoreError the
    // in-process engine returns.
    queries.push(Query::distance(
        "ghost",
        vec![],
        NodeId::new(0),
        NodeId::new(1),
    ));
    queries.push(Query::distance(
        "backbone",
        vec![],
        NodeId::new(4000),
        NodeId::new(1),
    ));
    queries.push(Query::path(
        "backbone",
        vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        NodeId::new(4),
        NodeId::new(5),
    ));
    queries.push(
        Query::distance("backbone", vec![], NodeId::new(6), NodeId::new(7))
            .with_edge_faults(vec![(NodeId::new(6), NodeId::new(8))]),
    );
    queries.push(Query::certificate(
        "mesh",
        vec![NodeId::new(1), NodeId::new(2)],
        NodeId::new(0),
        NodeId::new(3),
    ));
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x51);
    queries.shuffle(&mut rng);
    queries
}

#[test]
fn server_results_are_identical_to_in_process_at_every_worker_count() {
    let engine = build_engine(2011);
    let queries = mixed_batch(2011);
    let expected = engine.run_batch(&queries);
    assert_eq!(expected.len(), queries.len());
    let error_count = expected.iter().filter(|r| r.is_err()).count();
    assert!(
        error_count >= 5,
        "the batch must exercise typed errors (got {error_count})"
    );

    for workers in [1usize, 2, 8] {
        let server = Server::bind(
            engine.clone(),
            "127.0.0.1:0",
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .expect("loopback bind")
        .spawn()
        .expect("server spawns");

        // Whole batch in one frame.
        let mut client = Client::connect(server.addr()).expect("loopback connect");
        let one_shot = client
            .run_batch(&queries)
            .expect("request succeeds")
            .expect_results()
            .expect("batch is admitted");
        assert_eq!(
            one_shot, expected,
            "one-frame batch differs at workers={workers}"
        );

        // Same batch chunked across many frames: per-query answers are
        // independent of batch composition, so the concatenation must match
        // the one-shot result too.
        let mut chunked = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(17) {
            chunked.extend(
                client
                    .run_batch(chunk)
                    .expect("request succeeds")
                    .expect_results()
                    .expect("batch is admitted"),
            );
        }
        assert_eq!(
            chunked, expected,
            "chunked batch differs at workers={workers}"
        );

        drop(client);
        let stats = server.shutdown().expect("clean shutdown");
        let requests = 1 + queries.len().div_ceil(17) as u64;
        assert_eq!(stats.batches_completed, requests);
        assert_eq!(stats.batches_rejected, 0);
        assert_eq!(stats.queue_depth, 0);
    }
}

#[test]
fn artifact_listing_and_stats_reflect_the_engine() {
    let engine = build_engine(7);
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind")
        .spawn()
        .expect("server spawns");
    let mut client = Client::connect(server.addr()).expect("loopback connect");

    let mut artifacts = client.artifacts().expect("listing succeeds");
    artifacts.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(artifacts.len(), 2);
    assert_eq!(artifacts[0].name, "backbone");
    assert_eq!(artifacts[0].fault_budget, 2);
    assert_eq!(artifacts[0].nodes, 40);
    assert!(artifacts[0].spanner_edges > 0);
    assert_eq!(artifacts[1].name, "mesh");
    assert_eq!(artifacts[1].fault_budget, 1);
    assert_eq!(artifacts[1].nodes, 24);

    let before = client.stats().expect("stats succeed");
    assert_eq!(before.batches_completed, 0);
    client
        .run_batch(&[Query::distance(
            "backbone",
            vec![],
            NodeId::new(0),
            NodeId::new(5),
        )])
        .expect("request succeeds")
        .expect_results()
        .expect("batch admitted");
    let after = client.stats().expect("stats succeed");
    assert_eq!(after.batches_completed, 1);
    assert_eq!(after.engine.queries, 1);
    assert_eq!(after.connections_accepted, 1);

    drop(client);
    server.shutdown().expect("clean shutdown");
}
