//! Fuzz-style battery for the wire-protocol decoders.
//!
//! Seeded (fully reproducible) adversarial inputs — random bytes, truncated
//! frames, oversized declared lengths, version skew, mutated valid frames —
//! must all decode to **typed** `NetError`s: no panics, no allocation bombs,
//! no silent successes on garbage.

use fault_tolerant_spanners::core::CoreError;
use fault_tolerant_spanners::prelude::*;
use fault_tolerant_spanners::QueryOutcome;
use ftspan_net::{
    DeltaApplyInfo, NetError, Request, Response, MAX_FRAME_LEN, PROTOCOL_MAGIC, PROTOCOL_VERSION,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    request.write_to(&mut out).expect("encoding succeeds");
    out
}

fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    response.write_to(&mut out).expect("encoding succeeds");
    out
}

/// A frame with a hand-built header, for forging bad versions/tags/lengths.
fn raw_frame(version: u32, tag: [u8; 4], declared_len: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&PROTOCOL_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&tag);
    out.extend_from_slice(&declared_len.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn sample_request() -> Request {
    Request::RunBatch(vec![
        Query::distance(
            "backbone",
            vec![NodeId::new(3)],
            NodeId::new(0),
            NodeId::new(5),
        ),
        Query::path("mesh", vec![], NodeId::new(1), NodeId::new(2)),
        Query::certificate(
            "backbone",
            vec![NodeId::new(1), NodeId::new(2)],
            NodeId::new(4),
            NodeId::new(6),
        )
        .with_edge_faults(vec![(NodeId::new(4), NodeId::new(7))]),
    ])
}

fn sample_apply_request() -> Request {
    Request::ApplyDeltas {
        artifact: "backbone".into(),
        deltas: vec![
            EdgeDelta::Insert {
                u: NodeId::new(3),
                v: NodeId::new(9),
                weight: 1.25,
            },
            EdgeDelta::Delete {
                u: NodeId::new(0),
                v: NodeId::new(5),
            },
            EdgeDelta::Reweight {
                u: NodeId::new(3),
                v: NodeId::new(9),
                weight: 4.0,
            },
        ],
    }
}

fn sample_response() -> Response {
    Response::Batch(vec![
        Ok(QueryOutcome::Distance(2.5)),
        Ok(QueryOutcome::Distance(f64::INFINITY)),
        Ok(QueryOutcome::Path(Some(vec![
            NodeId::new(0),
            NodeId::new(9),
        ]))),
        Ok(QueryOutcome::Path(None)),
        Err(CoreError::InvalidParameter {
            message: "no artifact named `ghost`".into(),
        }),
    ])
}

#[test]
fn random_bytes_decode_to_typed_errors_without_panicking() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF422);
    for _ in 0..2000 {
        let len = rng.gen_range(0..300usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Random bytes essentially never start with the 4-byte magic, so
        // both decoders must return a typed error (and absolutely must not
        // panic or hang).
        let req = Request::read_from(&mut &bytes[..]);
        let resp = Response::read_from(&mut &bytes[..]);
        assert!(req.is_err(), "random bytes decoded as a request: {bytes:?}");
        assert!(
            resp.is_err(),
            "random bytes decoded as a response: {bytes:?}"
        );
    }
}

#[test]
fn random_payloads_under_a_valid_header_never_panic() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF423);
    let tags: [[u8; 4]; 6] = [*b"QBAT", *b"LIST", *b"RBAT", *b"RSTA", *b"ADLT", *b"RADL"];
    for round in 0..2000 {
        let len = rng.gen_range(0..200usize);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let tag = tags[round % tags.len()];
        let wire = raw_frame(PROTOCOL_VERSION, tag, payload.len() as u64, &payload);
        // Structurally valid frame, garbage payload: decoding must finish
        // (no panic, no unbounded allocation) with Ok or a typed error.
        let _ = Request::read_from(&mut &wire[..]);
        let _ = Response::read_from(&mut &wire[..]);
    }
}

fn sample_apply_response() -> Response {
    Response::DeltasApplied(Ok(DeltaApplyInfo {
        version: 4,
        applied: 3,
        last_seq: 17,
        rebuilt: false,
    }))
}

#[test]
fn every_truncation_of_a_valid_frame_is_closed_or_truncated() {
    for wire in [
        encode_request(&sample_request()),
        encode_request(&sample_apply_request()),
        encode_response(&sample_response()),
        encode_response(&sample_apply_response()),
    ] {
        for cut in 0..wire.len() {
            let req = Request::read_from(&mut &wire[..cut]);
            let resp = Response::read_from(&mut &wire[..cut]);
            for result in [req.map(|_| ()), resp.map(|_| ())] {
                match result {
                    Err(NetError::Closed) => {
                        assert_eq!(cut, 0, "Closed is only for EOF before the first byte")
                    }
                    Err(NetError::Truncated { .. }) => {}
                    other => panic!(
                        "cut at {cut}/{}: expected Closed/Truncated, got {other:?}",
                        wire.len()
                    ),
                }
            }
        }
    }
}

#[test]
fn oversized_declared_lengths_are_rejected_before_any_payload_read() {
    for declared in [MAX_FRAME_LEN + 1, u64::MAX, u64::MAX / 2] {
        let wire = raw_frame(PROTOCOL_VERSION, *b"QBAT", declared, b"tiny");
        match Request::read_from(&mut &wire[..]) {
            Err(NetError::FrameTooLarge { declared: d, limit }) => {
                assert_eq!(d, declared);
                assert_eq!(limit, MAX_FRAME_LEN);
            }
            other => panic!("declared {declared}: expected FrameTooLarge, got {other:?}"),
        }
    }
    // A maximal declared length with a short body must cost only the bytes
    // that actually arrived (read_to_end through Read::take), then fail as
    // a truncation — not allocate 64 MiB up front.
    let wire = raw_frame(PROTOCOL_VERSION, *b"QBAT", MAX_FRAME_LEN, b"ten bytes!");
    assert!(matches!(
        Request::read_from(&mut &wire[..]),
        Err(NetError::Truncated { .. })
    ));
}

#[test]
fn version_skew_is_a_typed_error_carrying_both_versions() {
    // Version 1 (pre-`ApplyDeltas`) is now skew too: the codec refuses to
    // guess what an older peer meant.
    for found in [0u32, 1, 7, u32::MAX] {
        let wire = raw_frame(found, *b"QBAT", 0, b"");
        match Request::read_from(&mut &wire[..]) {
            Err(NetError::VersionSkew { found: f, expected }) => {
                assert_eq!(f, found);
                assert_eq!(expected, PROTOCOL_VERSION);
            }
            other => panic!("version {found}: expected VersionSkew, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_and_unknown_tags_are_typed() {
    let mut wire = encode_request(&sample_request());
    wire[..4].copy_from_slice(b"HTTP");
    assert_eq!(
        Request::read_from(&mut &wire[..]),
        Err(NetError::BadMagic { found: *b"HTTP" })
    );

    let wire = raw_frame(PROTOCOL_VERSION, *b"ZZZZ", 0, b"");
    assert_eq!(
        Request::read_from(&mut &wire[..]),
        Err(NetError::UnknownTag { tag: *b"ZZZZ" })
    );
    assert_eq!(
        Response::read_from(&mut &wire[..]),
        Err(NetError::UnknownTag { tag: *b"ZZZZ" })
    );
}

#[test]
fn mutated_valid_frames_never_panic_and_errors_stay_typed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF424);
    let originals = [
        encode_request(&sample_request()),
        encode_request(&sample_apply_request()),
        encode_response(&sample_response()),
        encode_response(&sample_apply_response()),
    ];
    for round in 0..4000 {
        let mut wire = originals[round % originals.len()].clone();
        for _ in 0..rng.gen_range(1..9usize) {
            let at = rng.gen_range(0..wire.len());
            wire[at] = rng.gen();
        }
        // Any mutation outcome is acceptable except a panic, a hang, or an
        // allocation proportional to a lying length instead of real bytes.
        let _ = Request::read_from(&mut &wire[..]);
        let _ = Response::read_from(&mut &wire[..]);
    }
}

#[test]
fn lying_interior_sequence_counts_fail_fast() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF425);
    let wire = encode_request(&sample_request());
    // Splice huge little-endian u64s over every aligned window: whichever
    // length or count field gets hit, decoding must fail (typed) before
    // trusting the value — counts are validated against remaining bytes.
    for _ in 0..500 {
        let mut forged = wire.clone();
        let at = rng.gen_range(20..forged.len().saturating_sub(8));
        let lie: u64 = rng.gen_range(1u64 << 32..u64::MAX);
        forged[at..at + 8].copy_from_slice(&lie.to_le_bytes());
        match Request::read_from(&mut &forged[..]) {
            Ok(_) => {} // the splice may have missed every length field
            Err(
                NetError::Malformed { .. }
                | NetError::Truncated { .. }
                | NetError::FrameTooLarge { .. }
                | NetError::BadMagic { .. }
                | NetError::VersionSkew { .. }
                | NetError::UnknownTag { .. },
            ) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
}
