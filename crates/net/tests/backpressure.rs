//! Backpressure and graceful-shutdown acceptance tests.
//!
//! A server with one worker and a pending-batch queue of capacity 1 is
//! driven into saturation: while the worker grinds a deliberately slow
//! batch and a second batch sits in the queue, a probe batch must be
//! answered with a **typed** `Overloaded` rejection — not a hang, not a
//! dropped connection — and shutdown must still drain both admitted batches
//! to completion, delivering their full responses.

use fault_tolerant_spanners::prelude::*;
use ftspan_net::{BatchReply, Client, Server, ServerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::thread;
use std::time::{Duration, Instant};

fn build_engine(seed: u64, n: usize) -> Engine {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generate::connected_gnp(n, 24.0 / n as f64, generate::WeightKind::Unit, &mut rng);
    let artifact = FtSpannerBuilder::new("conversion")
        .faults(2)
        .build_artifact(&g)
        .expect("artifact builds");
    let mut engine = Engine::new();
    engine.register("backbone", artifact);
    engine
}

/// A batch designed to keep a worker busy for a while: thousands of path
/// queries, (almost) every one under a distinct two-vertex fault scope, so
/// the planner cannot amortize session construction across queries.
fn slow_batch(n: usize, count: usize) -> Vec<Query> {
    (0..count)
        .map(|q| {
            let a = q % n;
            let mut b = (q / n) % n;
            if b == a {
                b = (b + 1) % n;
            }
            Query::path(
                "backbone",
                vec![NodeId::new(a), NodeId::new(b)],
                NodeId::new((q * 3 + 1) % n),
                NodeId::new((q * 5 + 2) % n),
            )
        })
        .collect()
}

#[test]
fn full_queue_yields_typed_overloaded_and_shutdown_drains_admitted_batches() {
    let n = 96;
    let engine = build_engine(41, n);
    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .expect("loopback bind")
    .spawn()
    .expect("server spawns");
    let addr = server.addr();

    let slow = slow_batch(n, 6000);
    let slow_len = slow.len();

    // Client A: occupies the single worker.
    let a = {
        let slow = slow.clone();
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("client A connects");
            client
                .run_batch(&slow)
                .expect("request A succeeds")
                .expect_results()
                .expect("batch A is admitted and drained")
                .len()
        })
    };
    // Wait until A's batch has actually STARTED on the worker.
    wait_until(&server, |s| s.batches_started == 1, "batch A starts");

    // Client B: fills the queue (capacity 1) while the worker is busy.
    let b = {
        let slow = slow.clone();
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("client B connects");
            client
                .run_batch(&slow)
                .expect("request B succeeds")
                .expect_results()
                .expect("batch B is admitted and drained")
                .len()
        })
    };
    // Wait until B's batch is sitting in the queue: worker still on A
    // (started == 1, completed == 0) and queue depth == 1.
    wait_until(
        &server,
        |s| s.batches_started == 1 && s.batches_completed == 0 && s.queue_depth == 1,
        "batch B queues",
    );

    // Probe: the queue is full, so admission control must answer with a
    // typed Overloaded immediately — the connection stays usable.
    let mut probe = Client::connect(addr).expect("probe connects");
    let tiny = [Query::distance(
        "backbone",
        vec![],
        NodeId::new(0),
        NodeId::new(1),
    )];
    let reply = probe.run_batch(&tiny).expect("probe request succeeds");
    assert!(
        reply.is_overloaded(),
        "expected a typed Overloaded while saturated, got {reply:?}"
    );
    assert_eq!(reply, BatchReply::Overloaded);
    // The rejection is per-batch, not per-connection: the same connection
    // can still talk to the server.
    assert!(!probe.artifacts().expect("listing still works").is_empty());
    drop(probe);

    // Graceful shutdown must drain BOTH admitted batches: A (in flight) and
    // B (queued) run to completion and their full responses are delivered.
    let stats = server.shutdown().expect("clean shutdown");
    assert_eq!(a.join().expect("client A thread"), slow_len);
    assert_eq!(b.join().expect("client B thread"), slow_len);
    assert_eq!(stats.batches_completed, 2, "both admitted batches drained");
    assert!(stats.batches_rejected >= 1, "the probe was rejected");
    assert_eq!(stats.queue_depth, 0, "nothing left behind in the queue");
}

#[test]
fn batches_after_shutdown_request_get_a_typed_shutting_down_reply() {
    let engine = build_engine(43, 32);
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind")
        .spawn()
        .expect("server spawns");
    let mut client = Client::connect(server.addr()).expect("client connects");

    // A wire-level shutdown request is acknowledged...
    client.shutdown_server().expect("shutdown acknowledged");
    // ...and every later batch on any connection is refused with a typed
    // ShuttingDown, not an error or a hang.
    let reply = client
        .run_batch(&[Query::distance(
            "backbone",
            vec![],
            NodeId::new(0),
            NodeId::new(1),
        )])
        .expect("request still gets a reply");
    assert_eq!(reply, BatchReply::ShuttingDown);
    assert!(reply.expect_results().is_err());

    drop(client);
    let stats = server.shutdown().expect("clean shutdown");
    assert_eq!(stats.batches_completed, 0);
}

fn wait_until(
    server: &ftspan_net::RunningServer,
    condition: impl Fn(&ftspan_net::ServerStats) -> bool,
    what: &str,
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = server.stats();
        if condition(&stats) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; stats: {stats:?}"
        );
        thread::sleep(Duration::from_millis(1));
    }
}
