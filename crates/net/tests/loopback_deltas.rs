//! Loopback tests for the `ApplyDeltas` frame and the warm hand-off.
//!
//! A delta batch pushed through a real TCP connection must (a) produce the
//! same artifact a from-scratch rebuild on the post-delta graph produces,
//! (b) surface typed errors for bad targets, and (c) never let a concurrent
//! query batch observe a half-swapped artifact: every batch is answered
//! entirely by one version.

use fault_tolerant_spanners::core::CoreError;
use fault_tolerant_spanners::prelude::*;
use ftspan_net::{Client, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A recipe whose artifact on a ring is fully determined: any 3-spanner of
/// a unit-weight cycle must keep every cycle edge (the detour is longer than
/// the stretch bound), so distances are exact and version-revealing.
fn ring_recipe(faults: usize) -> BuildRecipe {
    let request = SpannerRequest {
        faults,
        stretch: 3.0,
        // Enough iterations that (for this pinned seed) every ring edge is
        // covered by some sampled survivor set — distances are then exact.
        iterations: Some(40),
        threads: Some(1),
        ..SpannerRequest::default()
    };
    BuildRecipe::new("corollary-2.2", request, 2011)
}

fn ring_engine(n: usize) -> (Engine, Graph) {
    let g = generate::cycle(n);
    let live = DynamicArtifact::build(&g, ring_recipe(1)).expect("ring artifact builds");
    let mut engine = Engine::new();
    engine.register_dynamic("ring", live);
    (engine, g)
}

#[test]
fn deltas_over_the_wire_match_a_fresh_rebuild_on_the_post_delta_graph() {
    let (engine, g) = ring_engine(20);
    let server = Server::bind(engine.clone(), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind")
        .spawn()
        .expect("server spawns");
    let mut client = Client::connect(server.addr()).expect("loopback connect");

    // A bad target is a typed inner error, not a transport failure.
    let ghost = client
        .apply_deltas(
            "ghost",
            &[EdgeDelta::Delete {
                u: NodeId::new(0),
                v: NodeId::new(1),
            }],
        )
        .expect("transport succeeds");
    assert!(matches!(ghost, Err(CoreError::UnknownArtifact { .. })));

    // Cut the ring and add a chord.
    let deltas = [
        EdgeDelta::Delete {
            u: NodeId::new(0),
            v: NodeId::new(1),
        },
        EdgeDelta::Insert {
            u: NodeId::new(2),
            v: NodeId::new(11),
            weight: 0.5,
        },
    ];
    let info = client
        .apply_deltas("ring", &deltas)
        .expect("transport succeeds")
        .expect("deltas apply");
    assert_eq!(info.version, 2);
    assert_eq!(info.applied, 2);
    assert_eq!(info.last_seq, 2);

    // The served artifact is bit-identical to a from-scratch dynamic build
    // on the replayed post-delta graph.
    let replayed = engine
        .dynamic_artifact("ring")
        .expect("dynamic artifact")
        .log()
        .replay(&g)
        .expect("replay succeeds");
    let fresh = DynamicArtifact::build(&replayed, ring_recipe(1)).expect("fresh build");
    assert_eq!(
        fresh.artifact(),
        engine.artifact("ring").expect("served artifact").as_ref()
    );

    // And the wire answers match the fresh artifact's engine answers.
    let queries: Vec<Query> = (0..20)
        .map(|v| Query::distance("ring", vec![], NodeId::new(0), NodeId::new(v)))
        .collect();
    let mut expected_engine = Engine::new();
    expected_engine.register_dynamic("ring", fresh);
    let expected = expected_engine.run_batch(&queries);
    let got = client
        .run_batch(&queries)
        .expect("transport succeeds")
        .expect_results()
        .expect("batch admitted");
    assert_eq!(got, expected);

    // The engine counters made it into the wire stats.
    let stats = client.stats().expect("stats succeed");
    assert_eq!(stats.engine.swaps, 1);
    assert_eq!(stats.engine.deltas_applied, 2);

    drop(client);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_query_batches_never_observe_a_mixed_version_answer() {
    let n = 24;
    let (engine, g) = ring_engine(n);

    // The version-revealing probe: dist(0, 1) is 1.0 on the intact ring and
    // n - 1 going the long way once the (0, 1) edge is deleted. Pin both
    // expectations in-process first so a drifting construction fails loudly
    // here, not as a flaky concurrency assertion.
    let probe = Query::distance("ring", vec![], NodeId::new(0), NodeId::new(1));
    let old_answer = match engine.run_batch(std::slice::from_ref(&probe))[0] {
        Ok(QueryOutcome::Distance(d)) => d,
        ref other => panic!("probe failed pre-swap: {other:?}"),
    };
    assert_eq!(old_answer, 1.0, "a 3-spanner of a ring keeps every edge");
    let delta = EdgeDelta::Delete {
        u: NodeId::new(0),
        v: NodeId::new(1),
    };
    let cut = DeltaLog::from_records(vec![SequencedDelta {
        seq: 1,
        delta: delta.clone(),
    }])
    .expect("a single record is a valid log")
    .replay(&g)
    .expect("replay succeeds");
    let fresh = DynamicArtifact::build(&cut, ring_recipe(1)).expect("post-cut build");
    let mut fresh_engine = Engine::new();
    fresh_engine.register_dynamic("ring", fresh);
    let new_answer = match fresh_engine.run_batch(std::slice::from_ref(&probe))[0] {
        Ok(QueryOutcome::Distance(d)) => d,
        ref other => panic!("probe failed post-cut: {other:?}"),
    };
    assert_eq!(
        new_answer,
        (n - 1) as f64,
        "the detour spans the whole ring"
    );

    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("loopback bind")
    .spawn()
    .expect("server spawns");
    let addr = server.addr();

    // Reader threads hammer the probe in homogeneous batches while the main
    // thread swaps versions. Each batch must be answered entirely by ONE
    // version: all 1.0 or all n - 1, never a mixture.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let probe = probe.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                let batch: Vec<Query> = std::iter::repeat_with(|| probe.clone()).take(16).collect();
                let mut batches = 0u64;
                let mut last = f64::NAN;
                while !stop.load(Ordering::Relaxed) {
                    let results = client
                        .run_batch(&batch)
                        .expect("transport succeeds")
                        .expect_results()
                        .expect("batch admitted");
                    let distances: Vec<f64> = results
                        .into_iter()
                        .map(|r| match r {
                            Ok(QueryOutcome::Distance(d)) => d,
                            other => panic!("probe failed mid-churn: {other:?}"),
                        })
                        .collect();
                    let first = distances[0];
                    assert!(
                        distances.iter().all(|&d| d == first),
                        "mixed-version batch: {distances:?}"
                    );
                    last = first;
                    batches += 1;
                }
                (batches, last)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    let mut writer = Client::connect(addr).expect("writer connects");
    let info = writer
        .apply_deltas("ring", &[delta])
        .expect("transport succeeds")
        .expect("deltas apply");
    assert_eq!(info.version, 2);
    // Let readers run against the swapped version before stopping them.
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    for reader in readers {
        let (batches, last) = reader.join().expect("reader thread survives");
        assert!(batches > 0, "a reader never completed a batch");
        // The final batch, issued well after the swap acknowledgement, must
        // already serve the new version.
        assert_eq!(last, new_answer, "a reader is stuck on the old version");
    }

    drop(writer);
    server.shutdown().expect("clean shutdown");
}
