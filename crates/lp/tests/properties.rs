//! Property-based tests for the simplex solver: optimality certificates on
//! randomly generated covering and packing LPs.

use ftspan_lp::{ConstraintOp, LpProblem, SimplexSolver};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random covering LPs (minimize c·x, A x >= b, all data non-negative)
    /// the simplex solution is feasible and no worse than two easily-computed
    /// feasible points.
    #[test]
    fn covering_lp_solution_is_feasible_and_competitive(
        nvars in 1usize..6,
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.0f64..3.0, 1..6), 0.1f64..4.0),
            1..6
        ),
        costs in proptest::collection::vec(0.1f64..5.0, 1..6),
    ) {
        let mut lp = LpProblem::minimize(nvars);
        for j in 0..nvars {
            lp.set_objective(j, costs.get(j).copied().unwrap_or(1.0));
        }
        let mut usable_rows = 0usize;
        for (coeffs, rhs) in &rows {
            let sparse: Vec<(usize, f64)> = coeffs
                .iter()
                .enumerate()
                .filter(|(j, &c)| *j < nvars && c > 0.05)
                .map(|(j, &c)| (j, c))
                .collect();
            if sparse.is_empty() {
                continue;
            }
            lp.add_constraint(sparse, ConstraintOp::Ge, *rhs);
            usable_rows += 1;
        }
        if usable_rows == 0 {
            return Ok(());
        }
        let solution = SimplexSolver::default().solve(&lp).unwrap();
        // Feasible within tolerance.
        prop_assert!(lp.max_violation(&solution.values) < 1e-5);
        // Objective matches the reported value.
        prop_assert!((lp.objective_value(&solution.values) - solution.objective).abs() < 1e-6);
        // Competitive against the naive feasible point x_j = max_i rhs_i / a_ij
        // computed per variable being set large enough to satisfy everything
        // alone is hard in general; instead check against "all variables =
        // max rhs / min positive coefficient", which is feasible.
        let mut max_ratio: f64 = 0.0;
        for c in lp.constraints() {
            let total: f64 = c.coeffs.iter().map(|&(_, a)| a).sum();
            max_ratio = max_ratio.max(c.rhs / total);
        }
        let naive = vec![max_ratio; nvars];
        prop_assert!(lp.max_violation(&naive) < 1e-6);
        prop_assert!(solution.objective <= lp.objective_value(&naive) + 1e-6);
    }

    /// On random packing LPs (maximize c·x, A x <= b) the solution is feasible
    /// and at least as good as putting everything on the single best variable.
    #[test]
    fn packing_lp_solution_is_feasible_and_competitive(
        nvars in 1usize..6,
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.1f64..3.0, 1..6), 1.0f64..5.0),
            1..6
        ),
        gains in proptest::collection::vec(0.1f64..5.0, 1..6),
    ) {
        let mut lp = LpProblem::minimize(nvars);
        for j in 0..nvars {
            // Maximize sum gains*x == minimize -gains*x.
            lp.set_objective(j, -gains.get(j).copied().unwrap_or(1.0));
            lp.set_upper_bound(j, 10.0);
        }
        for (coeffs, rhs) in &rows {
            let sparse: Vec<(usize, f64)> = coeffs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j < nvars)
                .map(|(j, &c)| (j, c))
                .collect();
            if sparse.is_empty() {
                continue;
            }
            lp.add_constraint(sparse, ConstraintOp::Le, *rhs);
        }
        let solution = SimplexSolver::default().solve(&lp).unwrap();
        prop_assert!(lp.max_violation(&solution.values) < 1e-5);
        // Single-variable feasible point: x_0 = min over rows of rhs / a_{i0},
        // capped by the upper bound.
        let mut limit = 10.0f64;
        for c in lp.constraints() {
            if let Some(&(_, a)) = c.coeffs.iter().find(|&&(j, _)| j == 0) {
                if a > 0.0 {
                    limit = limit.min(c.rhs / a);
                }
            }
        }
        let mut single = vec![0.0; nvars];
        single[0] = limit;
        prop_assert!(lp.max_violation(&single) < 1e-6);
        prop_assert!(solution.objective <= lp.objective_value(&single) + 1e-6);
    }
}
