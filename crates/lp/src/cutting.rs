//! Cutting-plane driver around the simplex solver.
//!
//! LP (4) of the paper has exponentially many knapsack-cover constraints;
//! Lemma 3.2 shows they can be separated in polynomial time. The paper then
//! invokes the Ellipsoid method; here we use the standard practical
//! alternative — a cutting-plane loop: solve the current relaxation, ask the
//! separation oracle for violated constraints, add them and re-solve, until
//! the oracle is satisfied.

use crate::{Constraint, LpError, LpProblem, Result, SimplexSolver, Solution};

/// A separation oracle: given a candidate solution, returns violated
/// constraints to add to the relaxation (an empty vector means the point is
/// feasible for the full constraint system).
pub trait SeparationOracle {
    /// Returns constraints violated by `values`.
    ///
    /// Implementations should only return constraints that are genuinely
    /// violated (beyond their own tolerance); returning already-satisfied
    /// constraints may prevent the cutting-plane loop from terminating early
    /// but never affects correctness.
    fn separate(&mut self, values: &[f64]) -> Vec<Constraint>;
}

impl<F> SeparationOracle for F
where
    F: FnMut(&[f64]) -> Vec<Constraint>,
{
    fn separate(&mut self, values: &[f64]) -> Vec<Constraint> {
        self(values)
    }
}

/// Statistics about a cutting-plane solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutStats {
    /// Number of solve/separate rounds performed.
    pub rounds: usize,
    /// Total number of cuts added over all rounds.
    pub cuts_added: usize,
    /// Whether the final solution satisfied the oracle (`true`) or the round
    /// limit was reached first (`false`).
    pub separated_to_optimality: bool,
}

/// Solves `problem` to optimality over the full constraint system described
/// by `problem`'s explicit constraints *plus* everything the separation
/// oracle can generate.
///
/// The problem is mutated: cuts returned by the oracle are added as ordinary
/// constraints.
///
/// # Errors
///
/// Propagates any error of the underlying [`SimplexSolver`]; in particular
/// the relaxation may be reported infeasible or unbounded.
pub fn cutting_plane_solve(
    problem: &mut LpProblem,
    solver: &SimplexSolver,
    oracle: &mut dyn SeparationOracle,
    max_rounds: usize,
) -> Result<(Solution, CutStats)> {
    cutting_plane_solve_with_resolve_budget(problem, solver, solver, oracle, max_rounds)
}

/// Like [`cutting_plane_solve`], but with a separate solver configuration for
/// the re-solves after cuts are added. Cut systems can be far more degenerate
/// than the base problem, so callers may give re-solves a smaller pivot
/// budget: when a re-solve exceeds it, the previous round's optimum — the
/// exact optimum of a valid, slightly weaker relaxation — is returned instead
/// of an error. The *initial* solve always uses `solver` (typically the full
/// budget); if it fails there is no earlier solution to fall back to and the
/// error propagates.
pub fn cutting_plane_solve_with_resolve_budget(
    problem: &mut LpProblem,
    solver: &SimplexSolver,
    resolve_solver: &SimplexSolver,
    oracle: &mut dyn SeparationOracle,
    max_rounds: usize,
) -> Result<(Solution, CutStats)> {
    let mut stats = CutStats {
        rounds: 0,
        cuts_added: 0,
        separated_to_optimality: false,
    };
    let mut solution = solver.solve(problem)?;
    loop {
        stats.rounds += 1;
        let cuts = oracle.separate(&solution.values);
        if cuts.is_empty() {
            stats.separated_to_optimality = true;
            return Ok((solution, stats));
        }
        let mut added_this_round = 0usize;
        for cut in cuts {
            problem.add_constraint_checked(cut)?;
            added_this_round += 1;
        }
        match resolve_solver.solve(problem) {
            // Only count this round's cuts once a solution that actually
            // satisfies them exists; on the fallback below the returned
            // solution never saw them.
            Ok(next) => {
                stats.cuts_added += added_this_round;
                solution = next;
            }
            // Heavily degenerate cut systems can stall the simplex. The
            // previous round's optimum is the exact optimum of a valid
            // (slightly weaker) relaxation — every cut is a valid
            // inequality — so it is still a correct lower bound and a
            // feasible fractional point; return it instead of failing.
            Err(LpError::IterationLimit { .. }) => return Ok((solution, stats)),
            Err(e) => return Err(e),
        }
        if stats.rounds >= max_rounds {
            return Ok((solution, stats));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp;

    #[test]
    fn lazy_constraints_reach_the_true_optimum() {
        // minimize x + y with the full system { x >= 1, y >= 2 } but only
        // x >= 1 stated upfront; y >= 2 is produced by the oracle on demand.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);

        let mut oracle = |values: &[f64]| {
            if values[1] < 2.0 - 1e-9 {
                vec![Constraint::new(vec![(1, 1.0)], ConstraintOp::Ge, 2.0)]
            } else {
                Vec::new()
            }
        };
        let (solution, stats) =
            cutting_plane_solve(&mut lp, &SimplexSolver::default(), &mut oracle, 10).unwrap();
        assert!((solution.objective - 3.0).abs() < 1e-6);
        assert!(stats.separated_to_optimality);
        assert_eq!(stats.cuts_added, 1);
        assert!(stats.rounds >= 2);
    }

    #[test]
    fn no_cuts_needed_terminates_in_one_round() {
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 5.0);
        let mut oracle = |_: &[f64]| Vec::new();
        let (solution, stats) =
            cutting_plane_solve(&mut lp, &SimplexSolver::default(), &mut oracle, 10).unwrap();
        assert!((solution.objective - 5.0).abs() < 1e-6);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.cuts_added, 0);
    }

    #[test]
    fn round_limit_is_respected() {
        // An oracle that always produces a (progressively tighter) cut.
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(0, 1.0);
        let mut level = 0.0f64;
        let mut oracle = move |_: &[f64]| {
            level += 1.0;
            vec![Constraint::new(vec![(0, 1.0)], ConstraintOp::Ge, level)]
        };
        let (solution, stats) =
            cutting_plane_solve(&mut lp, &SimplexSolver::default(), &mut oracle, 3).unwrap();
        assert!(!stats.separated_to_optimality);
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.cuts_added, 3);
        // The final solve reflects every added cut.
        assert!((solution.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_cover_style_cuts() {
        // A miniature version of the paper's LP (3) -> LP (4) situation:
        // minimize M*x + sum of 2 path variables f1, f2 with the weak
        // constraint 3x + f1 + f2 >= 3 (r = 2). The fractional optimum sets
        // x = 1/3 when M is small relative to... then knapsack-cover cuts
        // (r+1-|W|)x + sum_{P not in W} f_P >= r+1-|W| force x up to 1 once
        // both paths are saturated at 1.
        let m_cost = 30.0;
        let mut lp = LpProblem::minimize(3); // vars: x, f1, f2
        lp.set_objective(0, m_cost);
        lp.set_objective(1, 1.0);
        lp.set_objective(2, 1.0);
        lp.set_upper_bound(0, 1.0);
        lp.set_upper_bound(1, 1.0);
        lp.set_upper_bound(2, 1.0);
        lp.add_constraint(vec![(0, 3.0), (1, 1.0), (2, 1.0)], ConstraintOp::Ge, 3.0);
        // Without cuts: f1 = f2 = 1 and x = 1/3, objective = 12.
        let base = SimplexSolver::default().solve(&lp).unwrap();
        assert!((base.objective - 12.0).abs() < 1e-6);

        // Oracle adding the W = {f1, f2} knapsack-cover cut: x >= 1.
        let mut oracle = |values: &[f64]| {
            let x = values[0];
            if x < 1.0 - 1e-9 {
                vec![Constraint::new(vec![(0, 1.0)], ConstraintOp::Ge, 1.0)]
            } else {
                Vec::new()
            }
        };
        let (solution, stats) =
            cutting_plane_solve(&mut lp, &SimplexSolver::default(), &mut oracle, 10).unwrap();
        assert!(stats.separated_to_optimality);
        assert!((solution.values[0] - 1.0).abs() < 1e-6);
        assert!((solution.objective - 30.0).abs() < 1e-6);
    }
}
