//! Error type for the LP toolkit.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The LP has no feasible solution.
    Infeasible,
    /// The LP is unbounded below (for a minimization problem).
    Unbounded,
    /// The simplex solver hit its iteration limit before reaching optimality.
    IterationLimit {
        /// The number of pivots performed before giving up.
        iterations: usize,
    },
    /// The problem description itself is invalid.
    InvalidProblem {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} pivots"
                )
            }
            LpError::InvalidProblem { message } => write!(f, "invalid linear program: {message}"),
        }
    }
}

impl StdError for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::IterationLimit { iterations: 7 }
            .to_string()
            .contains('7'));
        assert!(LpError::InvalidProblem {
            message: "bad".into()
        }
        .to_string()
        .contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: StdError + Send + Sync>() {}
        check::<LpError>();
    }
}
