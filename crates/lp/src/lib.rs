//! A small linear-programming toolkit.
//!
//! The `O(log n)`-approximation for minimum-cost `r`-fault-tolerant
//! 2-spanners (Section 3 of Dinitz & Krauthgamer, PODC 2011) solves a linear
//! program with polynomially many variables but exponentially many
//! knapsack-cover constraints, using a separation oracle. The paper invokes
//! the Ellipsoid method for this; this crate provides the practical
//! equivalent used by `ftspan-core`:
//!
//! * [`LpProblem`] — a minimization LP builder over non-negative variables.
//! * [`SimplexSolver`] — a dense two-phase primal simplex solver.
//! * [`cutting_plane_solve`] — the separation-oracle loop: solve the current
//!   relaxation, ask the oracle for violated constraints, add them, repeat.
//!
//! The substitution of simplex + cutting planes for the Ellipsoid method is
//! recorded in DESIGN.md; the LP being solved is identical.
//!
//! # Example
//!
//! ```
//! use ftspan_lp::{LpProblem, SimplexSolver, ConstraintOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // minimize x + 2y  subject to  x + y >= 1,  y >= 0.25
//! let mut lp = LpProblem::minimize(2);
//! lp.set_objective(0, 1.0);
//! lp.set_objective(1, 2.0);
//! lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 1.0);
//! lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Ge, 0.25);
//! let solution = SimplexSolver::default().solve(&lp)?;
//! assert!((solution.objective - 1.25).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cutting;
mod error;
mod problem;
mod simplex;

pub use cutting::{
    cutting_plane_solve, cutting_plane_solve_with_resolve_budget, CutStats, SeparationOracle,
};
pub use error::LpError;
pub use problem::{Constraint, ConstraintOp, LpProblem};
pub use simplex::{SimplexSolver, Solution, SolveStatus};

/// Result alias for LP operations.
pub type Result<T> = std::result::Result<T, LpError>;
