//! Dense two-phase primal simplex.

use crate::{ConstraintOp, LpError, LpProblem, Result};

/// Status of a solved linear program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// An optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The optimal objective value.
    pub objective: f64,
    /// The value of every original variable.
    pub values: Vec<f64>,
    /// Status of the solve (currently always [`SolveStatus::Optimal`]; errors
    /// are reported through [`LpError`]).
    pub status: SolveStatus,
    /// Number of simplex pivots performed (both phases).
    pub pivots: usize,
}

/// A dense two-phase primal simplex solver.
///
/// Phase 1 minimizes the sum of artificial variables to find a basic feasible
/// solution; phase 2 optimizes the real objective. Entering variables are
/// chosen by Dantzig's rule with a switch to Bland's rule after a degeneracy
/// streak to guarantee termination.
///
/// The solver is dense and intended for the medium-size LPs produced by the
/// 2-spanner relaxations (hundreds to a few thousand rows); it is not a
/// general-purpose industrial solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexSolver {
    /// Numerical tolerance for optimality and feasibility tests.
    pub tolerance: f64,
    /// Hard cap on the number of pivots (per phase) before giving up.
    pub max_iterations: usize,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        SimplexSolver {
            tolerance: 1e-8,
            max_iterations: 200_000,
        }
    }
}

struct Tableau {
    /// Row-major matrix: `rows` constraint rows, each of length `cols`
    /// (structural + slack + artificial variables, then the RHS).
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Objective row (same length as a tableau row).
    obj: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Index of the first artificial column.
    first_artificial: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    fn rhs_col(&self) -> usize {
        self.cols - 1
    }

    /// Performs a pivot on (row, col): normalizes the pivot row and
    /// eliminates the column from every other row and the objective row.
    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.cols;
        let pivot_value = self.at(row, col);
        debug_assert!(pivot_value.abs() > 1e-12, "pivot on a (near) zero element");
        let inv = 1.0 / pivot_value;
        for c in 0..cols {
            let v = self.at(row, c) * inv;
            self.set(row, c, v);
        }
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor != 0.0 {
                for c in 0..cols {
                    let v = self.at(r, c) - factor * self.at(row, c);
                    self.set(r, c, v);
                }
            }
        }
        let factor = self.obj[col];
        if factor != 0.0 {
            for c in 0..cols {
                self.obj[c] -= factor * self.at(row, c);
            }
        }
        self.basis[row] = col;
    }
}

impl SimplexSolver {
    /// Creates a solver with the given tolerance and iteration limit.
    pub fn new(tolerance: f64, max_iterations: usize) -> Self {
        SimplexSolver {
            tolerance,
            max_iterations,
        }
    }

    /// Solves the linear program to optimality.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] if no feasible point exists.
    /// * [`LpError::Unbounded`] if the objective is unbounded below.
    /// * [`LpError::IterationLimit`] if the pivot limit is exceeded.
    /// * [`LpError::InvalidProblem`] for malformed input (non-finite data).
    pub fn solve(&self, problem: &LpProblem) -> Result<Solution> {
        let n = problem.num_vars();
        for (j, &c) in problem.objective().iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::InvalidProblem {
                    message: format!("objective coefficient of variable {j} is not finite"),
                });
            }
        }

        // Collect all rows: explicit constraints plus upper bounds.
        type Row = (Vec<(usize, f64)>, ConstraintOp, f64);
        let mut rows: Vec<Row> = Vec::new();
        for c in problem.constraints() {
            rows.push((c.coeffs.clone(), c.op, c.rhs));
        }
        for (j, ub) in problem.upper_bounds().iter().enumerate() {
            if let Some(ub) = ub {
                rows.push((vec![(j, 1.0)], ConstraintOp::Le, *ub));
            }
        }

        let m = rows.len();
        if m == 0 {
            // With only non-negativity constraints the optimum is x = 0 as
            // long as the objective has no negative coefficient.
            if problem.objective().iter().any(|&c| c < 0.0) {
                return Err(LpError::Unbounded);
            }
            return Ok(Solution {
                objective: 0.0,
                values: vec![0.0; n],
                status: SolveStatus::Optimal,
                pivots: 0,
            });
        }

        // Count auxiliary columns. Every row gets either a slack (Le), a
        // surplus + artificial (Ge), or an artificial (Eq). Rows with a
        // negative RHS are negated first.
        let mut normalized = Vec::with_capacity(m);
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for (coeffs, op, rhs) in rows {
            let (coeffs, op, rhs) = if rhs < 0.0 {
                let flipped = coeffs.iter().map(|&(j, c)| (j, -c)).collect::<Vec<_>>();
                let op = match op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
                (flipped, op, -rhs)
            } else {
                (coeffs, op, rhs)
            };
            match op {
                ConstraintOp::Le => n_slack += 1,
                ConstraintOp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                ConstraintOp::Eq => n_art += 1,
            }
            normalized.push((coeffs, op, rhs));
        }

        let first_slack = n;
        let first_artificial = n + n_slack;
        let cols = n + n_slack + n_art + 1;
        let rhs_col = cols - 1;

        let mut tab = Tableau {
            data: vec![0.0; m * cols],
            rows: m,
            cols,
            obj: vec![0.0; cols],
            basis: vec![0; m],
            first_artificial,
        };

        let mut slack_cursor = first_slack;
        let mut art_cursor = first_artificial;
        for (i, (coeffs, op, rhs)) in normalized.iter().enumerate() {
            for &(j, c) in coeffs {
                if !c.is_finite() || !rhs.is_finite() {
                    return Err(LpError::InvalidProblem {
                        message: format!("non-finite data in constraint row {i}"),
                    });
                }
                let v = tab.at(i, j) + c;
                tab.set(i, j, v);
            }
            tab.set(i, rhs_col, *rhs);
            match op {
                ConstraintOp::Le => {
                    tab.set(i, slack_cursor, 1.0);
                    tab.basis[i] = slack_cursor;
                    slack_cursor += 1;
                }
                ConstraintOp::Ge => {
                    tab.set(i, slack_cursor, -1.0);
                    slack_cursor += 1;
                    tab.set(i, art_cursor, 1.0);
                    tab.basis[i] = art_cursor;
                    art_cursor += 1;
                }
                ConstraintOp::Eq => {
                    tab.set(i, art_cursor, 1.0);
                    tab.basis[i] = art_cursor;
                    art_cursor += 1;
                }
            }
        }

        let mut total_pivots = 0usize;

        // Phase 1: minimize the sum of artificial variables.
        if n_art > 0 {
            for c in 0..cols {
                tab.obj[c] = 0.0;
            }
            for a in first_artificial..(first_artificial + n_art) {
                tab.obj[a] = 1.0;
            }
            // Price out the basic artificials.
            for i in 0..m {
                if tab.basis[i] >= first_artificial {
                    for c in 0..cols {
                        tab.obj[c] -= tab.at(i, c);
                    }
                }
            }
            let pivots = self.iterate(&mut tab, usize::MAX)?;
            total_pivots += pivots;
            let phase1_value = -tab.obj[rhs_col];
            if phase1_value > 1e-6 {
                return Err(LpError::Infeasible);
            }
            // Drive remaining basic artificials out of the basis.
            for i in 0..m {
                if tab.basis[i] >= first_artificial {
                    let mut pivoted = false;
                    for j in 0..first_artificial {
                        if tab.at(i, j).abs() > self.tolerance {
                            tab.pivot(i, j);
                            total_pivots += 1;
                            pivoted = true;
                            break;
                        }
                    }
                    if !pivoted {
                        // Redundant row: zero it out so it never interferes.
                        for c in 0..cols {
                            tab.set(i, c, 0.0);
                        }
                        tab.set(i, tab.basis[i], 1.0);
                    }
                }
            }
        }

        // Phase 2: minimize the real objective, never letting artificials
        // re-enter.
        for c in 0..cols {
            tab.obj[c] = 0.0;
        }
        for (j, &c) in problem.objective().iter().enumerate() {
            tab.obj[j] = c;
        }
        for i in 0..m {
            let b = tab.basis[i];
            let cost = if b < n { problem.objective()[b] } else { 0.0 };
            if cost != 0.0 {
                for c in 0..cols {
                    tab.obj[c] -= cost * tab.at(i, c);
                }
            }
        }
        let pivots = self.iterate(&mut tab, first_artificial)?;
        total_pivots += pivots;

        // Extract the solution.
        let mut values = vec![0.0; n];
        for i in 0..m {
            let b = tab.basis[i];
            if b < n {
                values[b] = tab.at(i, rhs_col).max(0.0);
            }
        }
        let objective = problem.objective_value(&values);
        Ok(Solution {
            objective,
            values,
            status: SolveStatus::Optimal,
            pivots: total_pivots,
        })
    }

    /// Runs simplex iterations until optimality. Columns with index
    /// `>= entering_limit` are never chosen as entering variables (used to
    /// exclude artificial columns in phase 2).
    fn iterate(&self, tab: &mut Tableau, entering_limit: usize) -> Result<usize> {
        let rhs_col = tab.rhs_col();
        let limit = entering_limit.min(tab.first_artificial.max(entering_limit));
        let choosable = if entering_limit == usize::MAX {
            tab.cols - 1
        } else {
            limit
        };
        let mut pivots = 0usize;
        let mut degenerate_streak = 0usize;
        let mut degenerate_total = 0usize;
        let mut bland_forever = false;
        loop {
            if pivots > self.max_iterations {
                return Err(LpError::IterationLimit { iterations: pivots });
            }
            // Fall back to Bland's rule during long degenerate streaks to
            // break stalling, returning to Dantzig's rule when real progress
            // resumes (pure Bland converges far too slowly on the dense
            // degenerate LPs produced by complete digraphs). Bland's
            // termination guarantee only holds while the rule stays in
            // effect, and alternating back to Dantzig can re-enter the same
            // cycle — so once degeneracy dominates the run, Bland becomes
            // permanent.
            if degenerate_total > 4096 {
                bland_forever = true;
            }
            let use_bland = bland_forever || degenerate_streak > 64;
            // Choose the entering column.
            let mut entering: Option<usize> = None;
            if use_bland {
                for j in 0..choosable {
                    if tab.obj[j] < -self.tolerance {
                        entering = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -self.tolerance;
                for j in 0..choosable {
                    if tab.obj[j] < best {
                        best = tab.obj[j];
                        entering = Some(j);
                    }
                }
            }
            let Some(col) = entering else {
                return Ok(pivots);
            };
            // Ratio test.
            let mut leaving: Option<(usize, f64)> = None;
            for i in 0..tab.rows {
                let a = tab.at(i, col);
                if a > self.tolerance {
                    let ratio = tab.at(i, rhs_col) / a;
                    match leaving {
                        None => leaving = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - self.tolerance
                                || (ratio < br + self.tolerance && tab.basis[i] < tab.basis[bi])
                            {
                                leaving = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, ratio)) = leaving else {
                return Err(LpError::Unbounded);
            };
            if ratio.abs() <= self.tolerance {
                degenerate_streak += 1;
                degenerate_total += 1;
            } else {
                degenerate_streak = 0;
            }
            tab.pivot(row, col);
            pivots += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp::*;

    fn solve(lp: &LpProblem) -> Solution {
        SimplexSolver::default().solve(lp).expect("LP should solve")
    }

    #[test]
    fn trivial_problem_without_constraints() {
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(0, 1.0);
        let s = solve(&lp);
        assert_eq!(s.objective, 0.0);
        assert_eq!(s.values, vec![0.0, 0.0]);
    }

    #[test]
    fn unbounded_without_constraints() {
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(0, -1.0);
        assert_eq!(SimplexSolver::default().solve(&lp), Err(LpError::Unbounded));
    }

    #[test]
    fn simple_covering_problem() {
        // minimize x + 2y  s.t.  x + y >= 1, y >= 0.25
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(1, 1.0)], Ge, 0.25);
        let s = solve(&lp);
        assert!((s.objective - 1.25).abs() < 1e-6);
        assert!((s.values[0] - 0.75).abs() < 1e-6);
        assert!((s.values[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn maximization_via_negation() {
        // maximize 3x + 2y s.t. x + y <= 4, x <= 2  (opt = 3*2 + 2*2 = 10)
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(0, -3.0);
        lp.set_objective(1, -2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 4.0);
        lp.set_upper_bound(0, 2.0);
        let s = solve(&lp);
        assert!((s.objective + 10.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // minimize x + y s.t. x + 2y = 3, x - y = 0  => x = y = 1, obj = 2
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], Eq, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Eq, 0.0);
        let s = solve(&lp);
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LpProblem::minimize(1);
        lp.add_constraint(vec![(0, 1.0)], Ge, 2.0);
        lp.add_constraint(vec![(0, 1.0)], Le, 1.0);
        assert_eq!(
            SimplexSolver::default().solve(&lp),
            Err(LpError::Infeasible)
        );
    }

    #[test]
    fn detects_unboundedness_with_constraints() {
        // minimize -x s.t. x >= 1 (x can grow forever)
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(vec![(0, 1.0)], Ge, 1.0);
        assert_eq!(SimplexSolver::default().solve(&lp), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -1 with objective x + y  => optimum x=0, y=1.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Le, -1.0);
        let s = solve(&lp);
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Same equality twice: the second row becomes redundant after phase 1.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Eq, 2.0);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Eq, 4.0);
        let s = solve(&lp);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_covering_lp_matches_known_optimum() {
        // Fractional vertex cover of a triangle: minimize x0+x1+x2 with
        // x_i + x_j >= 1 per edge; optimum 1.5 with all x = 0.5.
        let mut lp = LpProblem::minimize(3);
        for j in 0..3 {
            lp.set_objective(j, 1.0);
            lp.set_upper_bound(j, 1.0);
        }
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(1, 1.0), (2, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(0, 1.0), (2, 1.0)], Ge, 1.0);
        let s = solve(&lp);
        assert!((s.objective - 1.5).abs() < 1e-6);
        for v in &s.values {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the origin; the solver must not
        // cycle.
        let mut lp = LpProblem::minimize(3);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -1.0);
        lp.set_objective(2, -1.0);
        for a in 0..3usize {
            for b in 0..3usize {
                if a != b {
                    lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Le, 1.0);
                }
            }
        }
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Le, 1.0);
        let s = solve(&lp);
        assert!((s.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_non_finite_objective() {
        let mut lp = LpProblem::minimize(1);
        lp.set_objective(0, f64::NAN);
        assert!(matches!(
            SimplexSolver::default().solve(&lp),
            Err(LpError::InvalidProblem { .. })
        ));
    }

    #[test]
    fn larger_random_like_lp_is_consistent() {
        // Transportation-style LP with a known optimum: two suppliers with
        // capacities 3 and 4 serving demands 2, 2, 3 at unit costs.
        // Costs: supplier 0: [1, 2, 3], supplier 1: [4, 1, 1].
        let cost = [[1.0, 2.0, 3.0], [4.0, 1.0, 1.0]];
        let var = |i: usize, j: usize| i * 3 + j;
        let mut lp = LpProblem::minimize(6);
        for (i, row) in cost.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                lp.set_objective(var(i, j), c);
            }
        }
        lp.add_constraint(
            vec![(var(0, 0), 1.0), (var(0, 1), 1.0), (var(0, 2), 1.0)],
            Le,
            3.0,
        );
        lp.add_constraint(
            vec![(var(1, 0), 1.0), (var(1, 1), 1.0), (var(1, 2), 1.0)],
            Le,
            4.0,
        );
        for j in 0..3 {
            let demand = [2.0, 2.0, 3.0][j];
            lp.add_constraint(vec![(var(0, j), 1.0), (var(1, j), 1.0)], Ge, demand);
        }
        let s = solve(&lp);
        // Optimal plan: supplier 0 sends 2 to demand 0 (cost 2) and 1 to
        // demand 1 (cost 2); supplier 1 sends 1 to demand 1 (cost 1) and 3 to
        // demand 2 (cost 3). Total 8.
        assert!(
            (s.objective - 8.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!(lp.max_violation(&s.values) < 1e-6);
    }
}
