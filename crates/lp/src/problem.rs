//! Linear program description.

use crate::{LpError, Result};

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a · x <= b`
    Le,
    /// `a · x >= b`
    Ge,
    /// `a · x == b`
    Eq,
}

/// A single linear constraint `sum_j coeffs[j] * x_j  (<=, >=, ==)  rhs`.
///
/// Coefficients are sparse `(variable index, coefficient)` pairs; repeated
/// indices are summed when the constraint is normalized.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients of the left-hand side.
    pub coeffs: Vec<(usize, f64)>,
    /// The comparison operator.
    pub op: ConstraintOp,
    /// The right-hand side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(coeffs: Vec<(usize, f64)>, op: ConstraintOp, rhs: f64) -> Self {
        Constraint { coeffs, op, rhs }
    }

    /// Evaluates the left-hand side at the given variable assignment.
    ///
    /// Variables outside the assignment are treated as 0.
    pub fn lhs_value(&self, values: &[f64]) -> f64 {
        self.coeffs
            .iter()
            .map(|&(j, c)| c * values.get(j).copied().unwrap_or(0.0))
            .sum()
    }

    /// Amount by which the constraint is violated at `values` (0 if
    /// satisfied).
    pub fn violation(&self, values: &[f64]) -> f64 {
        let lhs = self.lhs_value(values);
        match self.op {
            ConstraintOp::Le => (lhs - self.rhs).max(0.0),
            ConstraintOp::Ge => (self.rhs - lhs).max(0.0),
            ConstraintOp::Eq => (lhs - self.rhs).abs(),
        }
    }
}

/// A linear *minimization* problem over non-negative variables.
///
/// All variables implicitly satisfy `x_j >= 0`; optional upper bounds are
/// added with [`LpProblem::set_upper_bound`] and are translated into ordinary
/// constraints when solving. Maximization problems are expressed by negating
/// the objective.
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    upper_bounds: Vec<Option<f64>>,
}

impl LpProblem {
    /// Creates a minimization problem with `num_vars` non-negative variables
    /// and an all-zero objective.
    pub fn minimize(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
            upper_bounds: vec![None; num_vars],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of explicit constraints (not counting upper bounds).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The explicit constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The per-variable upper bounds (`None` = unbounded above).
    pub fn upper_bounds(&self) -> &[Option<f64>] {
        &self.upper_bounds
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.objective[var] = coeff;
    }

    /// Sets an upper bound `x_var <= bound`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or `bound` is negative/NaN.
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) {
        assert!(var < self.num_vars, "variable {var} out of range");
        assert!(
            bound >= 0.0,
            "upper bound must be non-negative, got {bound}"
        );
        self.upper_bounds[var] = Some(bound);
    }

    /// Adds a constraint and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is out of range.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        for &(j, _) in &coeffs {
            assert!(j < self.num_vars, "variable {j} out of range");
        }
        self.constraints.push(Constraint::new(coeffs, op, rhs));
        self.constraints.len() - 1
    }

    /// Adds an already-built [`Constraint`] and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::InvalidProblem`] if the constraint references a
    /// variable out of range or has a non-finite coefficient or right-hand
    /// side.
    pub fn add_constraint_checked(&mut self, constraint: Constraint) -> Result<usize> {
        for &(j, c) in &constraint.coeffs {
            if j >= self.num_vars {
                return Err(LpError::InvalidProblem {
                    message: format!("constraint references variable {j} out of range"),
                });
            }
            if !c.is_finite() {
                return Err(LpError::InvalidProblem {
                    message: format!("non-finite coefficient {c} on variable {j}"),
                });
            }
        }
        if !constraint.rhs.is_finite() {
            return Err(LpError::InvalidProblem {
                message: format!("non-finite right-hand side {}", constraint.rhs),
            });
        }
        self.constraints.push(constraint);
        Ok(self.constraints.len() - 1)
    }

    /// Objective value of a variable assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(values.iter())
            .map(|(c, x)| c * x)
            .sum()
    }

    /// Maximum violation of any constraint or bound at `values`.
    pub fn max_violation(&self, values: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for c in &self.constraints {
            worst = worst.max(c.violation(values));
        }
        for (j, ub) in self.upper_bounds.iter().enumerate() {
            let x = values.get(j).copied().unwrap_or(0.0);
            worst = worst.max(-x); // lower bound 0
            if let Some(ub) = ub {
                worst = worst.max(x - ub);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_problem() {
        let mut lp = LpProblem::minimize(3);
        lp.set_objective(0, 1.0);
        lp.set_objective(2, -2.0);
        lp.set_upper_bound(1, 4.0);
        let idx = lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(idx, 0);
        assert_eq!(lp.num_vars(), 3);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.objective(), &[1.0, 0.0, -2.0]);
        assert_eq!(lp.upper_bounds()[1], Some(4.0));
    }

    #[test]
    fn constraint_violation() {
        let c = Constraint::new(vec![(0, 1.0), (1, 2.0)], ConstraintOp::Ge, 4.0);
        assert_eq!(c.lhs_value(&[1.0, 1.0]), 3.0);
        assert_eq!(c.violation(&[1.0, 1.0]), 1.0);
        assert_eq!(c.violation(&[4.0, 0.0]), 0.0);
        let le = Constraint::new(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(le.violation(&[2.0]), 1.0);
        let eq = Constraint::new(vec![(0, 1.0)], ConstraintOp::Eq, 1.0);
        assert_eq!(eq.violation(&[0.5]), 0.5);
    }

    #[test]
    fn objective_and_max_violation() {
        let mut lp = LpProblem::minimize(2);
        lp.set_objective(0, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 1.0);
        lp.set_upper_bound(0, 0.5);
        assert_eq!(lp.objective_value(&[2.0, 0.0]), 6.0);
        // x0 = 2 violates its upper bound by 1.5.
        assert_eq!(lp.max_violation(&[2.0, 0.0]), 1.5);
        assert_eq!(lp.max_violation(&[0.5, 0.5]), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_variable_panics() {
        let mut lp = LpProblem::minimize(1);
        lp.add_constraint(vec![(5, 1.0)], ConstraintOp::Ge, 0.0);
    }

    #[test]
    fn checked_constraint_rejects_bad_input() {
        let mut lp = LpProblem::minimize(2);
        assert!(lp
            .add_constraint_checked(Constraint::new(vec![(9, 1.0)], ConstraintOp::Le, 1.0))
            .is_err());
        assert!(lp
            .add_constraint_checked(Constraint::new(vec![(0, f64::NAN)], ConstraintOp::Le, 1.0))
            .is_err());
        assert!(lp
            .add_constraint_checked(Constraint::new(
                vec![(0, 1.0)],
                ConstraintOp::Le,
                f64::INFINITY
            ))
            .is_err());
        assert!(lp
            .add_constraint_checked(Constraint::new(vec![(0, 1.0)], ConstraintOp::Le, 1.0))
            .is_ok());
    }
}
