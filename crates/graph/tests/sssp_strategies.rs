//! Property tests pinning the bucket-queue SSSP strategy **bit-equal** to
//! the binary-heap baseline.
//!
//! Both strategies drive the same strict-improvement relaxation to
//! exhaustion, so their distance arrays must agree to the last bit on every
//! graph, mask and cutoff — that exact equality is what lets the serving
//! paths switch strategies by size without changing a single digest. Parent
//! trees may differ between strategies (any tight shortest-path tree is
//! correct), so they are checked for validity, not identity.

use ftspan_graph::csr::{CsrSubgraph, SsspStrategy, SsspWorkspace};
use ftspan_graph::stream::GeneratorSpec;
use ftspan_graph::{generate, Graph, NodeId};
use proptest::prelude::*;

fn graph_from_bits(n: usize, bits: &[bool], weights: &[f64]) -> Graph {
    let mut g = Graph::new(n);
    let mut idx = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            if idx < bits.len() && bits[idx] {
                let w = weights.get(idx).copied().unwrap_or(1.0).abs().max(0.01);
                g.add_edge(NodeId::new(u), NodeId::new(v), w).unwrap();
            }
            idx += 1;
        }
    }
    g
}

/// Runs both strategies on the same traversal and checks the contract:
/// bit-identical distances, and a valid (tight, alive, rooted) parent tree
/// from each strategy.
fn assert_strategies_agree(
    csr: &CsrSubgraph,
    source: NodeId,
    dead: Option<&[bool]>,
    dead_edges: Option<&[bool]>,
    cutoff: Option<f64>,
    heap_ws: &mut SsspWorkspace,
    bucket_ws: &mut SsspWorkspace,
) {
    csr.sssp_into_with_strategy(
        source,
        dead,
        dead_edges,
        cutoff,
        SsspStrategy::BinaryHeap,
        heap_ws,
    )
    .unwrap();
    csr.sssp_into_with_strategy(
        source,
        dead,
        dead_edges,
        cutoff,
        SsspStrategy::BucketQueue,
        bucket_ws,
    )
    .unwrap();

    let dh = heap_ws.distances();
    let db = bucket_ws.distances();
    assert_eq!(dh.len(), db.len());
    for v in 0..dh.len() {
        assert_eq!(
            dh[v].to_bits(),
            db[v].to_bits(),
            "vertex {v}: heap {} vs bucket {}",
            dh[v],
            db[v]
        );
    }

    let source_dead = dead.is_some_and(|d| d[source.index()]);
    for ws in [&*heap_ws, &*bucket_ws] {
        let d = ws.distances();
        for (v, parent) in ws.parents().iter().enumerate() {
            match parent {
                None => {
                    // Only the (alive) source and unreached vertices lack a
                    // parent.
                    if v == source.index() && !source_dead {
                        assert_eq!(d[v], 0.0);
                    } else {
                        assert!(d[v].is_infinite(), "vertex {v} reached without parent");
                    }
                }
                Some(p) => {
                    assert!(d[v].is_finite());
                    assert!(d[p.index()].is_finite());
                    assert!(!dead.is_some_and(|m| m[v] || m[p.index()]));
                    // Some alive edge (p, v) must make the label exactly
                    // tight — the defining property of a shortest-path tree
                    // edge under floating-point arithmetic.
                    let tight = csr.neighbors(*p).any(|(nbr, w, e)| {
                        nbr.index() == v
                            && !dead_edges.is_some_and(|m| m[e.index()])
                            && d[v] == d[p.index()] + w
                    });
                    assert!(tight, "vertex {v}: parent edge not tight/alive");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// G(n, p)-style random graphs with arbitrary positive weights, under
    /// random vertex masks, edge masks and cutoffs. The two workspaces are
    /// reused across every traversal of every case, so this also exercises
    /// workspace reuse across graphs of different sizes.
    #[test]
    fn bucket_matches_heap_on_random_graphs(
        n in 2usize..14,
        bits in proptest::collection::vec(any::<bool>(), 0..91),
        weights in proptest::collection::vec(0.01f64..50.0, 0..91),
        dead_bits in proptest::collection::vec(any::<bool>(), 14..15),
        dead_edge_bits in proptest::collection::vec(any::<bool>(), 91..92),
        cutoff_raw in 0.5f64..20.0,
        use_cutoff in any::<bool>(),
    ) {
        let cutoff = if use_cutoff { Some(cutoff_raw) } else { None };
        let g = graph_from_bits(n, &bits, &weights);
        let csr = CsrSubgraph::from_graph(&g);
        let dead: Vec<bool> = dead_bits[..n].to_vec();
        let dead_edges: Vec<bool> = (0..g.edge_count())
            .map(|e| dead_edge_bits[e % dead_edge_bits.len()])
            .collect();
        let mut heap_ws = SsspWorkspace::new();
        let mut bucket_ws = SsspWorkspace::new();
        for src in 0..n {
            let source = NodeId::new(src);
            assert_strategies_agree(&csr, source, None, None, None, &mut heap_ws, &mut bucket_ws);
            assert_strategies_agree(
                &csr, source, Some(&dead), Some(&dead_edges), cutoff,
                &mut heap_ws, &mut bucket_ws,
            );
        }
    }

    /// Grids and tori from the streaming generator: uniform structure,
    /// seeded uniform weights — the family in which many buckets hold many
    /// entries at once.
    #[test]
    fn bucket_matches_heap_on_grids(
        rows in 1usize..7,
        cols in 1usize..7,
        wrap in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let spec = GeneratorSpec::Grid {
            rows,
            cols,
            wrap,
            weights: generate::WeightKind::Uniform { min: 0.5, max: 3.0 },
            seed,
        };
        let csr = spec.generate_csr().unwrap();
        let n = csr.node_count();
        let mut heap_ws = SsspWorkspace::new();
        let mut bucket_ws = SsspWorkspace::new();
        for src in [0, n / 2, n - 1] {
            assert_strategies_agree(
                &csr, NodeId::new(src), None, None, None, &mut heap_ws, &mut bucket_ws,
            );
        }
    }

    /// Preferential-attachment (power-law) graphs: hubs concentrate
    /// relaxations, unit weights collapse everything into few buckets.
    #[test]
    fn bucket_matches_heap_on_power_law(
        nodes in 5usize..40,
        attach in 1usize..4,
        seed in any::<u64>(),
        masked in any::<bool>(),
    ) {
        let spec = GeneratorSpec::PreferentialAttachment { nodes, attach, seed };
        let csr = spec.generate_csr().unwrap();
        let dead: Vec<bool> = (0..nodes).map(|v| masked && v % 5 == 1).collect();
        let mut heap_ws = SsspWorkspace::new();
        let mut bucket_ws = SsspWorkspace::new();
        for src in [0, nodes - 1] {
            assert_strategies_agree(
                &csr, NodeId::new(src), Some(&dead), None, None,
                &mut heap_ws, &mut bucket_ws,
            );
        }
    }
}

/// A single pair of workspaces serves an interleaved sequence of graphs of
/// very different sizes and weight scales; every traversal must produce the
/// same bits as a traversal into a fresh workspace.
#[test]
fn workspace_reuse_never_leaks_state() {
    let specs = [
        GeneratorSpec::Gnm {
            nodes: 300,
            edges: 900,
            weights: generate::WeightKind::Uniform {
                min: 0.001,
                max: 0.01,
            },
            seed: 1,
        },
        GeneratorSpec::Grid {
            rows: 9,
            cols: 11,
            wrap: true,
            weights: generate::WeightKind::Uniform {
                min: 100.0,
                max: 90000.0,
            },
            seed: 2,
        },
        GeneratorSpec::PreferentialAttachment {
            nodes: 50,
            attach: 2,
            seed: 3,
        },
        GeneratorSpec::Gnm {
            nodes: 8,
            edges: 12,
            weights: generate::WeightKind::Unit,
            seed: 4,
        },
    ];
    let mut shared_heap = SsspWorkspace::new();
    let mut shared_bucket = SsspWorkspace::new();
    for spec in &specs {
        let csr = spec.generate_csr().unwrap();
        let n = csr.node_count();
        for src in [0, n - 1] {
            let source = NodeId::new(src);
            assert_strategies_agree(
                &csr,
                source,
                None,
                None,
                None,
                &mut shared_heap,
                &mut shared_bucket,
            );
            let mut fresh = SsspWorkspace::new();
            csr.sssp_into_with_strategy(source, None, None, None, SsspStrategy::Auto, &mut fresh)
                .unwrap();
            assert_eq!(fresh.distances(), shared_heap.distances());
            assert_eq!(fresh.distances(), shared_bucket.distances());
        }
    }
}
