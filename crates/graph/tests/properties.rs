//! Property-based tests for the graph substrate.

use ftspan_graph::{faults, generate, shortest_path, verify, EdgeId, EdgeSet, Graph, NodeId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph_from_bits(n: usize, bits: &[bool], weights: &[f64]) -> Graph {
    let mut g = Graph::new(n);
    let mut idx = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            if idx < bits.len() && bits[idx] {
                let w = weights.get(idx).copied().unwrap_or(1.0).abs().max(0.01);
                g.add_edge(NodeId::new(u), NodeId::new(v), w).unwrap();
            }
            idx += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dijkstra distances satisfy the triangle inequality over edges and are
    /// symmetric on undirected graphs.
    #[test]
    fn dijkstra_is_a_metric(
        n in 2usize..12,
        bits in proptest::collection::vec(any::<bool>(), 0..66),
        weights in proptest::collection::vec(0.01f64..10.0, 0..66),
    ) {
        let g = graph_from_bits(n, &bits, &weights);
        let apsp = shortest_path::all_pairs(&g).unwrap();
        for (u, row) in apsp.iter().enumerate() {
            prop_assert_eq!(row[u], 0.0);
            for (v, &d) in row.iter().enumerate() {
                // Equality also covers pairs that are mutually unreachable
                // (both distances infinite).
                prop_assert!(d == apsp[v][u] || (d - apsp[v][u]).abs() < 1e-9);
            }
        }
        // Every edge is an upper bound on the distance of its endpoints.
        for (_, e) in g.edges() {
            prop_assert!(apsp[e.u.index()][e.v.index()] <= e.weight + 1e-9);
        }
        // Triangle inequality through any intermediate vertex.
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    if apsp[u][w].is_finite() && apsp[w][v].is_finite() {
                        prop_assert!(apsp[u][v] <= apsp[u][w] + apsp[w][v] + 1e-9);
                    }
                }
            }
        }
    }

    /// Restricting Dijkstra to an edge subset never shortens distances.
    #[test]
    fn subgraph_distances_dominate(
        n in 2usize..12,
        bits in proptest::collection::vec(any::<bool>(), 0..66),
        subset in proptest::collection::vec(any::<bool>(), 0..66),
    ) {
        let g = graph_from_bits(n, &bits, &[]);
        let mut keep = g.empty_edge_set();
        for (i, (id, _)) in g.edges().enumerate() {
            if subset.get(i).copied().unwrap_or(false) {
                keep.insert(id);
            }
        }
        let full = shortest_path::dijkstra(&g, NodeId::new(0)).unwrap();
        let restricted = shortest_path::dijkstra_on_edges(&g, &keep, NodeId::new(0)).unwrap();
        for v in 0..n {
            prop_assert!(restricted[v] >= full[v] - 1e-9);
        }
    }

    /// Removing vertices never decreases distances between the survivors.
    #[test]
    fn fault_distances_dominate(
        n in 2usize..12,
        bits in proptest::collection::vec(any::<bool>(), 0..66),
        kill in proptest::collection::vec(1usize..12, 0..3),
    ) {
        let g = graph_from_bits(n, &bits, &[]);
        let faults = faults::FaultSet::from_indices(kill.into_iter().filter(|&v| v < n));
        if faults.contains(NodeId::new(0)) {
            return Ok(());
        }
        let dead = faults.to_dead_mask(n);
        let full = shortest_path::dijkstra(&g, NodeId::new(0)).unwrap();
        let faulty = shortest_path::dijkstra_avoiding(&g, NodeId::new(0), &dead).unwrap();
        for v in 0..n {
            if !dead[v] {
                prop_assert!(faulty[v] >= full[v] - 1e-9);
            }
        }
    }

    /// EdgeSet union/intersection behave like set algebra.
    #[test]
    fn edge_set_algebra(
        cap in 1usize..200,
        a in proptest::collection::vec(0usize..200, 0..50),
        b in proptest::collection::vec(0usize..200, 0..50),
    ) {
        let mut sa = EdgeSet::new(cap);
        let mut sb = EdgeSet::new(cap);
        for &i in &a { if i < cap { sa.insert(EdgeId::new(i)); } }
        for &i in &b { if i < cap { sb.insert(EdgeId::new(i)); } }
        let mut union = sa.clone();
        union.union_with(&sb);
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
        prop_assert!(inter.is_subset_of(&sa) && inter.is_subset_of(&sb));
        prop_assert!(sa.is_subset_of(&union) && sb.is_subset_of(&union));
        for e in sa.iter() {
            prop_assert!(union.contains(e));
        }
    }

    /// The full edge set is always a 1-spanner and fault tolerant for any r.
    #[test]
    fn full_edge_set_is_always_a_perfect_spanner(
        n in 1usize..10,
        bits in proptest::collection::vec(any::<bool>(), 0..45),
        r in 0usize..3,
    ) {
        let g = graph_from_bits(n, &bits, &[]);
        let full = g.full_edge_set();
        prop_assert!(verify::is_k_spanner(&g, &full, 1.0));
        prop_assert!(verify::is_fault_tolerant_k_spanner(&g, &full, 1.0, r));
    }

    /// Generated graphs respect their documented structure.
    #[test]
    fn generators_respect_structure(n in 2usize..30, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let c = generate::connected_gnp(n, 0.1, generate::WeightKind::Unit, &mut rng);
        prop_assert!(c.is_connected());
        let k = generate::complete(n);
        prop_assert_eq!(k.edge_count(), n * (n - 1) / 2);
        let p = generate::path(n);
        prop_assert_eq!(p.edge_count(), n - 1);
        let grid = generate::grid(2, n);
        prop_assert_eq!(grid.node_count(), 2 * n);
    }
}
