//! Seeded, deterministic balanced graph partitioning — the front half of the
//! sharded spanner pipeline.
//!
//! [`partition`] splits a graph's vertex set into `parts` disjoint,
//! individually **connected** groups of bounded size by growing BFS regions
//! from spread-out seed vertices. The output is a [`Partition`]: a
//! vertex-to-part assignment plus derived views (members, cut edges,
//! boundary vertices) that the sharded artifact builder consumes.
//!
//! # Algorithm
//!
//! 1. **Seed spread.** The first seed vertex is derived from
//!    [`PartitionConfig::seed`] by a splitmix64 mix; every further seed is the vertex
//!    farthest (in BFS hops) from all previous seeds, ties broken toward the
//!    smallest index. Farthest-point seeding keeps regions from nesting
//!    inside one another, and makes the whole partition a pure function of
//!    `(graph, config)`.
//! 2. **Round-robin BFS growth.** Each part claims **one** vertex per round
//!    from its BFS frontier (smallest-index neighbor order), so parts grow
//!    in lock step and stay balanced; a part stops claiming once it holds
//!    [`Partition::capacity`] vertices, the bound
//!    `ceil(n / parts · (1 + max_imbalance))`.
//!
//! Every claimed vertex is adjacent to an earlier vertex of the same part,
//! so each part induces a **connected** subgraph — which is exactly what the
//! per-shard spanner constructions need as input.
//!
//! # Determinism
//!
//! The partitioner is sequential and seeded: the same `(graph, config)`
//! always produces the identical assignment, on any machine and regardless
//! of how many worker threads the surrounding pipeline uses. Downstream
//! shard builds can therefore be fanned out across a pool without the
//! partition itself becoming a source of nondeterminism.
//!
//! # Errors
//!
//! A disconnected input (or an imbalance bound so tight that every
//! neighboring part is full) leaves vertices that no part can reach; the
//! partitioner reports them with the typed
//! [`GraphError::PartitionStalled`] instead of returning a partial cover.
//!
//! # Example
//!
//! ```
//! use ftspan_graph::partition::{partition, PartitionConfig};
//! use ftspan_graph::generate;
//!
//! let g = generate::grid(8, 8);
//! let parts = partition(&g, &PartitionConfig::new(4).with_seed(2011)).unwrap();
//! assert_eq!(parts.part_count(), 4);
//! // Disjoint full cover within the imbalance bound:
//! assert_eq!(parts.sizes().iter().sum::<usize>(), g.node_count());
//! assert!(parts.sizes().iter().all(|&s| s <= parts.capacity()));
//! ```

use crate::{Graph, GraphError, NodeId, Result};
use std::collections::VecDeque;

/// How [`partition`] splits a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Number of parts to grow (each part is non-empty).
    pub parts: usize,
    /// Maximum relative imbalance: no part exceeds
    /// `ceil(n / parts · (1 + max_imbalance))` vertices. `0.0` demands
    /// near-perfect balance; the default `0.2` leaves growth some slack.
    pub max_imbalance: f64,
    /// Seed of the deterministic seed-vertex choice.
    pub seed: u64,
}

impl PartitionConfig {
    /// A configuration with the default imbalance (`0.2`) and seed (`2011`,
    /// the year of the paper — the workspace-wide default).
    pub fn new(parts: usize) -> Self {
        PartitionConfig {
            parts,
            max_imbalance: 0.2,
            seed: 2011,
        }
    }

    /// Sets the maximum relative imbalance (must be non-negative and finite).
    pub fn with_max_imbalance(mut self, max_imbalance: f64) -> Self {
        self.max_imbalance = max_imbalance;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A disjoint full cover of a graph's vertices by connected parts, produced
/// by [`partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    sizes: Vec<usize>,
    capacity: usize,
}

impl Partition {
    /// Number of parts.
    pub fn part_count(&self) -> usize {
        self.sizes.len()
    }

    /// Number of vertices of the partitioned graph.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }

    /// The part holding vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn part_of(&self, v: NodeId) -> usize {
        self.assignment[v.index()] as usize
    }

    /// The vertex-to-part assignment, indexed by vertex.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The per-part vertex counts.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The size bound every part respects:
    /// `ceil(n / parts · (1 + max_imbalance))`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The vertices of part `p`, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `p >= part_count()`.
    pub fn members(&self, p: usize) -> Vec<NodeId> {
        assert!(p < self.part_count(), "part {p} out of range");
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a as usize == p)
            .map(|(v, _)| NodeId::new(v))
            .collect()
    }

    /// The edges of `g` whose endpoints lie in different parts, in edge-id
    /// order. These are exactly the edges the sharded artifact's boundary
    /// overlay must carry.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `g` has a different
    /// vertex count than the partitioned graph.
    pub fn cut_edges(&self, g: &Graph) -> Result<Vec<crate::EdgeId>> {
        self.check_graph(g)?;
        Ok(g.edges()
            .filter(|(_, e)| self.assignment[e.u.index()] != self.assignment[e.v.index()])
            .map(|(id, _)| id)
            .collect())
    }

    /// The vertices incident to at least one cut edge, sorted ascending.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `g` has a different
    /// vertex count than the partitioned graph.
    pub fn boundary_vertices(&self, g: &Graph) -> Result<Vec<NodeId>> {
        self.check_graph(g)?;
        let mut on_boundary = vec![false; self.assignment.len()];
        for (_, e) in g.edges() {
            if self.assignment[e.u.index()] != self.assignment[e.v.index()] {
                on_boundary[e.u.index()] = true;
                on_boundary[e.v.index()] = true;
            }
        }
        Ok(on_boundary
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(v, _)| NodeId::new(v))
            .collect())
    }

    fn check_graph(&self, g: &Graph) -> Result<()> {
        if g.node_count() != self.assignment.len() {
            return Err(GraphError::InvalidParameter {
                message: format!(
                    "partition covers {} vertices but the graph has {}",
                    self.assignment.len(),
                    g.node_count()
                ),
            });
        }
        Ok(())
    }
}

/// Splits `g` into [`PartitionConfig::parts`] disjoint connected parts of at
/// most [`Partition::capacity`] vertices each (see the [module
/// docs](self) for the algorithm).
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] when `parts` is zero or exceeds the
///   vertex count, or `max_imbalance` is negative or not finite.
/// * [`GraphError::PartitionStalled`] when growth cannot cover every vertex
///   — the input is disconnected, or the imbalance bound is too tight for
///   its shape.
pub fn partition(g: &Graph, config: &PartitionConfig) -> Result<Partition> {
    let n = g.node_count();
    if config.parts == 0 {
        return Err(GraphError::InvalidParameter {
            message: "cannot partition into zero parts".to_string(),
        });
    }
    if config.parts > n {
        return Err(GraphError::InvalidParameter {
            message: format!(
                "cannot grow {} non-empty parts from {n} vertices",
                config.parts
            ),
        });
    }
    if !(config.max_imbalance.is_finite() && config.max_imbalance >= 0.0) {
        return Err(GraphError::InvalidParameter {
            message: format!(
                "max_imbalance must be a non-negative finite number, got {}",
                config.max_imbalance
            ),
        });
    }
    let parts = config.parts;
    // Each part may hold at most ceil(n / parts · (1 + ε)) vertices, but the
    // bound is never below ceil(n / parts) — the total capacity must cover n.
    let capacity = ((n as f64 / parts as f64) * (1.0 + config.max_imbalance)).ceil() as usize;
    let capacity = capacity.max(n.div_ceil(parts));

    let seeds = spread_seeds(g, parts, config.seed);

    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut sizes = vec![0usize; parts];
    let mut queues: Vec<VecDeque<usize>> =
        seeds.iter().map(|s| VecDeque::from([s.index()])).collect();
    let mut remaining = n;

    // Round-robin growth: each round, every part with spare capacity claims
    // at most one vertex from its frontier. A round that claims nothing while
    // vertices remain means no growing part can reach them.
    while remaining > 0 {
        let mut progress = false;
        for p in 0..parts {
            if sizes[p] >= capacity {
                continue;
            }
            while let Some(u) = queues[p].pop_front() {
                if assignment[u] != UNASSIGNED {
                    continue;
                }
                assignment[u] = p as u32;
                sizes[p] += 1;
                remaining -= 1;
                let mut frontier: Vec<usize> = g
                    .neighbors(NodeId::new(u))
                    .map(NodeId::index)
                    .filter(|&v| assignment[v] == UNASSIGNED)
                    .collect();
                frontier.sort_unstable();
                queues[p].extend(frontier);
                progress = true;
                break;
            }
        }
        if !progress {
            return Err(GraphError::PartitionStalled {
                unassigned: remaining,
            });
        }
    }

    Ok(Partition {
        assignment,
        sizes,
        capacity,
    })
}

/// The splitmix64 mixing step: a tiny, dependency-free way to turn the
/// user's seed into a well-spread first seed vertex. Only the first seed is
/// randomized; every further one is the deterministic farthest-point choice.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Picks `parts` spread-out seed vertices: the first from the mixed seed,
/// each further one the vertex farthest (BFS hops) from all previous seeds,
/// ties toward the smallest index. Vertices in components no seed has
/// reached count as infinitely far, so extra seeds land in uncovered
/// components first.
fn spread_seeds(g: &Graph, parts: usize, seed: u64) -> Vec<NodeId> {
    let n = g.node_count();
    let mut seeds = vec![NodeId::new((splitmix64(seed) % n as u64) as usize)];
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    while seeds.len() < parts {
        // Incremental multi-source BFS: only the newest seed is relaxed —
        // earlier seeds' distances are already final.
        let newest = *seeds.last().expect("at least one seed");
        dist[newest.index()] = 0;
        queue.push_back(newest.index());
        while let Some(u) = queue.pop_front() {
            let du = dist[u];
            let mut next: Vec<usize> = g
                .neighbors(NodeId::new(u))
                .map(NodeId::index)
                .filter(|&v| dist[v] > du + 1)
                .collect();
            next.sort_unstable();
            for v in next {
                if dist[v] > du + 1 {
                    dist[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        let farthest = (0..n)
            .max_by_key(|&v| (dist[v], std::cmp::Reverse(v)))
            .expect("parts <= n guarantees vertices exist");
        seeds.push(NodeId::new(farthest));
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;
    use crate::generate;
    use rand::SeedableRng;

    fn check_cover(g: &Graph, parts: &Partition) {
        assert_eq!(parts.node_count(), g.node_count());
        assert_eq!(parts.sizes().iter().sum::<usize>(), g.node_count());
        for p in 0..parts.part_count() {
            let members = parts.members(p);
            assert!(!members.is_empty(), "part {p} is empty");
            assert!(members.len() <= parts.capacity(), "part {p} over capacity");
            assert_eq!(members.len(), parts.sizes()[p]);
            for &v in &members {
                assert_eq!(parts.part_of(v), p);
            }
        }
    }

    fn check_parts_connected(g: &Graph, parts: &Partition) {
        for p in 0..parts.part_count() {
            let members = parts.members(p);
            let mut local = vec![usize::MAX; g.node_count()];
            for (i, &v) in members.iter().enumerate() {
                local[v.index()] = i;
            }
            let mut sub = Graph::new(members.len());
            for (_, e) in g.edges() {
                let (lu, lv) = (local[e.u.index()], local[e.v.index()]);
                if lu != usize::MAX && lv != usize::MAX {
                    sub.add_edge(NodeId::new(lu), NodeId::new(lv), e.weight)
                        .unwrap();
                }
            }
            assert!(
                sub.is_connected(),
                "part {p} induces a disconnected subgraph"
            );
        }
    }

    #[test]
    fn grid_partitions_into_balanced_connected_parts() {
        let g = generate::grid(10, 10);
        for parts in [1usize, 2, 3, 4, 7] {
            let partition = partition(&g, &PartitionConfig::new(parts)).unwrap();
            assert_eq!(partition.part_count(), parts);
            check_cover(&g, &partition);
            check_parts_connected(&g, &partition);
        }
    }

    #[test]
    fn gnp_partitions_cover_disjointly() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let g = generate::connected_gnp(60, 0.1, generate::WeightKind::Unit, &mut rng);
        let partition = partition(&g, &PartitionConfig::new(4).with_seed(42)).unwrap();
        check_cover(&g, &partition);
        check_parts_connected(&g, &partition);
    }

    #[test]
    fn partition_is_deterministic_per_seed() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let g = generate::connected_gnp(50, 0.12, generate::WeightKind::Unit, &mut rng);
        let a = partition(&g, &PartitionConfig::new(3).with_seed(7)).unwrap();
        let b = partition(&g, &PartitionConfig::new(3).with_seed(7)).unwrap();
        assert_eq!(a, b);
        // A different seed is allowed to (and on this graph does) differ.
        let c = partition(&g, &PartitionConfig::new(3).with_seed(8)).unwrap();
        assert_eq!(c.sizes().iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn cut_edges_and_boundary_vertices_are_consistent() {
        let g = generate::grid(6, 6);
        let partition = partition(&g, &PartitionConfig::new(4)).unwrap();
        let cut = partition.cut_edges(&g).unwrap();
        let boundary = partition.boundary_vertices(&g).unwrap();
        assert!(!cut.is_empty(), "a 4-way grid split must cut edges");
        for id in &cut {
            let e = g.edge(*id);
            assert_ne!(partition.part_of(e.u), partition.part_of(e.v));
            assert!(boundary.binary_search(&e.u).is_ok());
            assert!(boundary.binary_search(&e.v).is_ok());
        }
        // Every boundary vertex is an endpoint of some cut edge.
        for &v in &boundary {
            assert!(cut.iter().any(|id| g.edge(*id).is_incident(v)));
        }
        // One part means no cut at all.
        let whole = super::partition(&g, &PartitionConfig::new(1)).unwrap();
        assert!(whole.cut_edges(&g).unwrap().is_empty());
        assert!(whole.boundary_vertices(&g).unwrap().is_empty());
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        let g = generate::grid(4, 4);
        assert!(matches!(
            partition(&g, &PartitionConfig::new(0)),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            partition(&g, &PartitionConfig::new(17)),
            Err(GraphError::InvalidParameter { .. })
        ));
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                partition(&g, &PartitionConfig::new(2).with_max_imbalance(bad)),
                Err(GraphError::InvalidParameter { .. })
            ));
        }
        let other = generate::grid(3, 3);
        let partition = partition(&g, &PartitionConfig::new(2)).unwrap();
        assert!(partition.cut_edges(&other).is_err());
        assert!(partition.boundary_vertices(&other).is_err());
    }

    #[test]
    fn disconnected_leftovers_are_a_typed_error() {
        // Two 4-cycles with no path between them: one part per component
        // works, but three parts strand the growth (one component would need
        // two seeds, and the farthest-point spread puts the third seed there
        // — yet a 2-part request cannot cover both components with one).
        let mut g = Graph::new(8);
        for c in [0usize, 4] {
            for i in 0..4 {
                g.add_edge(NodeId::new(c + i), NodeId::new(c + (i + 1) % 4), 1.0)
                    .unwrap();
            }
        }
        // One part can never reach the second component.
        let err = partition(&g, &PartitionConfig::new(1)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::PartitionStalled { unassigned: 4 }
        ));
        assert!(err.to_string().contains('4'));
        // Two seeds land in different components (farthest-point spread), so
        // two parts cover the disconnected input fine.
        let two = partition(&g, &PartitionConfig::new(2)).unwrap();
        assert_eq!(two.sizes(), &[4, 4]);
        assert_eq!(components::connected_components(&g).count(), 2);
    }

    #[test]
    fn tight_imbalance_still_covers_a_path_graph() {
        // A path is the worst case for frontier deadlock; lock-step growth
        // with capacity exactly ceil(n/parts) must still cover it from
        // spread seeds.
        let mut g = Graph::new(12);
        for i in 0..11 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), 1.0).unwrap();
        }
        let partition = partition(&g, &PartitionConfig::new(2).with_max_imbalance(0.0)).unwrap();
        check_cover(&g, &partition);
        assert!(partition.sizes().iter().all(|&s| s <= 6));
    }
}
