//! Compact subsets of a parent graph's edges.

use crate::EdgeId;
use std::fmt;

/// A subset of the edges of a parent [`Graph`](crate::Graph), stored as a
/// bitset over dense edge identifiers.
///
/// Spanners are represented as `EdgeSet`s throughout the workspace: the
/// conversion theorem takes unions of edge sets over iterations, and the
/// verification oracles interpret an `EdgeSet` together with its parent graph.
///
/// # Example
///
/// ```
/// use ftspan_graph::{EdgeSet, EdgeId};
///
/// let mut s = EdgeSet::new(10);
/// s.insert(EdgeId::new(3));
/// s.insert(EdgeId::new(7));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(EdgeId::new(3)));
/// assert!(!s.contains(EdgeId::new(4)));
/// let ids: Vec<usize> = s.iter().map(|e| e.index()).collect();
/// assert_eq!(ids, vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct EdgeSet {
    blocks: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl EdgeSet {
    /// Creates an empty edge set able to hold edges `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        EdgeSet {
            blocks: vec![0u64; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// The number of edge slots (`m` of the parent graph).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of edges currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set contains no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if edge `e` is in the set.
    ///
    /// Out-of-range identifiers are reported as absent.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        let i = e.index();
        if i >= self.capacity {
            return false;
        }
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Inserts edge `e`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside the capacity of the set.
    pub fn insert(&mut self, e: EdgeId) -> bool {
        let i = e.index();
        assert!(
            i < self.capacity,
            "edge {i} out of range for capacity {}",
            self.capacity
        );
        let mask = 1u64 << (i % 64);
        let block = &mut self.blocks[i / 64];
        if *block & mask == 0 {
            *block |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes edge `e`; returns `true` if it was present.
    pub fn remove(&mut self, e: EdgeId) -> bool {
        let i = e.index();
        if i >= self.capacity {
            return false;
        }
        let mask = 1u64 << (i % 64);
        let block = &mut self.blocks[i / 64];
        if *block & mask != 0 {
            *block &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Adds every edge of `other` to `self` (set union in place).
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    pub fn union_with(&mut self, other: &EdgeSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "cannot union edge sets of different capacities"
        );
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a |= *b;
        }
        self.recount();
    }

    /// Keeps only edges present in both sets (set intersection in place).
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    pub fn intersect_with(&mut self, other: &EdgeSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "cannot intersect edge sets of different capacities"
        );
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= *b;
        }
        self.recount();
    }

    /// Returns `true` if every edge of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &EdgeSet) -> bool {
        if self.capacity != other.capacity {
            return false;
        }
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterator over the edge identifiers in the set, in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    fn recount(&mut self) {
        self.len = self.blocks.iter().map(|b| b.count_ones() as usize).sum();
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeSet")
            .field("capacity", &self.capacity)
            .field("len", &self.len)
            .field("edges", &self.iter().map(|e| e.index()).collect::<Vec<_>>())
            .finish()
    }
}

impl Extend<EdgeId> for EdgeSet {
    fn extend<T: IntoIterator<Item = EdgeId>>(&mut self, iter: T) {
        for e in iter {
            self.insert(e);
        }
    }
}

/// Iterator over the edges of an [`EdgeSet`], produced by [`EdgeSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a EdgeSet,
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(EdgeId::new(self.block_idx * 64 + bit));
            }
            self.block_idx += 1;
            if self.block_idx >= self.set.blocks.len() {
                return None;
            }
            self.current = self.set.blocks[self.block_idx];
        }
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = EdgeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = EdgeSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(EdgeId::new(0)));
        assert!(s.insert(EdgeId::new(64)));
        assert!(s.insert(EdgeId::new(129)));
        assert!(!s.insert(EdgeId::new(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(EdgeId::new(129)));
        assert!(!s.contains(EdgeId::new(128)));
        assert!(s.remove(EdgeId::new(64)));
        assert!(!s.remove(EdgeId::new(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = EdgeSet::new(5);
        assert!(!s.contains(EdgeId::new(100)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        let mut s = EdgeSet::new(5);
        s.insert(EdgeId::new(5));
    }

    #[test]
    fn union_and_intersection() {
        let mut a = EdgeSet::new(100);
        let mut b = EdgeSet::new(100);
        for i in 0..50 {
            a.insert(EdgeId::new(i));
        }
        for i in 25..75 {
            b.insert(EdgeId::new(i));
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 75);
        let mut x = a.clone();
        x.intersect_with(&b);
        assert_eq!(x.len(), 25);
        assert!(x.is_subset_of(&a));
        assert!(x.is_subset_of(&b));
        assert!(a.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let mut s = EdgeSet::new(300);
        let picks = [0usize, 1, 63, 64, 65, 127, 128, 200, 299];
        for &i in picks.iter().rev() {
            s.insert(EdgeId::new(i));
        }
        let got: Vec<usize> = s.iter().map(|e| e.index()).collect();
        assert_eq!(got, picks);
        let got2: Vec<usize> = (&s).into_iter().map(|e| e.index()).collect();
        assert_eq!(got2, picks);
    }

    #[test]
    fn extend_collects_edges() {
        let mut s = EdgeSet::new(10);
        s.extend([EdgeId::new(1), EdgeId::new(2), EdgeId::new(1)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn debug_output_lists_edges() {
        let mut s = EdgeSet::new(8);
        s.insert(EdgeId::new(3));
        let d = format!("{s:?}");
        assert!(d.contains("capacity"));
        assert!(d.contains('3'));
    }

    #[test]
    fn subset_with_mismatched_capacity_is_false() {
        let a = EdgeSet::new(5);
        let b = EdgeSet::new(6);
        assert!(!a.is_subset_of(&b));
    }
}
