//! Cache-friendly CSR (compressed sparse row) views of edge subsets.
//!
//! The verification oracles and the query-serving machinery all answer the
//! same kind of question many times over: "shortest paths in this fixed edge
//! subset, with some vertices (or edges) masked out". The general-purpose
//! [`SsspOptions`](crate::shortest_path::SsspOptions) traversal walks the
//! *parent* graph's adjacency and filters per edge, which pays for every
//! non-spanner edge on every relaxation. [`CsrSubgraph`] instead packs the
//! selected edges once into a flat offsets/targets/weights layout, so
//! repeated traversals touch only the edges that can actually be used and
//! stream through contiguous memory.
//!
//! Fault masking is non-copying: a dead-vertex mask (and optionally a
//! dead-edge mask over *parent* edge identifiers, which each CSR entry
//! remembers) is consulted during traversal instead of rebuilding the
//! subgraph per fault set.

use crate::graph::Edge;
use crate::shortest_path::BucketQueue;
use crate::{EdgeId, EdgeSet, Graph, GraphError, NodeId, Result, INFINITY};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Half-edge count at which [`SsspStrategy::Auto`] switches from the binary
/// heap to the bucket queue. Small traversals are dominated by setup cost,
/// where the heap's zero-reset wins; past a few thousand half-edges the
/// bucket queue's `O(1)` operations take over.
const BUCKET_STRATEGY_HALF_EDGES: usize = 2048;

/// Priority-queue strategy for [`CsrSubgraph::sssp_into_with_strategy`].
///
/// Every strategy computes **bit-identical distances**: floating-point
/// addition of non-negative weights is monotone, so the strict-improvement
/// relaxation fixpoint the traversals converge to is unique regardless of
/// expansion order. Parent trees are always valid shortest-path trees
/// (`dist[v] == dist[parent[v]] + w` exactly, for an edge of weight `w`),
/// though ties may be broken differently between strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SsspStrategy {
    /// Pick per-CSR: bucket queue for large subgraphs, binary heap for
    /// small ones. The choice is a deterministic function of the packed
    /// CSR, so repeated runs (at any thread count) expand identically.
    #[default]
    Auto,
    /// Classic lazy-deletion binary-heap Dijkstra.
    BinaryHeap,
    /// Circular bucket queue (Dial) — see
    /// [`BucketQueue`] for the
    /// delta-choice heuristic.
    BucketQueue,
}

/// A heap entry ordered by ascending distance (mirrors the one in
/// [`crate::shortest_path`]; distances entering the heap are finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A CSR-packed view of a subset of a parent [`Graph`]'s edges.
///
/// The vertex set (and the vertex identifiers) are those of the parent
/// graph; only the selected edges are materialized. Each stored half-edge
/// remembers the parent's [`EdgeId`], so edge-fault masks expressed over the
/// parent graph apply directly.
///
/// # Example
///
/// ```
/// use ftspan_graph::{csr::CsrSubgraph, Graph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_unit_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])?;
/// let csr = CsrSubgraph::from_graph(&g);
/// let dead = vec![false, true, false, false];
/// let dist = csr.sssp(NodeId::new(0), Some(&dead), None)?;
/// // With vertex 1 dead, vertex 2 is reached the long way around.
/// assert_eq!(dist[2], 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrSubgraph {
    /// `offsets[v]..offsets[v + 1]` indexes the half-edges out of `v`.
    offsets: Vec<u32>,
    /// Neighbor of each half-edge.
    targets: Vec<NodeId>,
    /// Weight of each half-edge.
    weights: Vec<f64>,
    /// Parent-graph edge identifier of each half-edge.
    edge_ids: Vec<EdgeId>,
    /// Number of selected (undirected) edges.
    edge_count: usize,
    /// Edge count of the parent graph (for mask validation).
    parent_edge_count: usize,
    /// Largest half-edge weight (0 when no edges are selected); drives the
    /// bucket-queue ring size.
    max_weight: f64,
    /// Sum of all half-edge weights; `weight_sum / targets.len()` is the
    /// mean weight the bucket-queue delta heuristic starts from.
    weight_sum: f64,
}

impl CsrSubgraph {
    /// Packs the edges of `graph` selected by `edges` into CSR form.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MismatchedEdgeSet`] if `edges` was built for a
    /// different edge count.
    pub fn from_edge_set(graph: &Graph, edges: &EdgeSet) -> Result<Self> {
        if edges.capacity() != graph.edge_count() {
            return Err(GraphError::MismatchedEdgeSet {
                set_len: edges.capacity(),
                graph_len: graph.edge_count(),
            });
        }
        let n = graph.node_count();
        let mut degree = vec![0u32; n];
        for id in edges.iter() {
            let e = graph.edge(id);
            degree[e.u.index()] += 1;
            degree[e.v.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let half = offsets[n] as usize;
        let mut targets = vec![NodeId::new(0); half];
        let mut weights = vec![0.0f64; half];
        let mut edge_ids = vec![EdgeId::new(0); half];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for id in edges.iter() {
            let e = graph.edge(id);
            for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                let slot = cursor[from.index()] as usize;
                targets[slot] = to;
                weights[slot] = e.weight;
                edge_ids[slot] = id;
                cursor[from.index()] += 1;
            }
        }
        let (max_weight, weight_sum) = weight_stats(&weights);
        Ok(CsrSubgraph {
            offsets,
            targets,
            weights,
            edge_ids,
            edge_count: edges.len(),
            parent_edge_count: graph.edge_count(),
            max_weight,
            weight_sum,
        })
    }

    /// Packs *every* edge of `graph` into CSR form.
    pub fn from_graph(graph: &Graph) -> Self {
        Self::from_edge_set(graph, &graph.full_edge_set())
            .expect("the full edge set always matches the graph")
    }

    /// Packs an `n`-vertex graph directly from an edge list, without ever
    /// materializing a [`Graph`].
    ///
    /// This is the streaming generators' back end: edges flow straight into
    /// the two-pass counting build, so peak memory is the CSR itself plus
    /// the caller's edge list. Edge identifiers are assigned in input order
    /// and the resulting view is *full* (`edge_count == parent_edge_count`),
    /// so edge-fault masks of length `edges.len()` apply directly.
    ///
    /// Duplicate edges are not detected here (the list is not required to
    /// be sorted); [`CsrSubgraph::to_graph`] rejects them when a simple
    /// graph is reconstructed.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if any endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if any edge is a self-loop.
    /// * [`GraphError::InvalidWeight`] if any weight is negative or not
    ///   finite.
    pub fn from_edge_list(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut builder = CsrBuilder::new(n);
        for &(u, v, _) in edges {
            builder.count_edge(u, v)?;
        }
        builder.begin_fill();
        for &(u, v, w) in edges {
            builder.push_edge(u, v, w)?;
        }
        builder.finish()
    }

    /// Reconstructs a [`Graph`] from a *full* CSR view (one where every
    /// parent edge is selected), preserving edge identifiers exactly: edge
    /// `i` of the returned graph is the CSR half-edge pair labelled `i`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if this view selects only a
    /// subset of its parent's edges (partial views cannot speak for parent
    /// edge identifiers they do not contain), if an edge identifier is
    /// missing or duplicated, or if the reconstruction would contain
    /// parallel edges.
    pub fn to_graph(&self) -> Result<Graph> {
        if self.edge_count != self.parent_edge_count {
            return Err(GraphError::InvalidParameter {
                message: format!(
                    "to_graph requires a full CSR view ({} of {} parent edges selected)",
                    self.edge_count, self.parent_edge_count
                ),
            });
        }
        let mut records: Vec<Option<Edge>> = vec![None; self.edge_count];
        for v in 0..self.node_count() {
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            for i in lo..hi {
                let u = self.targets[i];
                if v < u.index() {
                    let slot = self.edge_ids[i].index();
                    if records[slot].is_some() {
                        return Err(GraphError::InvalidParameter {
                            message: format!("edge id {slot} appears twice in CSR view"),
                        });
                    }
                    records[slot] = Some(Edge {
                        u: NodeId::new(v),
                        v: u,
                        weight: self.weights[i],
                    });
                }
            }
        }
        let edges: Vec<Edge> = records
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                e.ok_or_else(|| GraphError::InvalidParameter {
                    message: format!("edge id {i} missing from CSR view"),
                })
            })
            .collect::<Result<_>>()?;
        Graph::from_indexed_edges(self.node_count(), edges)
    }

    /// Number of vertices (the parent graph's).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of selected (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Edge count of the parent graph this view was packed from.
    #[inline]
    pub fn parent_edge_count(&self) -> usize {
        self.parent_edge_count
    }

    /// Degree of `v` within the selected edge subset.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Iterator over `(neighbor, weight, parent EdgeId)` triples out of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64, EdgeId)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| (self.targets[i], self.weights[i], self.edge_ids[i]))
    }

    fn validate_masks(
        &self,
        source: NodeId,
        dead: Option<&[bool]>,
        dead_edges: Option<&[bool]>,
    ) -> Result<()> {
        let n = self.node_count();
        if source.index() >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: source.index(),
                len: n,
            });
        }
        if let Some(dead) = dead {
            if dead.len() != n {
                return Err(GraphError::NodeOutOfBounds {
                    node: dead.len(),
                    len: n,
                });
            }
        }
        if let Some(dead_edges) = dead_edges {
            if dead_edges.len() != self.parent_edge_count {
                return Err(GraphError::MismatchedEdgeSet {
                    set_len: dead_edges.len(),
                    graph_len: self.parent_edge_count,
                });
            }
        }
        Ok(())
    }

    /// Dijkstra from `source` over the packed edges, skipping vertices with
    /// `dead[v] == true` and half-edges whose parent edge is marked in
    /// `dead_edges` (a mask over *parent* edge identifiers).
    ///
    /// Returns the distance to every vertex (`INFINITY` when unreachable; a
    /// dead source reaches nothing).
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if `source` is out of bounds or
    ///   `dead` has the wrong length.
    /// * [`GraphError::MismatchedEdgeSet`] if `dead_edges` does not match the
    ///   parent graph's edge count.
    pub fn sssp(
        &self,
        source: NodeId,
        dead: Option<&[bool]>,
        dead_edges: Option<&[bool]>,
    ) -> Result<Vec<f64>> {
        Ok(self.run_dijkstra(source, dead, dead_edges, None)?.0)
    }

    /// Like [`CsrSubgraph::sssp`], but also returns the predecessor of every
    /// reached vertex (`None` for the source and unreachable vertices), so
    /// callers can extract actual shortest paths.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CsrSubgraph::sssp`].
    pub fn sssp_with_parents(
        &self,
        source: NodeId,
        dead: Option<&[bool]>,
        dead_edges: Option<&[bool]>,
    ) -> Result<(Vec<f64>, Vec<Option<NodeId>>)> {
        let (dist, parents) = self.run_dijkstra(source, dead, dead_edges, None)?;
        Ok((dist, parents))
    }

    /// Like [`CsrSubgraph::sssp`], but stops expanding once the tentative
    /// distance exceeds `cutoff` (vertices beyond it report `INFINITY`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CsrSubgraph::sssp`].
    pub fn sssp_bounded(
        &self,
        source: NodeId,
        dead: Option<&[bool]>,
        dead_edges: Option<&[bool]>,
        cutoff: f64,
    ) -> Result<Vec<f64>> {
        Ok(self.run_dijkstra(source, dead, dead_edges, Some(cutoff))?.0)
    }

    fn run_dijkstra(
        &self,
        source: NodeId,
        dead: Option<&[bool]>,
        dead_edges: Option<&[bool]>,
        cutoff: Option<f64>,
    ) -> Result<(Vec<f64>, Vec<Option<NodeId>>)> {
        let mut workspace = SsspWorkspace::new();
        self.sssp_into(source, dead, dead_edges, cutoff, &mut workspace)?;
        let SsspWorkspace { dist, parent, .. } = workspace;
        Ok((dist, parent))
    }

    /// Like [`CsrSubgraph::sssp_with_parents`], but writes into a reusable
    /// [`SsspWorkspace`] instead of allocating fresh distance/parent arrays.
    ///
    /// Serving hot paths answer thousands of queries against the same CSR;
    /// reusing one workspace across them removes three allocations (and the
    /// page-faulting they imply) per traversal. The results are **identical**
    /// to the allocating variants — the workspace only changes where they
    /// land.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CsrSubgraph::sssp`].
    pub fn sssp_into(
        &self,
        source: NodeId,
        dead: Option<&[bool]>,
        dead_edges: Option<&[bool]>,
        cutoff: Option<f64>,
        workspace: &mut SsspWorkspace,
    ) -> Result<()> {
        self.sssp_into_with_strategy(
            source,
            dead,
            dead_edges,
            cutoff,
            SsspStrategy::Auto,
            workspace,
        )
    }

    /// Like [`CsrSubgraph::sssp_into`], but with an explicit priority-queue
    /// [`SsspStrategy`] instead of the automatic per-CSR choice.
    ///
    /// All strategies produce bit-identical distance arrays (see
    /// [`SsspStrategy`]); exposing the choice lets tests pin the
    /// equivalence and lets callers with unusual weight profiles override
    /// the heuristic.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CsrSubgraph::sssp`].
    pub fn sssp_into_with_strategy(
        &self,
        source: NodeId,
        dead: Option<&[bool]>,
        dead_edges: Option<&[bool]>,
        cutoff: Option<f64>,
        strategy: SsspStrategy,
        workspace: &mut SsspWorkspace,
    ) -> Result<()> {
        self.validate_masks(source, dead, dead_edges)?;
        let n = self.node_count();
        workspace.reset(n);
        let is_dead = |v: NodeId| dead.is_some_and(|d| d[v.index()]);
        if is_dead(source) {
            return Ok(());
        }
        let use_buckets = match strategy {
            SsspStrategy::BinaryHeap => false,
            SsspStrategy::BucketQueue => true,
            SsspStrategy::Auto => self.targets.len() >= BUCKET_STRATEGY_HALF_EDGES,
        };
        let dist = &mut workspace.dist;
        let parent = &mut workspace.parent;
        dist[source.index()] = 0.0;
        if use_buckets {
            let buckets = &mut workspace.buckets;
            let delta =
                BucketQueue::suggest_delta(self.weight_sum, self.max_weight, self.targets.len());
            buckets.reset(delta, self.max_weight);
            buckets.push(0.0, source);
            while let Some((d, v)) = buckets.pop() {
                if d > dist[v.index()] {
                    continue;
                }
                if let Some(c) = cutoff {
                    if d > c {
                        continue;
                    }
                }
                let lo = self.offsets[v.index()] as usize;
                let hi = self.offsets[v.index() + 1] as usize;
                for i in lo..hi {
                    let u = self.targets[i];
                    if is_dead(u) {
                        continue;
                    }
                    if dead_edges.is_some_and(|m| m[self.edge_ids[i].index()]) {
                        continue;
                    }
                    let nd = d + self.weights[i];
                    if let Some(c) = cutoff {
                        if nd > c {
                            continue;
                        }
                    }
                    if nd < dist[u.index()] {
                        dist[u.index()] = nd;
                        parent[u.index()] = Some(v);
                        buckets.push(nd, u);
                    }
                }
            }
        } else {
            let heap = &mut workspace.heap;
            heap.push(HeapEntry {
                dist: 0.0,
                node: source,
            });
            while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
                if d > dist[v.index()] {
                    continue;
                }
                if let Some(c) = cutoff {
                    if d > c {
                        continue;
                    }
                }
                let lo = self.offsets[v.index()] as usize;
                let hi = self.offsets[v.index() + 1] as usize;
                for i in lo..hi {
                    let u = self.targets[i];
                    if is_dead(u) {
                        continue;
                    }
                    if dead_edges.is_some_and(|m| m[self.edge_ids[i].index()]) {
                        continue;
                    }
                    let nd = d + self.weights[i];
                    if let Some(c) = cutoff {
                        if nd > c {
                            continue;
                        }
                    }
                    if nd < dist[u.index()] {
                        dist[u.index()] = nd;
                        parent[u.index()] = Some(v);
                        heap.push(HeapEntry { dist: nd, node: u });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Two-phase streaming builder for a *full* [`CsrSubgraph`], the back end
/// of the memory-bounded generators in
/// [`stream`](crate::stream): callers first announce every edge's endpoints
/// ([`CsrBuilder::count_edge`]), then replay the same edges with weights
/// ([`CsrBuilder::push_edge`]), and no intermediate [`Graph`] or edge list
/// is ever materialized — peak memory is the finished CSR plus one cursor
/// array.
///
/// Edge identifiers are assigned in push order, so the two passes must
/// enumerate edges identically (same edges, same order).
///
/// # Example
///
/// ```
/// use ftspan_graph::csr::CsrBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let edges = [(0, 1, 1.0), (1, 2, 2.0)];
/// let mut b = CsrBuilder::new(3);
/// for &(u, v, _) in &edges {
///     b.count_edge(u, v)?;
/// }
/// b.begin_fill();
/// for &(u, v, w) in &edges {
///     b.push_edge(u, v, w)?;
/// }
/// let csr = b.finish()?;
/// assert_eq!(csr.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    /// During counting, `offsets[v + 1]` accumulates `degree(v)`; after
    /// `begin_fill` it is the finished prefix-sum array.
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
    edge_ids: Vec<EdgeId>,
    cursor: Vec<u32>,
    counted: usize,
    filled: usize,
    filling: bool,
}

impl CsrBuilder {
    /// A builder for an `n`-vertex CSR, in the counting phase.
    pub fn new(n: usize) -> Self {
        CsrBuilder {
            offsets: vec![0u32; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
            edge_ids: Vec::new(),
            cursor: Vec::new(),
            counted: 0,
            filled: 0,
            filling: false,
        }
    }

    /// Number of vertices of the CSR under construction.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Phase one: record that an edge `(u, v)` will be pushed later.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if an endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::InvalidParameter`] if counting after
    ///   [`CsrBuilder::begin_fill`], or past `u32::MAX / 2` edges.
    pub fn count_edge(&mut self, u: usize, v: usize) -> Result<()> {
        if self.filling {
            return Err(GraphError::InvalidParameter {
                message: "count_edge called after begin_fill".into(),
            });
        }
        let n = self.node_count();
        for x in [u, v] {
            if x >= n {
                return Err(GraphError::NodeOutOfBounds { node: x, len: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.counted >= (u32::MAX / 2) as usize {
            return Err(GraphError::InvalidParameter {
                message: "CSR builder is limited to u32::MAX / 2 edges".into(),
            });
        }
        self.offsets[u + 1] += 1;
        self.offsets[v + 1] += 1;
        self.counted += 1;
        Ok(())
    }

    /// Switches from counting to filling: builds the offset prefix sums and
    /// allocates the half-edge arrays. Idempotent.
    pub fn begin_fill(&mut self) {
        if self.filling {
            return;
        }
        let n = self.node_count();
        for v in 0..n {
            self.offsets[v + 1] += self.offsets[v];
        }
        let half = self.offsets[n] as usize;
        self.targets = vec![NodeId::new(0); half];
        self.weights = vec![0.0f64; half];
        self.edge_ids = vec![EdgeId::new(0); half];
        self.cursor = self.offsets[..n].to_vec();
        self.filling = true;
    }

    /// Phase two: push edge `(u, v)` with its weight. Edges must arrive in
    /// the same order as the counting pass; the edge receives the next
    /// sequential [`EdgeId`].
    ///
    /// # Errors
    ///
    /// * [`GraphError::InvalidWeight`] if `w` is negative or not finite.
    /// * [`GraphError::NodeOutOfBounds`] / [`GraphError::SelfLoop`] as in
    ///   [`CsrBuilder::count_edge`].
    /// * [`GraphError::InvalidParameter`] if called before
    ///   [`CsrBuilder::begin_fill`] or with more edges than were counted.
    pub fn push_edge(&mut self, u: usize, v: usize, w: f64) -> Result<()> {
        if !self.filling {
            return Err(GraphError::InvalidParameter {
                message: "push_edge called before begin_fill".into(),
            });
        }
        let n = self.node_count();
        for x in [u, v] {
            if x >= n {
                return Err(GraphError::NodeOutOfBounds { node: x, len: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if !(w.is_finite() && w >= 0.0) {
            return Err(GraphError::InvalidWeight { weight: w });
        }
        if self.filled >= self.counted {
            return Err(GraphError::InvalidParameter {
                message: "more edges pushed than counted".into(),
            });
        }
        let id = EdgeId::new(self.filled);
        for (from, to) in [(u, v), (v, u)] {
            let slot = self.cursor[from] as usize;
            // A fill pass that deviates from the counting pass can overrun a
            // vertex's slot range; the cheap invariant check below catches
            // it at the vertex boundary.
            if slot >= self.offsets[from + 1] as usize {
                return Err(GraphError::InvalidParameter {
                    message: format!("fill pass disagrees with counting pass at vertex {from}"),
                });
            }
            self.targets[slot] = NodeId::new(to);
            self.weights[slot] = w;
            self.edge_ids[slot] = id;
            self.cursor[from] += 1;
        }
        self.filled += 1;
        Ok(())
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if fewer edges were pushed
    /// than counted.
    pub fn finish(mut self) -> Result<CsrSubgraph> {
        self.begin_fill(); // no-op unless zero edges were pushed at all
        if self.filled != self.counted {
            return Err(GraphError::InvalidParameter {
                message: format!(
                    "CSR builder counted {} edges but {} were pushed",
                    self.counted, self.filled
                ),
            });
        }
        let (max_weight, weight_sum) = weight_stats(&self.weights);
        Ok(CsrSubgraph {
            offsets: self.offsets,
            targets: self.targets,
            weights: self.weights,
            edge_ids: self.edge_ids,
            edge_count: self.filled,
            parent_edge_count: self.filled,
            max_weight,
            weight_sum,
        })
    }
}

/// Maximum and sum of the half-edge weight array (both 0 when empty).
fn weight_stats(weights: &[f64]) -> (f64, f64) {
    let mut max_weight = 0.0f64;
    let mut weight_sum = 0.0f64;
    for &w in weights {
        if w > max_weight {
            max_weight = w;
        }
        weight_sum += w;
    }
    (max_weight, weight_sum)
}

/// Reusable buffers for [`CsrSubgraph::sssp_into`]: the distance array, the
/// parent array and the binary heap of one Dijkstra run.
///
/// One workspace serves any number of traversals (over CSRs of any size —
/// buffers grow as needed and are reset, not reallocated, between runs).
/// After a run, [`SsspWorkspace::distances`] and [`SsspWorkspace::parents`]
/// expose the results exactly as [`CsrSubgraph::sssp_with_parents`] would
/// have returned them.
#[derive(Debug, Clone, Default)]
pub struct SsspWorkspace {
    dist: Vec<f64>,
    parent: Vec<Option<NodeId>>,
    heap: BinaryHeap<HeapEntry>,
    buckets: BucketQueue,
}

impl SsspWorkspace {
    /// An empty workspace (buffers are sized lazily by the first run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Distances of the last run (`INFINITY` for unreached vertices).
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Predecessors of the last run (`None` for the source and unreached
    /// vertices).
    pub fn parents(&self) -> &[Option<NodeId>] {
        &self.parent
    }

    /// Clears the buffers and sizes them for an `n`-vertex traversal.
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, INFINITY);
        self.parent.clear();
        self.parent.resize(n, None);
        self.heap.clear();
    }
}

/// Reconstructs the path `source -> target` from a predecessor array
/// produced by [`CsrSubgraph::sssp_with_parents`] run from `source`.
///
/// Returns `None` when `target` was not reached. The path lists vertices in
/// order, starting at `source` and ending at `target` (a single-vertex path
/// when they coincide and the source was reached).
pub fn reconstruct_path(
    parents: &[Option<NodeId>],
    dist: &[f64],
    source: NodeId,
    target: NodeId,
) -> Option<Vec<NodeId>> {
    if target.index() >= dist.len() || dist[target.index()].is_infinite() {
        return None;
    }
    let mut path = vec![target];
    let mut cursor = target;
    while cursor != source {
        cursor = parents[cursor.index()]?;
        path.push(cursor);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::shortest_path::SsspOptions;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn csr_matches_graph_adjacency() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (0, 3, 4.0)]).unwrap();
        let csr = CsrSubgraph::from_graph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.degree(NodeId::new(0)), 2);
        let nbrs: Vec<NodeId> = csr.neighbors(NodeId::new(1)).map(|(v, _, _)| v).collect();
        assert!(nbrs.contains(&NodeId::new(0)));
        assert!(nbrs.contains(&NodeId::new(2)));
    }

    #[test]
    fn csr_sssp_agrees_with_sssp_options_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..8 {
            let g = generate::gnp(
                20,
                0.3,
                generate::WeightKind::Uniform { min: 0.5, max: 3.0 },
                &mut rng,
            );
            // A random edge subset as "spanner".
            let mut subset = g.empty_edge_set();
            for (id, _) in g.edges() {
                if rand::Rng::gen::<f64>(&mut rng) < 0.7 {
                    subset.insert(id);
                }
            }
            let csr = CsrSubgraph::from_edge_set(&g, &subset).unwrap();
            let dead = {
                let mut d = vec![false; g.node_count()];
                d[3] = true;
                d[7] = true;
                d
            };
            for src in [0usize, 5, 11] {
                let reference = SsspOptions::new()
                    .restrict_edges(&subset)
                    .forbid_vertices(&dead)
                    .run(&g, NodeId::new(src))
                    .unwrap();
                let fast = csr.sssp(NodeId::new(src), Some(&dead), None).unwrap();
                assert_eq!(reference, fast);
            }
        }
    }

    #[test]
    fn csr_edge_mask_drops_edges() {
        let g = Graph::from_unit_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let csr = CsrSubgraph::from_graph(&g);
        let mut dead_edges = vec![false; g.edge_count()];
        dead_edges[0] = true; // kill (0, 1)
        let d = csr.sssp(NodeId::new(0), None, Some(&dead_edges)).unwrap();
        assert_eq!(d[1], 3.0); // forced the long way: 0-3-2-1
    }

    #[test]
    fn csr_paths_are_consistent_with_distances() {
        let g =
            Graph::from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 10.0)]).unwrap();
        let csr = CsrSubgraph::from_graph(&g);
        let (dist, parents) = csr.sssp_with_parents(NodeId::new(0), None, None).unwrap();
        let p = reconstruct_path(&parents, &dist, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(
            p,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        // Path weight equals the reported distance.
        let mut total = 0.0;
        for w in p.windows(2) {
            let e = g.find_edge(w[0], w[1]).unwrap();
            total += g.edge(e).weight;
        }
        assert_eq!(total, dist[3]);
        // Self-path and unreachable targets.
        assert_eq!(
            reconstruct_path(&parents, &dist, NodeId::new(0), NodeId::new(0)),
            Some(vec![NodeId::new(0)])
        );
        let g2 = Graph::new(2);
        let csr2 = CsrSubgraph::from_graph(&g2);
        let (d2, p2) = csr2.sssp_with_parents(NodeId::new(0), None, None).unwrap();
        assert_eq!(
            reconstruct_path(&p2, &d2, NodeId::new(0), NodeId::new(1)),
            None
        );
    }

    #[test]
    fn csr_dead_source_reaches_nothing() {
        let g = generate::cycle(5);
        let csr = CsrSubgraph::from_graph(&g);
        let mut dead = vec![false; 5];
        dead[0] = true;
        let d = csr.sssp(NodeId::new(0), Some(&dead), None).unwrap();
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn csr_cutoff_prunes() {
        let g = generate::path(6);
        let csr = CsrSubgraph::from_graph(&g);
        let d = csr.sssp_bounded(NodeId::new(0), None, None, 2.5).unwrap();
        assert_eq!(d[2], 2.0);
        assert!(d[4].is_infinite());
    }

    #[test]
    fn workspace_runs_match_allocating_runs_across_csrs() {
        // One workspace, reused across CSRs of different sizes and masks:
        // results must match the allocating API exactly.
        let mut ws = SsspWorkspace::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for n in [6usize, 17, 9] {
            let g = generate::gnp(n, 0.4, generate::WeightKind::Unit, &mut rng);
            let csr = CsrSubgraph::from_graph(&g);
            let mut dead = vec![false; n];
            dead[n / 2] = true;
            for src in 0..n.min(4) {
                let (dist, parents) = csr
                    .sssp_with_parents(NodeId::new(src), Some(&dead), None)
                    .unwrap();
                csr.sssp_into(NodeId::new(src), Some(&dead), None, None, &mut ws)
                    .unwrap();
                assert_eq!(ws.distances(), dist.as_slice());
                assert_eq!(ws.parents(), parents.as_slice());
            }
        }
        // Invalid inputs are still typed errors through the workspace path.
        let g = generate::path(4);
        let csr = CsrSubgraph::from_graph(&g);
        assert!(csr
            .sssp_into(NodeId::new(9), None, None, None, &mut ws)
            .is_err());
    }

    #[test]
    fn edge_list_roundtrips_through_graph() {
        let list = [(0usize, 1usize, 1.5), (2, 1, 0.5), (0, 3, 2.0), (2, 3, 1.0)];
        let csr = CsrSubgraph::from_edge_list(4, &list).unwrap();
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.parent_edge_count(), 4);
        let g = csr.to_graph().unwrap();
        assert_eq!(g.edge_count(), 4);
        // Edge ids follow list order, endpoints normalized.
        let e1 = g.edge(EdgeId::new(1));
        assert_eq!(
            (e1.u, e1.v, e1.weight),
            (NodeId::new(1), NodeId::new(2), 0.5)
        );
        // The reconstruction packs back to the same CSR.
        assert_eq!(CsrSubgraph::from_graph(&g), csr);
        // And distances agree with a Graph built the usual way.
        let reference = Graph::from_edges(4, list).unwrap();
        assert_eq!(
            CsrSubgraph::from_graph(&reference)
                .sssp(NodeId::new(0), None, None)
                .unwrap(),
            csr.sssp(NodeId::new(0), None, None).unwrap()
        );
    }

    #[test]
    fn edge_list_and_builder_validate() {
        assert!(CsrSubgraph::from_edge_list(3, &[(0, 3, 1.0)]).is_err());
        assert!(CsrSubgraph::from_edge_list(3, &[(1, 1, 1.0)]).is_err());
        assert!(CsrSubgraph::from_edge_list(3, &[(0, 1, -2.0)]).is_err());
        // Duplicates pack fine (multigraph view) but cannot become a Graph.
        let dup = CsrSubgraph::from_edge_list(3, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        assert!(dup.to_graph().is_err());
        // A partial view cannot speak for its parent's edge ids.
        let g = generate::path(4);
        let mut keep = g.empty_edge_set();
        keep.insert(EdgeId::new(0));
        let partial = CsrSubgraph::from_edge_set(&g, &keep).unwrap();
        assert!(partial.to_graph().is_err());
        // Builder phase errors are typed.
        let mut b = CsrBuilder::new(2);
        assert!(b.push_edge(0, 1, 1.0).is_err()); // fill before begin_fill
        b.count_edge(0, 1).unwrap();
        b.begin_fill();
        assert!(b.count_edge(0, 1).is_err()); // count after begin_fill
        assert!(b.clone().finish().is_err()); // fewer pushed than counted
        b.push_edge(0, 1, 1.0).unwrap();
        assert!(b.push_edge(0, 1, 1.0).is_err()); // more pushed than counted
        let csr = b.finish().unwrap();
        assert_eq!(csr.edge_count(), 1);
    }

    #[test]
    fn bucket_and_heap_strategies_agree_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut heap_ws = SsspWorkspace::new();
        let mut bucket_ws = SsspWorkspace::new();
        for _ in 0..6 {
            let g = generate::gnp(
                30,
                0.2,
                generate::WeightKind::Uniform { min: 0.1, max: 9.0 },
                &mut rng,
            );
            let csr = CsrSubgraph::from_graph(&g);
            let mut dead = vec![false; g.node_count()];
            dead[4] = true;
            for src in [0usize, 9, 21] {
                for cutoff in [None, Some(3.5)] {
                    csr.sssp_into_with_strategy(
                        NodeId::new(src),
                        Some(&dead),
                        None,
                        cutoff,
                        SsspStrategy::BinaryHeap,
                        &mut heap_ws,
                    )
                    .unwrap();
                    csr.sssp_into_with_strategy(
                        NodeId::new(src),
                        Some(&dead),
                        None,
                        cutoff,
                        SsspStrategy::BucketQueue,
                        &mut bucket_ws,
                    )
                    .unwrap();
                    assert_eq!(heap_ws.distances(), bucket_ws.distances());
                    // Parents may differ between strategies, but both must
                    // be tight shortest-path trees.
                    for (v, p) in bucket_ws.parents().iter().enumerate() {
                        if let Some(p) = p {
                            let e = g.find_edge(NodeId::new(v), *p).unwrap();
                            let d = bucket_ws.distances();
                            assert_eq!(d[v], d[p.index()] + g.edge(e).weight);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn csr_validates_inputs() {
        let g = generate::path(4);
        let csr = CsrSubgraph::from_graph(&g);
        assert!(csr.sssp(NodeId::new(9), None, None).is_err());
        let short_mask = vec![false; 2];
        assert!(csr.sssp(NodeId::new(0), Some(&short_mask), None).is_err());
        let bad_edges = vec![false; 99];
        assert!(csr.sssp(NodeId::new(0), None, Some(&bad_edges)).is_err());
        let wrong = EdgeSet::new(42);
        assert!(CsrSubgraph::from_edge_set(&g, &wrong).is_err());
    }
}
