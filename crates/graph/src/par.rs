//! A small dependency-free scoped-thread work pool.
//!
//! Every parallel hot path in the workspace — the per-fault-set iterations of
//! the conversion constructions, the per-source Dijkstra sweeps of the
//! verification oracles, the separation-oracle rounds of the LP relaxation,
//! and the serving `Engine`'s query batches — follows the same discipline:
//!
//! 1. the work is an **indexed** set of independent tasks `0..items`;
//! 2. each task writes only to its own output slot;
//! 3. results are returned **in index order**, so the output is a pure
//!    function of the inputs and never of the worker count or scheduling.
//!
//! [`map`] packages that discipline once. Workers pull task indices from a
//! shared dispenser (so heterogeneous tasks load-balance), but every result
//! lands in the slot of its index; `threads = 1` degenerates to a plain
//! sequential loop in index order with zero thread overhead.
//!
//! Randomized tasks stay deterministic by the same rule used throughout the
//! workspace: the caller draws one seed per task *sequentially* from its own
//! generator and each task derives a private stream from its seed, so no
//! generator is ever shared across threads.
//!
//! # Example
//!
//! ```
//! use ftspan_graph::par;
//!
//! let squares = par::map(4, 10, |i| i * i);
//! assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
//! // Identical output at any worker count.
//! assert_eq!(squares, par::map(1, 10, |i| i * i));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested worker count: `None` means one worker per available
/// CPU (at least one), `Some(t)` is clamped to at least 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(t) => t.max(1),
        None => available_threads(),
    }
}

/// One worker per available CPU, at least one.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs `f(0), f(1), …, f(items - 1)` across at most `threads` scoped worker
/// threads and returns the results **in index order**.
///
/// The output is identical for every `threads` value (scheduling only affects
/// which worker computes which index, never where the result lands), and
/// `threads <= 1` runs a plain sequential loop. Workers pull indices from a
/// shared dispenser, so tasks of uneven cost balance automatically.
///
/// # Panics
///
/// Propagates a panic from any task (the scope joins every worker first).
pub fn map<T, F>(threads: usize, items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(items);
    if threads <= 1 {
        return (0..items).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..items).map(|_| None).collect();
    for bucket in buckets {
        for (i, value) in bucket {
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is dispensed exactly once"))
        .collect()
}

/// [`map`] followed by an in-order fold: the sequential reduction makes the
/// combined value independent of the worker count even for non-associative
/// combines.
pub fn map_reduce<T, A, F, G>(threads: usize, items: usize, init: A, f: F, mut combine: G) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(A, T) -> A,
{
    let mut acc = init;
    for value in map(threads, items, f) {
        acc = combine(acc, value);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_identical_across_thread_counts() {
        let reference: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(map(threads, 257, |i| i * 3 + 1), reference);
        }
    }

    #[test]
    fn map_handles_edge_cases() {
        assert_eq!(map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map(0, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(map(16, 1, |i| i), vec![0]);
    }

    #[test]
    fn map_load_balances_uneven_tasks() {
        // Tasks of wildly different cost still land in their slots.
        let out = map(4, 40, |i| {
            if i % 7 == 0 {
                (0..5_000).fold(i, |a, b| a.wrapping_add(b))
            } else {
                i
            }
        });
        assert_eq!(out.len(), 40);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn map_reduce_is_an_in_order_fold() {
        let concat = map_reduce(
            4,
            6,
            String::new(),
            |i| i.to_string(),
            |mut acc, s| {
                acc.push_str(&s);
                acc
            },
        );
        assert_eq!(concat, "012345");
    }

    #[test]
    fn resolve_threads_defaults_and_clamps() {
        assert!(resolve_threads(None) >= 1);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(5)), 5);
        assert!(available_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        map(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
