//! Error type for the graph substrate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by graph construction and manipulation.
///
/// All fallible public functions in this crate return
/// [`Result<T>`](crate::Result) with this error type.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex index was outside `0..n`.
    NodeOutOfBounds {
        /// The offending index.
        node: usize,
        /// The number of vertices in the graph.
        len: usize,
    },
    /// An edge index was outside `0..m`.
    EdgeOutOfBounds {
        /// The offending index.
        edge: usize,
        /// The number of edges in the graph.
        len: usize,
    },
    /// A self-loop was supplied where simple graphs are required.
    SelfLoop {
        /// The vertex with the attempted self-loop.
        node: usize,
    },
    /// An edge weight or cost was negative or NaN.
    InvalidWeight {
        /// The offending weight value.
        weight: f64,
    },
    /// An [`EdgeSet`](crate::EdgeSet) was used with a graph of a different
    /// edge count than the one it was created for.
    MismatchedEdgeSet {
        /// Edge capacity of the edge set.
        set_len: usize,
        /// Edge count of the graph.
        graph_len: usize,
    },
    /// A parameter of a generator or algorithm was invalid.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        message: String,
    },
    /// A balanced partition could not cover every vertex: growth stalled
    /// with vertices unreachable from any part with spare capacity (a
    /// disconnected input, or an imbalance bound too tight for its shape).
    PartitionStalled {
        /// Number of vertices no part could claim.
        unassigned: usize,
    },
    /// A graph file could not be read or written.
    Io {
        /// The underlying I/O error, rendered as a string so the error stays
        /// cloneable and comparable.
        message: String,
    },
    /// A graph file had invalid contents.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what was expected.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, len } => {
                write!(
                    f,
                    "node index {node} out of bounds for graph with {len} vertices"
                )
            }
            GraphError::EdgeOutOfBounds { edge, len } => {
                write!(
                    f,
                    "edge index {edge} out of bounds for graph with {len} edges"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop at vertex {node} is not allowed in a simple graph"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(
                    f,
                    "edge weight {weight} is not a non-negative finite number"
                )
            }
            GraphError::MismatchedEdgeSet { set_len, graph_len } => {
                write!(
                    f,
                    "edge set was built for {set_len} edges but the graph has {graph_len} edges"
                )
            }
            GraphError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            GraphError::PartitionStalled { unassigned } => {
                write!(
                    f,
                    "partition growth stalled with {unassigned} vertices unreachable from any \
                     part with spare capacity (disconnected input or too-tight imbalance bound)"
                )
            }
            GraphError::Io { message } => {
                write!(f, "graph i/o failed: {message}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "invalid graph file at line {line}: {message}")
            }
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io {
            message: err.to_string(),
        }
    }
}

impl StdError for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GraphError::NodeOutOfBounds { node: 7, len: 3 };
        let s = e.to_string();
        assert!(s.contains('7'));
        assert!(s.contains('3'));
        assert!(s.starts_with("node index"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }

    #[test]
    fn all_variants_display_nonempty() {
        let errors = vec![
            GraphError::NodeOutOfBounds { node: 1, len: 0 },
            GraphError::EdgeOutOfBounds { edge: 1, len: 0 },
            GraphError::SelfLoop { node: 2 },
            GraphError::InvalidWeight { weight: -1.0 },
            GraphError::MismatchedEdgeSet {
                set_len: 3,
                graph_len: 4,
            },
            GraphError::InvalidParameter {
                message: "p must be in [0,1]".into(),
            },
            GraphError::PartitionStalled { unassigned: 5 },
            GraphError::Io {
                message: "file not found".into(),
            },
            GraphError::Parse {
                line: 3,
                message: "expected three fields".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
