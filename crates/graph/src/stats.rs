//! Descriptive statistics over graphs and spanners.
//!
//! The experiments report more than a single worst-case stretch number: the
//! distribution of per-edge stretches, the degree profile of the workload
//! graphs, and how much of the total weight a spanner keeps. This module
//! gathers those summaries in one place so the experiment binaries and the
//! examples do not each reimplement them.

use crate::csr::CsrSubgraph;
use crate::{DiGraph, EdgeSet, Graph, GraphError, Result};

/// Summary of the degrees of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree (0 for the empty graph).
    pub min: usize,
    /// Maximum degree (0 for the empty graph).
    pub max: usize,
    /// Mean degree (0.0 for the empty graph).
    pub mean: f64,
    /// Full histogram: `histogram[d]` is the number of vertices of degree `d`.
    pub histogram: Vec<usize>,
}

impl DegreeStats {
    /// Number of isolated vertices (degree 0).
    pub fn isolated(&self) -> usize {
        self.histogram.first().copied().unwrap_or(0)
    }
}

/// Computes the degree summary of `graph`.
///
/// # Example
///
/// ```
/// use ftspan_graph::{generate, stats};
///
/// let g = generate::path(5);
/// let d = stats::degree_stats(&g);
/// assert_eq!(d.min, 1);
/// assert_eq!(d.max, 2);
/// assert_eq!(d.histogram[1], 2);
/// assert_eq!(d.histogram[2], 3);
/// ```
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.node_count();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            histogram: Vec::new(),
        };
    }
    let degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let min = degrees.iter().copied().min().unwrap_or(0);
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let mut histogram = vec![0usize; max + 1];
    for d in degrees {
        histogram[d] += 1;
    }
    DegreeStats {
        min,
        max,
        mean,
        histogram,
    }
}

/// Summary of the distribution of per-edge stretches of a spanner.
///
/// The stretch of an edge `(u, v)` is `d_H(u, v) / d_G(u, v)`: how much
/// longer the best route in the spanner `H` is than the best route in the
/// input. The paper's guarantee is about the maximum, but the distribution
/// shows how conservative the construction is on typical edges.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchStats {
    /// Number of edges measured (edges with positive input distance).
    pub edges: usize,
    /// Worst (maximum) stretch; `INFINITY` if some edge is disconnected in
    /// the spanner.
    pub max: f64,
    /// Mean stretch over measured edges (1.0 when no edge was measured).
    pub mean: f64,
    /// Median stretch (1.0 when no edge was measured).
    pub median: f64,
    /// Fraction of edges whose stretch is exactly 1 (within numerical slack).
    pub fraction_exact: f64,
}

/// Computes the distribution of per-edge stretches of `spanner` on `graph`.
///
/// # Errors
///
/// Returns [`GraphError::MismatchedEdgeSet`] if `spanner` was built for a
/// different graph.
pub fn stretch_stats(graph: &Graph, spanner: &EdgeSet) -> Result<StretchStats> {
    if spanner.capacity() != graph.edge_count() {
        return Err(GraphError::MismatchedEdgeSet {
            set_len: spanner.capacity(),
            graph_len: graph.edge_count(),
        });
    }
    // Both views packed once; the per-source sweeps then run on flat arrays
    // (the same discipline as the verification oracles).
    let full = CsrSubgraph::from_graph(graph);
    let sub = CsrSubgraph::from_edge_set(graph, spanner)?;
    let mut stretches = Vec::with_capacity(graph.edge_count());
    for u in graph.nodes() {
        if graph.degree(u) == 0 {
            continue;
        }
        let dg = full.sssp(u, None, None)?;
        let dh = sub.sssp(u, None, None)?;
        for (v, _) in graph.incident(u) {
            if v < u {
                continue;
            }
            let base = dg[v.index()];
            if base > 0.0 {
                stretches.push(dh[v.index()] / base);
            }
        }
    }
    if stretches.is_empty() {
        return Ok(StretchStats {
            edges: 0,
            max: 1.0,
            mean: 1.0,
            median: 1.0,
            fraction_exact: 1.0,
        });
    }
    stretches.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let edges = stretches.len();
    let max = *stretches.last().expect("non-empty");
    let mean = if stretches.iter().any(|s| s.is_infinite()) {
        f64::INFINITY
    } else {
        stretches.iter().sum::<f64>() / edges as f64
    };
    let median = if edges % 2 == 1 {
        stretches[edges / 2]
    } else {
        (stretches[edges / 2 - 1] + stretches[edges / 2]) / 2.0
    };
    let fraction_exact =
        stretches.iter().filter(|&&s| s <= 1.0 + 1e-9).count() as f64 / edges as f64;
    Ok(StretchStats {
        edges,
        max,
        mean,
        median,
        fraction_exact,
    })
}

/// Size/weight summary of a candidate spanner relative to its input graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeStats {
    /// Vertices of the input graph.
    pub nodes: usize,
    /// Edges of the input graph.
    pub input_edges: usize,
    /// Edges kept by the spanner.
    pub kept_edges: usize,
    /// Total weight of the input graph.
    pub input_weight: f64,
    /// Total weight kept by the spanner.
    pub kept_weight: f64,
}

impl SizeStats {
    /// Fraction of edges kept (1.0 for an edgeless input).
    pub fn edge_fraction(&self) -> f64 {
        if self.input_edges == 0 {
            1.0
        } else {
            self.kept_edges as f64 / self.input_edges as f64
        }
    }

    /// Fraction of weight kept (1.0 for a zero-weight input).
    pub fn weight_fraction(&self) -> f64 {
        if self.input_weight == 0.0 {
            1.0
        } else {
            self.kept_weight / self.input_weight
        }
    }
}

/// Computes the size/weight summary of `spanner` on `graph`.
///
/// # Errors
///
/// Returns [`GraphError::MismatchedEdgeSet`] if `spanner` was built for a
/// different graph.
pub fn size_stats(graph: &Graph, spanner: &EdgeSet) -> Result<SizeStats> {
    let kept_weight = graph.edge_set_weight(spanner)?;
    Ok(SizeStats {
        nodes: graph.node_count(),
        input_edges: graph.edge_count(),
        kept_edges: spanner.len(),
        input_weight: graph.total_weight(),
        kept_weight,
    })
}

/// The girth of the graph (length of its shortest cycle, counting hops), or
/// `None` if the graph is a forest.
///
/// Computed by a BFS from every vertex in `O(n · m)` time, which is fine for
/// the instance sizes the experiments use. The girth is the quantity behind
/// the greedy spanner's size bound: a `k`-spanner built greedily on
/// unit-weight graphs has girth greater than `k + 1`, which by the Moore
/// bound caps its size at `O(n^{1 + 2/(k+1)})` — the `f(n)` that Corollary
/// 2.2 plugs into the conversion theorem.
pub fn girth(graph: &Graph) -> Option<usize> {
    let n = graph.node_count();
    let mut best: Option<usize> = None;
    for start in graph.nodes() {
        // BFS recording parents; a non-tree edge closes a cycle whose length
        // is dist[u] + dist[v] + 1 (an upper bound that is tight for the
        // vertex on the cycle closest to `start`, so the minimum over all
        // starts is exact).
        let mut dist = vec![usize::MAX; n];
        let mut parent_edge = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[start.index()] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (u, eid) in graph.incident(v) {
                if eid.index() == parent_edge[v.index()] {
                    continue;
                }
                if dist[u.index()] == usize::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    parent_edge[u.index()] = eid.index();
                    queue.push_back(u);
                } else if dist[u.index()] >= dist[v.index()] {
                    // Non-tree edge: closes a cycle through `start`'s BFS tree.
                    let cycle = dist[u.index()] + dist[v.index()] + 1;
                    if best.is_none_or(|b| cycle < b) {
                        best = Some(cycle);
                    }
                }
            }
        }
    }
    best
}

/// Degree summary of a directed cost graph: max over in- and out-degrees,
/// the quantity `Δ` of Theorem 3.4.
pub fn digraph_max_degree(graph: &DiGraph) -> usize {
    graph.max_degree()
}

/// Density of a directed graph: arcs present divided by the `n (n - 1)`
/// possible arcs (1.0 for graphs with fewer than two vertices).
pub fn digraph_density(graph: &DiGraph) -> f64 {
    let n = graph.node_count();
    if n < 2 {
        1.0
    } else {
        graph.arc_count() as f64 / (n * (n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, tree, NodeId};

    #[test]
    fn degree_stats_of_a_star() {
        let g = Graph::from_unit_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let d = degree_stats(&g);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 4);
        assert!((d.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(d.histogram, vec![0, 4, 0, 0, 1]);
        assert_eq!(d.isolated(), 0);
    }

    #[test]
    fn degree_stats_of_trivial_graphs() {
        let empty = degree_stats(&Graph::new(0));
        assert_eq!(empty.max, 0);
        assert_eq!(empty.mean, 0.0);
        assert!(empty.histogram.is_empty());
        let isolated = degree_stats(&Graph::new(3));
        assert_eq!(isolated.isolated(), 3);
        assert_eq!(isolated.histogram, vec![3]);
    }

    #[test]
    fn stretch_stats_of_the_full_graph_are_trivial() {
        let g = generate::complete(6);
        let s = stretch_stats(&g, &g.full_edge_set()).unwrap();
        assert_eq!(s.edges, 15);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.median, 1.0);
        assert_eq!(s.fraction_exact, 1.0);
    }

    #[test]
    fn stretch_stats_of_a_tree_spanner() {
        let g = generate::cycle(8);
        let mst = tree::minimum_spanning_forest(&g);
        let s = stretch_stats(&g, &mst).unwrap();
        // Dropping one cycle edge stretches exactly that edge to n - 1 hops.
        assert_eq!(s.edges, 8);
        assert_eq!(s.max, 7.0);
        assert!(s.fraction_exact >= 7.0 / 8.0 - 1e-12);
        assert!(s.mean > 1.0 && s.mean < s.max);
        assert_eq!(s.median, 1.0);
    }

    #[test]
    fn stretch_stats_report_disconnection_as_infinite() {
        let g = generate::path(4);
        let empty = g.empty_edge_set();
        let s = stretch_stats(&g, &empty).unwrap();
        assert!(s.max.is_infinite());
        assert!(s.mean.is_infinite());
        assert_eq!(s.fraction_exact, 0.0);
    }

    #[test]
    fn stretch_stats_validate_the_edge_set() {
        let g = generate::path(4);
        assert!(stretch_stats(&g, &EdgeSet::new(99)).is_err());
        // Edgeless graph: nothing to measure, all statistics default to 1.
        let empty = Graph::new(3);
        let s = stretch_stats(&empty, &empty.full_edge_set()).unwrap();
        assert_eq!(s.edges, 0);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn size_stats_fractions() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
        let mut half = g.empty_edge_set();
        half.insert(g.find_edge(NodeId::new(0), NodeId::new(1)).unwrap());
        half.insert(g.find_edge(NodeId::new(2), NodeId::new(3)).unwrap());
        let s = size_stats(&g, &half).unwrap();
        assert_eq!(s.kept_edges, 2);
        assert!((s.edge_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.weight_fraction() - 4.0 / 6.0).abs() < 1e-12);
        assert!(size_stats(&g, &EdgeSet::new(1)).is_err());
    }

    #[test]
    fn size_stats_of_empty_graph_are_defined() {
        let g = Graph::new(2);
        let s = size_stats(&g, &g.full_edge_set()).unwrap();
        assert_eq!(s.edge_fraction(), 1.0);
        assert_eq!(s.weight_fraction(), 1.0);
    }

    #[test]
    fn girth_of_standard_graphs() {
        assert_eq!(girth(&generate::cycle(7)), Some(7));
        assert_eq!(girth(&generate::complete(5)), Some(3));
        assert_eq!(girth(&generate::complete_bipartite(3, 3)), Some(4));
        assert_eq!(girth(&generate::hypercube(3)), Some(4));
        assert_eq!(girth(&generate::grid(2, 4)), Some(4));
        // Forests have no cycle.
        assert_eq!(girth(&generate::path(6)), None);
        assert_eq!(girth(&Graph::new(4)), None);
        assert_eq!(girth(&generate::star(5)), None);
    }

    #[test]
    fn girth_of_two_disjoint_cycles_is_the_shorter_one() {
        let mut g = Graph::new(9);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            g.add_edge(NodeId::new(a), NodeId::new(b), 1.0).unwrap();
        }
        for (a, b) in [(3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 3)] {
            g.add_edge(NodeId::new(a), NodeId::new(b), 1.0).unwrap();
        }
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn digraph_summaries() {
        let d = generate::complete_digraph(4);
        assert_eq!(digraph_max_degree(&d), 3);
        assert!((digraph_density(&d) - 1.0).abs() < 1e-12);
        let single = crate::DiGraph::new(1);
        assert_eq!(digraph_density(&single), 1.0);
    }
}
