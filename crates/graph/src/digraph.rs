//! Directed graphs with arc costs, the setting of the minimum-cost
//! `r`-fault-tolerant 2-spanner problem (Section 3 of the paper).

use crate::{ArcId, EdgeId, EdgeSet, GraphError, NodeId, Result};
use std::fmt;

/// A directed arc `tail -> head` with a non-negative cost.
///
/// In the 2-spanner setting of the paper all arcs have unit *length*; the
/// `cost` field is the objective coefficient `c_e` of the minimum-cost
/// problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// The source of the arc.
    pub tail: NodeId,
    /// The target of the arc.
    pub head: NodeId,
    /// Cost `c_e >= 0` of including this arc in the spanner.
    pub cost: f64,
}

/// A simple directed graph with non-negative arc costs.
///
/// Vertices are dense indices `0..n`; arcs are stored in an arc list indexed
/// by [`ArcId`] and mirrored in out- and in-adjacency lists. Antiparallel
/// arcs (`u -> v` and `v -> u`) may coexist, but parallel arcs and self-loops
/// are rejected.
///
/// # Example
///
/// ```
/// use ftspan_graph::{DiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = DiGraph::new(3);
/// g.add_arc(NodeId::new(0), NodeId::new(1), 1.0)?;
/// g.add_arc(NodeId::new(1), NodeId::new(2), 1.0)?;
/// g.add_arc(NodeId::new(0), NodeId::new(2), 5.0)?;
/// // 0 -> 2 has one length-2 path through vertex 1.
/// let mids: Vec<_> = g.two_path_midpoints(NodeId::new(0), NodeId::new(2)).collect();
/// assert_eq!(mids, vec![NodeId::new(1)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiGraph {
    arcs: Vec<Arc>,
    out_adj: Vec<Vec<(NodeId, ArcId)>>,
    in_adj: Vec<Vec<(NodeId, ArcId)>>,
}

impl DiGraph {
    /// Creates a directed graph with `n` vertices and no arcs.
    pub fn new(n: usize) -> Self {
        DiGraph {
            arcs: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Creates a directed graph with `n` vertices from `(tail, head, cost)`
    /// triples.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as [`DiGraph::add_arc`].
    pub fn from_arcs<I>(n: usize, arcs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut g = DiGraph::new(n);
        for (u, v, c) in arcs {
            g.add_arc(NodeId::new(u), NodeId::new(v), c)?;
        }
        Ok(g)
    }

    /// Creates a unit-cost directed graph from `(tail, head)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as [`DiGraph::add_arc`].
    pub fn from_unit_arcs<I>(n: usize, arcs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        Self::from_arcs(n, arcs.into_iter().map(|(u, v)| (u, v, 1.0)))
    }

    /// Builds the symmetric directed version of an undirected graph: each
    /// undirected edge becomes two antiparallel unit-cost arcs.
    pub fn from_graph(g: &crate::Graph) -> DiGraph {
        let mut d = DiGraph::new(g.node_count());
        for (_, e) in g.edges() {
            d.add_arc(e.u, e.v, 1.0)
                .expect("edges of a valid graph are valid arcs");
            d.add_arc(e.v, e.u, 1.0)
                .expect("edges of a valid graph are valid arcs");
        }
        d
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of arcs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.out_adj.is_empty()
    }

    /// Iterator over all vertex identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterator over `(ArcId, &Arc)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, &Arc)> + '_ {
        self.arcs
            .iter()
            .enumerate()
            .map(|(i, a)| (ArcId::new(i), a))
    }

    /// Returns the arc with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of bounds.
    #[inline]
    pub fn arc(&self, a: ArcId) -> &Arc {
        &self.arcs[a.index()]
    }

    /// Total cost of all arcs.
    pub fn total_cost(&self) -> f64 {
        self.arcs.iter().map(|a| a.cost).sum()
    }

    /// Adds an arc `tail -> head` with the given cost and returns its id.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `tail == head`.
    /// * [`GraphError::InvalidWeight`] if `cost` is negative or not finite.
    /// * [`GraphError::InvalidParameter`] if the arc already exists.
    pub fn add_arc(&mut self, tail: NodeId, head: NodeId, cost: f64) -> Result<ArcId> {
        let n = self.node_count();
        for x in [tail, head] {
            if x.index() >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: x.index(),
                    len: n,
                });
            }
        }
        if tail == head {
            return Err(GraphError::SelfLoop { node: tail.index() });
        }
        if !(cost.is_finite() && cost >= 0.0) {
            return Err(GraphError::InvalidWeight { weight: cost });
        }
        if self.find_arc(tail, head).is_some() {
            return Err(GraphError::InvalidParameter {
                message: format!("arc ({tail}, {head}) already exists"),
            });
        }
        let id = ArcId::new(self.arcs.len());
        self.arcs.push(Arc { tail, head, cost });
        self.out_adj[tail.index()].push((head, id));
        self.in_adj[head.index()].push((tail, id));
        Ok(id)
    }

    /// Returns the identifier of the arc `tail -> head`, if present.
    pub fn find_arc(&self, tail: NodeId, head: NodeId) -> Option<ArcId> {
        if tail.index() >= self.node_count() || head.index() >= self.node_count() {
            return None;
        }
        self.out_adj[tail.index()]
            .iter()
            .find(|(h, _)| *h == head)
            .map(|&(_, id)| id)
    }

    /// Returns `true` if the arc `tail -> head` exists.
    pub fn has_arc(&self, tail: NodeId, head: NodeId) -> bool {
        self.find_arc(tail, head).is_some()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Maximum of in- and out-degree over all vertices (the `Δ` of
    /// Theorem 3.4).
    pub fn max_degree(&self) -> usize {
        let out = self.out_adj.iter().map(Vec::len).max().unwrap_or(0);
        let inn = self.in_adj.iter().map(Vec::len).max().unwrap_or(0);
        out.max(inn)
    }

    /// Iterator over the out-neighbors of `v` (the `N+(v)` of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn out_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[v.index()].iter().map(|&(u, _)| u)
    }

    /// Iterator over the in-neighbors of `v` (the `N−(v)` of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn in_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_adj[v.index()].iter().map(|&(u, _)| u)
    }

    /// Iterator over `(head, arc id)` pairs leaving `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn out_incident(&self, v: NodeId) -> impl Iterator<Item = (NodeId, ArcId)> + '_ {
        self.out_adj[v.index()].iter().copied()
    }

    /// Iterator over `(tail, arc id)` pairs entering `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn in_incident(&self, v: NodeId) -> impl Iterator<Item = (NodeId, ArcId)> + '_ {
        self.in_adj[v.index()].iter().copied()
    }

    /// Iterator over the midpoints `w` of directed length-2 paths
    /// `u -> w -> v` in this graph (the path set `P_{u,v}` of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn two_path_midpoints<'a>(
        &'a self,
        u: NodeId,
        v: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.out_neighbors(u)
            .filter(move |&w| w != v && self.has_arc(w, v))
    }

    /// Returns an [`ArcSet`] containing every arc of this graph.
    pub fn full_arc_set(&self) -> ArcSet {
        let mut s = ArcSet::new(self.arc_count());
        for i in 0..self.arc_count() {
            s.insert(ArcId::new(i));
        }
        s
    }

    /// Returns an empty [`ArcSet`] sized for this graph.
    pub fn empty_arc_set(&self) -> ArcSet {
        ArcSet::new(self.arc_count())
    }

    /// Total cost of the arcs in `arcs`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MismatchedEdgeSet`] if `arcs` was built for a
    /// different arc count.
    pub fn arc_set_cost(&self, arcs: &ArcSet) -> Result<f64> {
        if arcs.capacity() != self.arc_count() {
            return Err(GraphError::MismatchedEdgeSet {
                set_len: arcs.capacity(),
                graph_len: self.arc_count(),
            });
        }
        Ok(arcs.iter().map(|a| self.arc(a).cost).sum())
    }

    /// Builds the sub-digraph containing only the arcs in `arcs`, on the same
    /// vertex set.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MismatchedEdgeSet`] if `arcs` was built for a
    /// different arc count.
    pub fn subgraph(&self, arcs: &ArcSet) -> Result<DiGraph> {
        if arcs.capacity() != self.arc_count() {
            return Err(GraphError::MismatchedEdgeSet {
                set_len: arcs.capacity(),
                graph_len: self.arc_count(),
            });
        }
        let mut g = DiGraph::new(self.node_count());
        for id in arcs.iter() {
            let a = self.arc(id);
            g.add_arc(a.tail, a.head, a.cost)?;
        }
        Ok(g)
    }

    /// Builds the sub-digraph that survives after removing the vertices in
    /// `faults` (vertex identifiers are preserved).
    pub fn remove_vertices(&self, faults: &[NodeId]) -> DiGraph {
        let mut dead = vec![false; self.node_count()];
        for &f in faults {
            if f.index() < dead.len() {
                dead[f.index()] = true;
            }
        }
        let mut g = DiGraph::new(self.node_count());
        for a in &self.arcs {
            if !dead[a.tail.index()] && !dead[a.head.index()] {
                g.add_arc(a.tail, a.head, a.cost)
                    .expect("arcs of a valid digraph remain valid");
            }
        }
        g
    }
}

/// A subset of the arcs of a parent [`DiGraph`], stored as a bitset over
/// dense arc identifiers.
///
/// This mirrors [`EdgeSet`] for directed graphs; 2-spanner solutions are
/// represented this way.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct ArcSet {
    inner: EdgeSet,
}

impl ArcSet {
    /// Creates an empty arc set able to hold arcs `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        ArcSet {
            inner: EdgeSet::new(capacity),
        }
    }

    /// The number of arc slots (`m` of the parent digraph).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Number of arcs currently in the set.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the set contains no arcs.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Returns `true` if arc `a` is in the set.
    pub fn contains(&self, a: ArcId) -> bool {
        self.inner.contains(EdgeId::new(a.index()))
    }

    /// Inserts arc `a`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `a` is outside the capacity of the set.
    pub fn insert(&mut self, a: ArcId) -> bool {
        self.inner.insert(EdgeId::new(a.index()))
    }

    /// Removes arc `a`; returns `true` if it was present.
    pub fn remove(&mut self, a: ArcId) -> bool {
        self.inner.remove(EdgeId::new(a.index()))
    }

    /// Adds every arc of `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    pub fn union_with(&mut self, other: &ArcSet) {
        self.inner.union_with(&other.inner);
    }

    /// Returns `true` if every arc of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &ArcSet) -> bool {
        self.inner.is_subset_of(&other.inner)
    }

    /// Iterator over the arc identifiers in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = ArcId> + '_ {
        self.inner.iter().map(|e| ArcId::new(e.index()))
    }
}

impl fmt::Debug for ArcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcSet")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("arcs", &self.iter().map(|a| a.index()).collect::<Vec<_>>())
            .finish()
    }
}

impl Extend<ArcId> for ArcSet {
    fn extend<T: IntoIterator<Item = ArcId>>(&mut self, iter: T) {
        for a in iter {
            self.insert(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn triangle() -> DiGraph {
        DiGraph::from_unit_arcs(3, [(0, 1), (1, 2), (0, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.out_degree(NodeId::new(0)), 2);
        assert_eq!(g.in_degree(NodeId::new(2)), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_arc(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_arc(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn add_arc_rejects_bad_input() {
        let mut g = DiGraph::new(2);
        assert!(matches!(
            g.add_arc(NodeId::new(0), NodeId::new(9), 1.0),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            g.add_arc(NodeId::new(0), NodeId::new(0), 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_arc(NodeId::new(0), NodeId::new(1), f64::INFINITY),
            Err(GraphError::InvalidWeight { .. })
        ));
        g.add_arc(NodeId::new(0), NodeId::new(1), 1.0).unwrap();
        assert!(matches!(
            g.add_arc(NodeId::new(0), NodeId::new(1), 2.0),
            Err(GraphError::InvalidParameter { .. })
        ));
        // Antiparallel arc is allowed.
        assert!(g.add_arc(NodeId::new(1), NodeId::new(0), 2.0).is_ok());
    }

    #[test]
    fn two_path_midpoints() {
        let g = triangle();
        let mids: Vec<_> = g
            .two_path_midpoints(NodeId::new(0), NodeId::new(2))
            .collect();
        assert_eq!(mids, vec![NodeId::new(1)]);
        // 0 -> 1 has no length-2 path: the only candidate midpoint 2 has no
        // arc into 1.
        let none: Vec<_> = g
            .two_path_midpoints(NodeId::new(0), NodeId::new(1))
            .collect();
        assert!(none.is_empty());
    }

    #[test]
    fn from_graph_symmetrizes() {
        let ug = Graph::from_unit_edges(3, [(0, 1), (1, 2)]).unwrap();
        let dg = DiGraph::from_graph(&ug);
        assert_eq!(dg.arc_count(), 4);
        assert!(dg.has_arc(NodeId::new(0), NodeId::new(1)));
        assert!(dg.has_arc(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn arc_set_operations() {
        let g = triangle();
        let full = g.full_arc_set();
        assert_eq!(full.len(), 4);
        let mut s = g.empty_arc_set();
        s.insert(ArcId::new(0));
        s.insert(ArcId::new(2));
        assert!(s.is_subset_of(&full));
        assert_eq!(g.arc_set_cost(&s).unwrap(), 2.0);
        let sub = g.subgraph(&s).unwrap();
        assert_eq!(sub.arc_count(), 2);
        let mut t = g.empty_arc_set();
        t.insert(ArcId::new(1));
        s.union_with(&t);
        assert_eq!(s.len(), 3);
        let ids: Vec<usize> = s.iter().map(|a| a.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn arc_set_capacity_mismatch() {
        let g = triangle();
        let wrong = ArcSet::new(99);
        assert!(g.arc_set_cost(&wrong).is_err());
        assert!(g.subgraph(&wrong).is_err());
    }

    #[test]
    fn remove_vertices_digraph() {
        let g = triangle();
        let h = g.remove_vertices(&[NodeId::new(1)]);
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.arc_count(), 2); // 0->2 and 2->0 survive
        assert!(h.has_arc(NodeId::new(0), NodeId::new(2)));
        assert!(!h.has_arc(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn total_cost() {
        let g = DiGraph::from_arcs(3, [(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        assert_eq!(g.total_cost(), 5.0);
        assert_eq!(g.arc(ArcId::new(1)).cost, 3.0);
    }
}
