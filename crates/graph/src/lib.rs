//! Graph substrate for the fault-tolerant spanner library.
//!
//! This crate provides everything the spanner constructions of
//! Dinitz & Krauthgamer (PODC 2011) need from a graph library, built from
//! scratch:
//!
//! * [`Graph`] — an undirected graph with non-negative edge lengths, the
//!   setting of the conversion theorem (Theorem 2.1) for stretch `k >= 3`.
//! * [`DiGraph`] — a directed graph with non-negative edge *costs* and unit
//!   lengths, the setting of the minimum-cost `r`-fault-tolerant 2-spanner
//!   problem (Section 3 of the paper).
//! * [`EdgeSet`] — a compact subset of the edges of a parent graph; spanners
//!   are represented this way throughout the workspace.
//! * [`shortest_path`] — Dijkstra / BFS, including variants restricted to a
//!   surviving vertex set (used for fault-tolerance verification).
//! * [`csr`] — cache-friendly CSR packing of edge subsets with masked
//!   traversal, the substrate behind query serving and the verification
//!   oracles' repeated shortest-path sweeps.
//! * [`generate`] — workload generators (Erdős–Rényi, geometric, grids,
//!   complete and bipartite graphs, hypercubes, preferential attachment,
//!   small-world graphs, and the integrality-gap gadgets from Section 3 of
//!   the paper).
//! * [`stream`] — streaming, memory-bounded generators (`G(n, m)` by edge-
//!   index sampling, grid/torus, preferential attachment) that emit straight
//!   into a CSR builder for million-node construction runs.
//! * [`faults`] — vertex- and edge-fault-set enumeration, sampling, and
//!   adversarial heuristics.
//! * [`par`] — a dependency-free scoped-thread work pool with deterministic,
//!   index-ordered results; the shared substrate behind every parallel hot
//!   path in the workspace.
//! * [`partition`] — seeded, deterministic balanced partitioning into
//!   connected parts (the front half of the sharded spanner pipeline).
//! * [`verify`] — spanner and fault-tolerant spanner verification oracles,
//!   including the Lemma 3.1 characterization for 2-spanners and the
//!   edge-fault analogues.
//! * [`components`] — union–find, connected components, articulation points
//!   and vertex connectivity (the connectivity limits on fault tolerance).
//! * [`tree`] — minimum spanning forests, BFS / shortest-path trees and the
//!   lightness measure.
//! * [`stats`] — degree and per-edge stretch distributions for reporting.
//! * [`io`] — a simple text format for reading and writing graphs.
//!
//! # Example
//!
//! ```
//! use ftspan_graph::{generate, verify, NodeId};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let g = generate::gnp(40, 0.3, generate::WeightKind::Unit, &mut rng);
//! // The full edge set is trivially a 1-spanner of the graph.
//! let all = g.full_edge_set();
//! assert!(verify::is_k_spanner(&g, &all, 1.0));
//! assert_eq!(g.degree(NodeId::new(0)), g.neighbors(NodeId::new(0)).count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod digraph;
mod edge_set;
mod error;
mod graph;
mod ids;

pub mod components;
pub mod csr;
pub mod faults;
pub mod generate;
pub mod io;
pub mod par;
pub mod partition;
pub mod shortest_path;
pub mod stats;
pub mod stream;
pub mod tree;
pub mod verify;

pub use digraph::{Arc, ArcSet, DiGraph};
pub use edge_set::EdgeSet;
pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use ids::{ArcId, EdgeId, NodeId};

/// Result alias used across the graph substrate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Numeric distance value representing "unreachable".
pub const INFINITY: f64 = f64::INFINITY;
