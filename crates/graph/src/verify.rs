//! Spanner verification oracles.
//!
//! Everything in this module treats a candidate spanner as ground truth to be
//! *checked*, never trusted: the constructions in `ftspan-core` are
//! randomized, and the paper's guarantees are "with high probability", so the
//! test-suite and the experiments re-verify every spanner they build.
//!
//! * [`max_stretch`] / [`is_k_spanner`] — the plain spanner condition (1) of
//!   the paper, checked over edges (which suffices, see Section 2).
//! * [`max_stretch_under_faults`] / [`is_fault_tolerant_k_spanner`] — the
//!   fault-tolerant condition for a given fault set, and exhaustively or by
//!   sampling over all fault sets of size at most `r`.
//! * [`two_spanner_violations`] / [`is_ft_two_spanner`] — the Lemma 3.1
//!   characterization for directed 2-spanners: every arc is bought or covered
//!   by at least `r + 1` length-2 paths.

use crate::csr::{CsrSubgraph, SsspWorkspace};
use crate::digraph::ArcSet;
use crate::faults::{enumerate_fault_sets, sample_fault_set, FaultSet};
use crate::par;
use crate::{ArcId, DiGraph, EdgeSet, Graph, NodeId};
use rand::Rng;

/// Numerical slack used when comparing stretches to the bound `k`.
const EPS: f64 = 1e-9;

/// A reusable stretch oracle: the input graph and the candidate spanner,
/// both CSR-packed once, ready to answer "worst stretch under this fault
/// mask" any number of times without re-deriving subgraphs.
///
/// The free functions in this module ([`max_stretch`],
/// [`max_stretch_under_faults`], …) are thin wrappers that build a
/// `StretchOracle` for a single query; the exhaustive and sampled verifiers
/// build one and sweep every fault set over it, which is where the packing
/// pays off.
///
/// The oracle's sweeps are parallel when [`StretchOracle::with_threads`]
/// grants more than one worker: a single-mask query fans its per-source
/// Dijkstra sweeps across the pool, and the fault-set verifiers
/// ([`StretchOracle::verify_exhaustive`] and friends) fan out over fault sets
/// instead. Either way the answer is deterministic — identical at any worker
/// count — because every parallel task writes its own slot and reductions run
/// in input order (see [`crate::par`]).
#[derive(Debug, Clone)]
pub struct StretchOracle<'a> {
    graph: &'a Graph,
    full: CsrSubgraph,
    spanner: CsrSubgraph,
    threads: usize,
}

impl<'a> StretchOracle<'a> {
    /// Packs `graph` and `spanner` for repeated stretch queries (sequential
    /// sweeps; grant workers with [`StretchOracle::with_threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `spanner` was built for a different graph.
    pub fn new(graph: &'a Graph, spanner: &EdgeSet) -> Self {
        assert_eq!(
            spanner.capacity(),
            graph.edge_count(),
            "spanner edge set does not match the graph"
        );
        StretchOracle {
            graph,
            full: CsrSubgraph::from_graph(graph),
            spanner: CsrSubgraph::from_edge_set(graph, spanner).expect("capacity checked above"),
            threads: 1,
        }
    }

    /// Grants the oracle's sweeps up to `threads` workers (clamped to at
    /// least 1). Results are identical at any worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Worst stretch over the surviving edges of the input graph, under an
    /// optional dead-vertex mask and an optional dead-edge mask (over the
    /// parent graph's edge identifiers). Both masks apply to the input graph
    /// and the spanner alike.
    ///
    /// Returns `1.0` when no edge survives.
    pub fn max_stretch_masked(&self, dead: Option<&[bool]>, dead_edges: Option<&[bool]>) -> f64 {
        max_stretch_masked_csr_threaded(
            self.graph,
            &self.full,
            &self.spanner,
            dead,
            dead_edges,
            self.threads,
        )
    }

    /// The single-mask sweep with the per-source loop kept sequential — used
    /// by the fault-set verifiers, which parallelize over fault sets instead
    /// (nesting both levels would oversubscribe the pool).
    fn max_stretch_masked_sequential(
        &self,
        dead: Option<&[bool]>,
        dead_edges: Option<&[bool]>,
    ) -> f64 {
        max_stretch_masked_csr_threaded(self.graph, &self.full, &self.spanner, dead, dead_edges, 1)
    }

    /// How many fault sets an exhaustive sweep materializes at a time: large
    /// enough to keep every worker busy, small enough that enumerations with
    /// astronomically many sets stream in bounded memory (the enumerator
    /// itself is lazy).
    const SWEEP_CHUNK: usize = 4096;

    /// Exhaustively sweeps every vertex-fault set of size at most `r`,
    /// parallel over fault sets. Equivalent to
    /// [`verify_fault_tolerance_exhaustive`] (which is this with one worker).
    pub fn verify_exhaustive(&self, k: f64, r: usize) -> FaultToleranceReport {
        let mut sets = enumerate_fault_sets(self.graph.node_count(), r);
        let mut report = FaultToleranceReport {
            checked: 0,
            worst_stretch: 1.0,
            violating_faults: None,
        };
        loop {
            let chunk: Vec<FaultSet> = sets.by_ref().take(Self::SWEEP_CHUNK).collect();
            if chunk.is_empty() {
                return report;
            }
            report.merge(self.sweep_vertex_fault_sets(k, chunk));
        }
    }

    /// Sweeps the empty fault set plus `samples` random vertex-fault sets of
    /// size exactly `r` (drawn sequentially from `rng`, so the battery is a
    /// pure function of the generator state), parallel over fault sets.
    pub fn verify_sampled<R: Rng + ?Sized>(
        &self,
        k: f64,
        r: usize,
        samples: usize,
        rng: &mut R,
    ) -> FaultToleranceReport {
        let mut fault_sets = Vec::with_capacity(samples + 1);
        fault_sets.push(FaultSet::empty());
        for _ in 0..samples {
            fault_sets.push(sample_fault_set(self.graph.node_count(), r, rng));
        }
        self.sweep_vertex_fault_sets(k, fault_sets)
    }

    fn sweep_vertex_fault_sets(&self, k: f64, fault_sets: Vec<FaultSet>) -> FaultToleranceReport {
        let n = self.graph.node_count();
        let stretches = par::map(self.threads, fault_sets.len(), |i| {
            let dead = fault_sets[i].to_dead_mask(n);
            self.max_stretch_masked_sequential(Some(&dead), None)
        });
        let mut worst = 1.0f64;
        let mut witness = None;
        for (faults, s) in fault_sets.into_iter().zip(&stretches) {
            if *s > worst {
                worst = *s;
            }
            if *s > k + EPS && witness.is_none() {
                witness = Some(faults);
            }
        }
        FaultToleranceReport {
            checked: stretches.len(),
            worst_stretch: worst,
            violating_faults: witness,
        }
    }

    /// Exhaustively sweeps every edge-fault set of size at most `r`, parallel
    /// over fault sets. Equivalent to
    /// [`verify_edge_fault_tolerance_exhaustive`] with the oracle's workers.
    pub fn verify_edge_exhaustive(&self, k: f64, r: usize) -> FaultToleranceReport {
        let mut sets = crate::faults::enumerate_edge_fault_sets(self.graph.edge_count(), r);
        let mut report = FaultToleranceReport {
            checked: 0,
            worst_stretch: 1.0,
            violating_faults: None,
        };
        loop {
            let chunk: Vec<crate::faults::EdgeFaultSet> =
                sets.by_ref().take(Self::SWEEP_CHUNK).collect();
            if chunk.is_empty() {
                return report;
            }
            report.merge(self.sweep_edge_fault_sets(k, chunk));
        }
    }

    /// Sweeps the empty edge-fault set plus `samples` random edge-fault sets
    /// of size exactly `r` (drawn sequentially from `rng`), parallel over
    /// fault sets.
    pub fn verify_edge_sampled<R: Rng + ?Sized>(
        &self,
        k: f64,
        r: usize,
        samples: usize,
        rng: &mut R,
    ) -> FaultToleranceReport {
        let mut fault_sets = Vec::with_capacity(samples + 1);
        fault_sets.push(crate::faults::EdgeFaultSet::empty());
        for _ in 0..samples {
            fault_sets.push(crate::faults::sample_edge_fault_set(
                self.graph.edge_count(),
                r,
                rng,
            ));
        }
        self.sweep_edge_fault_sets(k, fault_sets)
    }

    fn sweep_edge_fault_sets(
        &self,
        k: f64,
        fault_sets: Vec<crate::faults::EdgeFaultSet>,
    ) -> FaultToleranceReport {
        let m = self.graph.edge_count();
        let stretches = par::map(self.threads, fault_sets.len(), |i| {
            let dead_edges = fault_sets[i].to_dead_mask(m);
            self.max_stretch_masked_sequential(None, Some(&dead_edges))
        });
        let mut worst = 1.0f64;
        let mut witness = None;
        for s in &stretches {
            if *s > worst {
                worst = *s;
            }
            if *s > k + EPS && witness.is_none() {
                // Report the violation with an empty vertex witness: the
                // report type is shared with the vertex-fault verifiers, and
                // callers only need validity plus the worst stretch here.
                witness = Some(FaultSet::empty());
            }
        }
        FaultToleranceReport {
            checked: stretches.len(),
            worst_stretch: worst,
            violating_faults: witness,
        }
    }
}

/// The masked stretch sweep shared by [`StretchOracle`] and callers that
/// already own CSR packings of the graph and the spanner (the query-serving
/// sessions in `ftspan-core`): worst stretch over the surviving edges of
/// `graph`, measuring `spanner` distances against `full` distances under the
/// same masks. `1.0` when no edge survives.
///
/// # Panics
///
/// Panics if the CSR views or the masks were built for a different graph.
pub fn max_stretch_masked_csr(
    graph: &Graph,
    full: &CsrSubgraph,
    spanner: &CsrSubgraph,
    dead: Option<&[bool]>,
    dead_edges: Option<&[bool]>,
) -> f64 {
    max_stretch_masked_csr_threaded(graph, full, spanner, dead, dead_edges, 1)
}

/// [`max_stretch_masked_csr`] with the per-source Dijkstra sweeps fanned out
/// across up to `threads` workers. Sources are swept independently (two
/// Dijkstras each, writing only their own result slot) and the maxima are
/// reduced in source order, so the answer is identical at any worker count.
///
/// # Panics
///
/// Panics if the CSR views or the masks were built for a different graph.
pub fn max_stretch_masked_csr_threaded(
    graph: &Graph,
    full: &CsrSubgraph,
    spanner: &CsrSubgraph,
    dead: Option<&[bool]>,
    dead_edges: Option<&[bool]>,
    threads: usize,
) -> f64 {
    let is_dead = |v: NodeId| dead.is_some_and(|d| d[v.index()]);
    // Only sources with at least one live incident edge to a higher-id
    // endpoint contribute; collecting them first keeps the parallel tasks
    // uniform (each one pays exactly two Dijkstras).
    let sources: Vec<NodeId> = graph
        .nodes()
        .filter(|&u| {
            !is_dead(u)
                && graph.degree(u) > 0
                && graph
                    .incident(u)
                    .any(|(v, e)| v > u && !is_dead(v) && !dead_edges.is_some_and(|m| m[e.index()]))
        })
        .collect();
    // Each worker thread keeps one pair of SSSP workspaces for the whole
    // sweep, so a source costs two traversals but zero allocations after
    // the first source a worker handles.
    thread_local! {
        static SWEEP_WS: std::cell::RefCell<(SsspWorkspace, SsspWorkspace)> =
            std::cell::RefCell::new((SsspWorkspace::new(), SsspWorkspace::new()));
    }
    par::map_reduce(
        threads,
        sources.len(),
        1.0f64,
        |i| {
            let u = sources[i];
            SWEEP_WS.with(|cell| {
                let (ws_full, ws_spanner) = &mut *cell.borrow_mut();
                full.sssp_into(u, dead, dead_edges, None, ws_full)
                    .expect("vertex ids from the graph are valid");
                spanner
                    .sssp_into(u, dead, dead_edges, None, ws_spanner)
                    .expect("vertex ids from the graph are valid");
                let dg = ws_full.distances();
                let dh = ws_spanner.distances();
                let mut worst: f64 = 1.0;
                for (v, e) in graph.incident(u) {
                    if v < u || is_dead(v) || dead_edges.is_some_and(|m| m[e.index()]) {
                        continue;
                    }
                    let base = dg[v.index()];
                    if base == 0.0 {
                        continue;
                    }
                    worst = worst.max(dh[v.index()] / base);
                }
                worst
            })
        },
        f64::max,
    )
}

/// Maximum stretch of the spanner `spanner` over all edges of `graph`:
/// `max_{(u,v) in E} d_H(u,v) / d_G(u,v)`.
///
/// Returns `f64::INFINITY` if some edge's endpoints are disconnected in the
/// spanner, and `1.0` for a graph with no edges.
///
/// # Panics
///
/// Panics if `spanner` was built for a different graph.
pub fn max_stretch(graph: &Graph, spanner: &EdgeSet) -> f64 {
    StretchOracle::new(graph, spanner).max_stretch_masked(None, None)
}

/// Returns `true` if `spanner` is a `k`-spanner of `graph`.
pub fn is_k_spanner(graph: &Graph, spanner: &EdgeSet, k: f64) -> bool {
    max_stretch(graph, spanner) <= k + EPS
}

/// Maximum stretch of `spanner` over the edges of `graph` that survive the
/// fault set `faults`, measured against distances in `graph \ faults`.
///
/// Returns `1.0` if no edge survives.
///
/// # Panics
///
/// Panics if `spanner` was built for a different graph.
pub fn max_stretch_under_faults(graph: &Graph, spanner: &EdgeSet, faults: &FaultSet) -> f64 {
    let oracle = StretchOracle::new(graph, spanner);
    let dead = faults.to_dead_mask(graph.node_count());
    oracle.max_stretch_masked(Some(&dead), None)
}

/// Returns `true` if `spanner` is a `k`-spanner of `graph \ faults`.
pub fn is_k_spanner_under_faults(
    graph: &Graph,
    spanner: &EdgeSet,
    k: f64,
    faults: &FaultSet,
) -> bool {
    max_stretch_under_faults(graph, spanner, faults) <= k + EPS
}

/// Report produced by fault-tolerance verification.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultToleranceReport {
    /// Number of fault sets that were checked.
    pub checked: usize,
    /// The worst stretch observed over all checked fault sets.
    pub worst_stretch: f64,
    /// A fault set witnessing the worst stretch, if any check failed the
    /// bound (otherwise `None`).
    pub violating_faults: Option<FaultSet>,
}

impl FaultToleranceReport {
    /// Returns `true` if every checked fault set satisfied the stretch bound.
    pub fn is_valid(&self) -> bool {
        self.violating_faults.is_none()
    }

    /// Folds a later chunk of the same sweep into this report (counts add,
    /// worst stretch maxes, the earliest witness wins).
    fn merge(&mut self, chunk: FaultToleranceReport) {
        self.checked += chunk.checked;
        if chunk.worst_stretch > self.worst_stretch {
            self.worst_stretch = chunk.worst_stretch;
        }
        if self.violating_faults.is_none() {
            self.violating_faults = chunk.violating_faults;
        }
    }
}

/// Exhaustively verifies that `spanner` is an `r`-fault-tolerant `k`-spanner
/// of `graph`, by checking every fault set of size at most `r`.
///
/// The number of fault sets is `sum_{i<=r} C(n, i)`; intended for the small
/// instances used in tests (`n` up to a few dozen, `r <= 3`).
pub fn verify_fault_tolerance_exhaustive(
    graph: &Graph,
    spanner: &EdgeSet,
    k: f64,
    r: usize,
) -> FaultToleranceReport {
    StretchOracle::new(graph, spanner).verify_exhaustive(k, r)
}

/// Returns `true` if `spanner` is an `r`-fault-tolerant `k`-spanner of
/// `graph`, verified exhaustively over all fault sets of size at most `r`.
pub fn is_fault_tolerant_k_spanner(graph: &Graph, spanner: &EdgeSet, k: f64, r: usize) -> bool {
    verify_fault_tolerance_exhaustive(graph, spanner, k, r).is_valid()
}

/// Verifies fault tolerance against `samples` random fault sets of size
/// exactly `r` plus the empty set, instead of exhaustive enumeration.
///
/// A failed sampled check proves the spanner invalid; a passed check is
/// evidence, not proof (the paper's guarantee itself is only with high
/// probability).
pub fn verify_fault_tolerance_sampled<R: Rng + ?Sized>(
    graph: &Graph,
    spanner: &EdgeSet,
    k: f64,
    r: usize,
    samples: usize,
    rng: &mut R,
) -> FaultToleranceReport {
    StretchOracle::new(graph, spanner).verify_sampled(k, r, samples, rng)
}

/// Arcs of `graph` violating the Lemma 3.1 characterization for an
/// `r`-fault-tolerant 2-spanner: arcs that are neither in `spanner` nor
/// covered by at least `r + 1` length-2 paths whose both arcs are in
/// `spanner`.
///
/// # Panics
///
/// Panics if `spanner` was built for a different digraph.
pub fn two_spanner_violations(graph: &DiGraph, spanner: &ArcSet, r: usize) -> Vec<ArcId> {
    assert_eq!(
        spanner.capacity(),
        graph.arc_count(),
        "spanner arc set does not match the digraph"
    );
    let mut violations = Vec::new();
    for (id, arc) in graph.arcs() {
        if spanner.contains(id) {
            continue;
        }
        let covered = count_spanner_two_paths(graph, spanner, arc.tail, arc.head);
        if covered < r + 1 {
            violations.push(id);
        }
    }
    violations
}

/// Number of length-2 paths `u -> w -> v` both of whose arcs are in
/// `spanner`.
pub fn count_spanner_two_paths(graph: &DiGraph, spanner: &ArcSet, u: NodeId, v: NodeId) -> usize {
    graph
        .out_incident(u)
        .filter(|&(w, first)| {
            w != v
                && spanner.contains(first)
                && graph
                    .find_arc(w, v)
                    .is_some_and(|second| spanner.contains(second))
        })
        .count()
}

/// Returns `true` if `spanner` is an `r`-fault-tolerant 2-spanner of the
/// directed graph `graph`, using the Lemma 3.1 characterization.
pub fn is_ft_two_spanner(graph: &DiGraph, spanner: &ArcSet, r: usize) -> bool {
    two_spanner_violations(graph, spanner, r).is_empty()
}

/// Directly verifies the fault-tolerant 2-spanner condition by enumerating
/// every fault set of size at most `r` and checking that each surviving arc
/// of `graph` has a surviving path of length at most 2 in `spanner`.
///
/// This is the definitional check; [`is_ft_two_spanner`] is the
/// characterization-based one. The test-suite asserts they agree
/// (an empirical validation of Lemma 3.1).
pub fn is_ft_two_spanner_by_definition(graph: &DiGraph, spanner: &ArcSet, r: usize) -> bool {
    assert_eq!(
        spanner.capacity(),
        graph.arc_count(),
        "spanner arc set does not match the digraph"
    );
    for faults in enumerate_fault_sets(graph.node_count(), r) {
        for (id, arc) in graph.arcs() {
            if faults.contains(arc.tail) || faults.contains(arc.head) {
                continue;
            }
            if spanner.contains(id) {
                continue;
            }
            let ok = graph.out_incident(arc.tail).any(|(w, first)| {
                w != arc.head
                    && !faults.contains(w)
                    && spanner.contains(first)
                    && graph
                        .find_arc(w, arc.head)
                        .is_some_and(|second| spanner.contains(second))
            });
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Maximum stretch of `spanner` over the edges of `graph` that survive the
/// *edge* fault set `faults`, measured against distances in `G \ F`.
///
/// This is the edge-fault analogue of [`max_stretch_under_faults`]: the
/// companion fault model handled by `ftspan-core::edge_faults`.
///
/// # Panics
///
/// Panics if `spanner` was built for a different graph.
pub fn max_stretch_under_edge_faults(
    graph: &Graph,
    spanner: &EdgeSet,
    faults: &crate::faults::EdgeFaultSet,
) -> f64 {
    let oracle = StretchOracle::new(graph, spanner);
    let dead_edges = faults.to_dead_mask(graph.edge_count());
    oracle.max_stretch_masked(None, Some(&dead_edges))
}

/// Returns `true` if `spanner` is a `k`-spanner of `graph` with the edges in
/// `faults` removed from both.
pub fn is_k_spanner_under_edge_faults(
    graph: &Graph,
    spanner: &EdgeSet,
    k: f64,
    faults: &crate::faults::EdgeFaultSet,
) -> bool {
    max_stretch_under_edge_faults(graph, spanner, faults) <= k + EPS
}

/// Exhaustively verifies that `spanner` is an `r`-*edge*-fault-tolerant
/// `k`-spanner of `graph`, by checking every edge-fault set of size at most
/// `r`.
///
/// The number of fault sets is `sum_{i<=r} C(m, i)`; intended for small
/// instances (tests and the edge-fault experiment).
pub fn verify_edge_fault_tolerance_exhaustive(
    graph: &Graph,
    spanner: &EdgeSet,
    k: f64,
    r: usize,
) -> FaultToleranceReport {
    StretchOracle::new(graph, spanner).verify_edge_exhaustive(k, r)
}

/// Returns `true` if `spanner` is an `r`-edge-fault-tolerant `k`-spanner of
/// `graph`, verified exhaustively.
pub fn is_edge_fault_tolerant_k_spanner(
    graph: &Graph,
    spanner: &EdgeSet,
    k: f64,
    r: usize,
) -> bool {
    verify_edge_fault_tolerance_exhaustive(graph, spanner, k, r)
        .violating_faults
        .is_none()
}

/// Verifies edge-fault tolerance against `samples` random edge-fault sets of
/// size exactly `r` plus the empty set.
///
/// As with [`verify_fault_tolerance_sampled`], a failure is a proof of
/// invalidity while a pass is only evidence.
pub fn verify_edge_fault_tolerance_sampled<R: Rng + ?Sized>(
    graph: &Graph,
    spanner: &EdgeSet,
    k: f64,
    r: usize,
    samples: usize,
    rng: &mut R,
) -> FaultToleranceReport {
    StretchOracle::new(graph, spanner).verify_edge_sampled(k, r, samples, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::EdgeId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn full_graph_is_one_spanner() {
        let g = generate::complete(6);
        let full = g.full_edge_set();
        assert_eq!(max_stretch(&g, &full), 1.0);
        assert!(is_k_spanner(&g, &full, 1.0));
    }

    #[test]
    fn star_is_two_spanner_of_complete_graph() {
        let g = generate::complete(6);
        let mut star = g.empty_edge_set();
        for (id, e) in g.edges() {
            if e.u == NodeId::new(0) || e.v == NodeId::new(0) {
                star.insert(id);
            }
        }
        assert!(is_k_spanner(&g, &star, 2.0));
        assert!(!is_k_spanner(&g, &star, 1.5));
        assert_eq!(max_stretch(&g, &star), 2.0);
    }

    #[test]
    fn empty_spanner_has_infinite_stretch() {
        let g = generate::complete(4);
        let empty = g.empty_edge_set();
        assert!(max_stretch(&g, &empty).is_infinite());
        assert!(!is_k_spanner(&g, &empty, 100.0));
    }

    #[test]
    fn full_edge_set_is_edge_fault_tolerant_for_any_r() {
        let g = generate::complete(5);
        let full = g.full_edge_set();
        for r in 0..3 {
            assert!(is_edge_fault_tolerant_k_spanner(&g, &full, 1.0, r));
        }
    }

    #[test]
    fn edge_fault_stretch_matches_manual_detour() {
        // Cycle of 6 plus the chord (0, 3). Failing a cycle edge never hurts
        // the full edge set.
        let mut g = generate::cycle(6);
        let chord = g.add_edge(NodeId::new(0), NodeId::new(3), 1.0).unwrap();
        let full = g.full_edge_set();
        let f = crate::faults::EdgeFaultSet::from_indices([1]); // fail (1, 2)
        assert_eq!(max_stretch_under_edge_faults(&g, &full, &f), 1.0);

        // Spanner without the chord: once (1, 2) fails, the chord's endpoints
        // are 1 apart in G \ F but 3 apart in the spanner (0-5-4-3).
        let mut spanner = full.clone();
        spanner.remove(chord);
        let s = max_stretch_under_edge_faults(&g, &spanner, &f);
        assert_eq!(s, 3.0);
        assert!(!is_k_spanner_under_edge_faults(&g, &spanner, 2.0, &f));
        assert!(is_k_spanner_under_edge_faults(&g, &spanner, 3.0, &f));
    }

    #[test]
    fn edge_fault_exhaustive_verification_on_k4() {
        let g = generate::complete(4);
        // A triangle plus pendant star is a 2-spanner but not 1-edge-fault
        // tolerant: failing a star edge can force stretch 2 over a missing
        // direct edge — but the full set always passes.
        let full = g.full_edge_set();
        let report = verify_edge_fault_tolerance_exhaustive(&g, &full, 1.0, 2);
        assert!(report.is_valid());
        assert_eq!(
            report.checked as u128,
            crate::faults::count_fault_sets(6, 2)
        );

        let mut star = g.empty_edge_set();
        for (id, e) in g.edges() {
            if e.u == NodeId::new(0) || e.v == NodeId::new(0) {
                star.insert(id);
            }
        }
        // The star of K4 is a 2-spanner but a single edge fault breaks it:
        // failing star edge (0,1) leaves edge (1,2) in G \ F with no 2-hop
        // route through the spanner.
        assert!(is_k_spanner(&g, &star, 2.0));
        assert!(!is_edge_fault_tolerant_k_spanner(&g, &star, 2.0, 1));
        let report = verify_edge_fault_tolerance_exhaustive(&g, &star, 2.0, 1);
        assert!(!report.is_valid());
        assert!(report.worst_stretch > 2.0);
    }

    #[test]
    fn edge_fault_sampled_verification_agrees_with_exhaustive() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = generate::connected_gnp(12, 0.4, generate::WeightKind::Unit, &mut rng);
        let full = g.full_edge_set();
        let sampled = verify_edge_fault_tolerance_sampled(&g, &full, 1.0, 2, 20, &mut rng);
        assert!(sampled.is_valid());
        assert_eq!(sampled.checked, 21);
    }

    #[test]
    fn star_is_not_fault_tolerant() {
        // Removing the hub of the star disconnects the remaining clique edges.
        let g = generate::complete(5);
        let mut star = g.empty_edge_set();
        for (id, e) in g.edges() {
            if e.u == NodeId::new(0) || e.v == NodeId::new(0) {
                star.insert(id);
            }
        }
        assert!(is_k_spanner(&g, &star, 2.0));
        let report = verify_fault_tolerance_exhaustive(&g, &star, 2.0, 1);
        assert!(!report.is_valid());
        let witness = report.violating_faults.unwrap();
        assert!(witness.contains(NodeId::new(0)));
    }

    #[test]
    fn full_graph_is_fault_tolerant_for_any_r() {
        let g = generate::complete(5);
        let full = g.full_edge_set();
        for r in 0..3 {
            assert!(is_fault_tolerant_k_spanner(&g, &full, 1.0, r));
        }
    }

    #[test]
    fn exhaustive_report_counts_fault_sets() {
        let g = generate::cycle(5);
        let full = g.full_edge_set();
        let report = verify_fault_tolerance_exhaustive(&g, &full, 3.0, 2);
        assert_eq!(
            report.checked as u128,
            crate::faults::count_fault_sets(5, 2)
        );
        assert!(report.is_valid());
    }

    #[test]
    fn sampled_verification_catches_planted_violation() {
        let g = generate::complete(8);
        let mut star = g.empty_edge_set();
        for (id, e) in g.edges() {
            if e.u == NodeId::new(0) || e.v == NodeId::new(0) {
                star.insert(id);
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // A single random fault hits the hub with probability 1/8 per sample;
        // across 64 samples the violation is found with overwhelming
        // probability (and deterministically for this seed).
        let report = verify_fault_tolerance_sampled(&g, &star, 2.0, 1, 64, &mut rng);
        assert!(!report.is_valid());
    }

    #[test]
    fn stretch_under_faults_uses_surviving_distances() {
        // Square 0-1-2-3-0 with the heavy edge (3,0); failing vertex 1 makes
        // the heavy edge the only route from 0 to 3's side.
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 4.0)]).unwrap();
        let mut spanner = g.empty_edge_set();
        spanner.insert(EdgeId::new(0));
        spanner.insert(EdgeId::new(1));
        spanner.insert(EdgeId::new(2));
        // Without faults: edge (3,0) has d_G = 3 (through the path) and the
        // spanner realizes exactly 3, so stretch 1.
        assert_eq!(max_stretch(&g, &spanner), 1.0);
        // Failing vertex 1: edge (2,3) survives and is in the spanner, edge
        // (3,0) survives in G (d=4) but the spanner has no surviving 0-3 path.
        let faults = FaultSet::from_indices([1]);
        assert!(max_stretch_under_faults(&g, &spanner, &faults).is_infinite());
    }

    #[test]
    fn lemma_3_1_characterization_matches_definition() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..10 {
            let g = generate::directed_gnp(7, 0.5, generate::WeightKind::Unit, &mut rng);
            // Random arc subset as candidate spanner.
            let mut spanner = g.empty_arc_set();
            for (id, _) in g.arcs() {
                if rng.gen::<f64>() < 0.7 {
                    spanner.insert(id);
                }
            }
            for r in 0..=2 {
                assert_eq!(
                    is_ft_two_spanner(&g, &spanner, r),
                    is_ft_two_spanner_by_definition(&g, &spanner, r),
                    "characterization and definition disagree (r = {r})"
                );
            }
        }
    }

    #[test]
    fn two_spanner_violations_on_gap_gadget() {
        let g = generate::gap_gadget(2, 10.0).unwrap();
        // Buying only the 2-paths (not the expensive arc) covers (u,v) with
        // exactly r+1 = 3 paths when r = 2 requires 3 midpoints; the gadget
        // has only 2, so it must be a violation for r = 2.
        let mut spanner = g.empty_arc_set();
        for (id, arc) in g.arcs() {
            if arc.cost == 1.0 {
                spanner.insert(id);
            }
        }
        assert!(is_ft_two_spanner(&g, &spanner, 1));
        let viol = two_spanner_violations(&g, &spanner, 2);
        assert_eq!(viol.len(), 1);
        assert_eq!(g.arc(viol[0]).cost, 10.0);
    }

    #[test]
    fn count_two_paths() {
        let g = generate::gap_gadget(3, 5.0).unwrap();
        let full = g.full_arc_set();
        assert_eq!(
            count_spanner_two_paths(&g, &full, NodeId::new(0), NodeId::new(1)),
            3
        );
        let empty = g.empty_arc_set();
        assert_eq!(
            count_spanner_two_paths(&g, &empty, NodeId::new(0), NodeId::new(1)),
            0
        );
    }
}
