//! Reading and writing graphs in a simple text format.
//!
//! The experiments generate their workloads procedurally, but downstream
//! users of the library typically have graphs on disk (road networks,
//! measured topologies, DIMACS-style instances). This module provides a
//! minimal, dependency-free text format, close to the DIMACS edge-list
//! convention:
//!
//! ```text
//! # comment lines start with '#' (or 'c ' as in DIMACS)
//! graph <n> <m>
//! e <u> <v> <weight>
//! ...
//! ```
//!
//! and, for directed cost graphs,
//!
//! ```text
//! digraph <n> <m>
//! a <tail> <head> <cost>
//! ...
//! ```
//!
//! Vertices are 0-based indices. The writer emits exactly this format; the
//! reader additionally tolerates missing weights (defaulting to 1) and
//! DIMACS `p edge n m` headers.

use crate::{DiGraph, Graph, GraphError, NodeId, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes `graph` to `writer` in the text format described in the module
/// documentation.
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the underlying writer fails.
pub fn write_graph<W: Write>(graph: &Graph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "graph {} {}",
        graph.node_count(),
        graph.edge_count()
    )?;
    for (_, e) in graph.edges() {
        writeln!(writer, "e {} {} {}", e.u, e.v, e.weight)?;
    }
    Ok(())
}

/// Writes `graph` to the file at `path`, creating or truncating it.
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the file cannot be created or written.
pub fn save_graph<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_graph(graph, std::io::BufWriter::new(file))
}

/// Writes the directed graph `graph` to `writer`.
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the underlying writer fails.
pub fn write_digraph<W: Write>(graph: &DiGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "digraph {} {}",
        graph.node_count(),
        graph.arc_count()
    )?;
    for (_, a) in graph.arcs() {
        writeln!(writer, "a {} {} {}", a.tail, a.head, a.cost)?;
    }
    Ok(())
}

/// Writes the directed graph `graph` to the file at `path`.
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the file cannot be created or written.
pub fn save_digraph<P: AsRef<Path>>(graph: &DiGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_digraph(graph, std::io::BufWriter::new(file))
}

/// Reads an undirected graph from `reader`.
///
/// Accepts the format produced by [`write_graph`]; also tolerates DIMACS-style
/// `c` comment lines, a `p edge <n> <m>` header, and edge lines with the
/// weight omitted (interpreted as weight 1).
///
/// # Errors
///
/// * [`GraphError::Io`] if reading fails.
/// * [`GraphError::Parse`] if a line cannot be interpreted.
/// * Any error of [`Graph::add_edge`] (out-of-bounds endpoints, self-loops,
///   duplicate edges, invalid weights).
///
/// # Example
///
/// ```
/// use ftspan_graph::io;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "graph 3 2\ne 0 1 1.5\ne 1 2 2.0\n";
/// let g = io::read_graph(text.as_bytes())?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.total_weight(), 3.5);
/// # Ok(())
/// # }
/// ```
pub fn read_graph<R: Read>(reader: R) -> Result<Graph> {
    let parsed = parse_lines(reader, false)?;
    let mut g = Graph::new(parsed.n);
    for (line_no, u, v, w) in parsed.entries {
        g.add_edge(NodeId::new(u), NodeId::new(v), w)
            .map_err(|e| annotate(e, line_no))?;
    }
    Ok(g)
}

/// Reads an undirected graph from the file at `path`.
///
/// # Errors
///
/// Same conditions as [`read_graph`].
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let file = std::fs::File::open(path)?;
    read_graph(BufReader::new(file))
}

/// Reads a directed cost graph from `reader` (format of [`write_digraph`]).
///
/// # Errors
///
/// Same conditions as [`read_graph`].
pub fn read_digraph<R: Read>(reader: R) -> Result<DiGraph> {
    let parsed = parse_lines(reader, true)?;
    let mut g = DiGraph::new(parsed.n);
    for (line_no, u, v, w) in parsed.entries {
        g.add_arc(NodeId::new(u), NodeId::new(v), w)
            .map_err(|e| annotate(e, line_no))?;
    }
    Ok(g)
}

/// Reads a directed cost graph from the file at `path`.
///
/// # Errors
///
/// Same conditions as [`read_graph`].
pub fn load_digraph<P: AsRef<Path>>(path: P) -> Result<DiGraph> {
    let file = std::fs::File::open(path)?;
    read_digraph(BufReader::new(file))
}

struct ParsedFile {
    n: usize,
    entries: Vec<(usize, usize, usize, f64)>,
}

fn annotate(err: GraphError, line: usize) -> GraphError {
    GraphError::Parse {
        line,
        message: err.to_string(),
    }
}

fn parse_error(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_lines<R: Read>(reader: R, directed: bool) -> Result<ParsedFile> {
    let reader = BufReader::new(reader);
    let mut n: Option<usize> = None;
    let mut entries = Vec::new();
    let expected_header = if directed { "digraph" } else { "graph" };
    let expected_prefix = if directed { "a" } else { "e" };

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with("c ") {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        match fields[0] {
            h if h == expected_header => {
                if fields.len() < 2 {
                    return Err(parse_error(line_no, "header needs a vertex count"));
                }
                let count: usize = fields[1]
                    .parse()
                    .map_err(|_| parse_error(line_no, "vertex count is not an integer"))?;
                n = Some(count);
            }
            "p" => {
                // DIMACS: p edge <n> <m>
                if fields.len() < 3 {
                    return Err(parse_error(line_no, "dimacs header needs 'p edge n m'"));
                }
                let count: usize = fields[2]
                    .parse()
                    .map_err(|_| parse_error(line_no, "vertex count is not an integer"))?;
                n = Some(count);
            }
            prefix if prefix == expected_prefix => {
                if n.is_none() {
                    return Err(parse_error(line_no, "edge line before the header"));
                }
                if fields.len() < 3 {
                    return Err(parse_error(line_no, "edge line needs two endpoints"));
                }
                let u: usize = fields[1]
                    .parse()
                    .map_err(|_| parse_error(line_no, "endpoint is not an integer"))?;
                let v: usize = fields[2]
                    .parse()
                    .map_err(|_| parse_error(line_no, "endpoint is not an integer"))?;
                let w: f64 = if fields.len() >= 4 {
                    fields[3]
                        .parse()
                        .map_err(|_| parse_error(line_no, "weight is not a number"))?
                } else {
                    1.0
                };
                entries.push((line_no, u, v, w));
            }
            "graph" | "digraph" => {
                return Err(parse_error(
                    line_no,
                    format!(
                        "expected a '{expected_header}' header, found '{}'",
                        fields[0]
                    ),
                ));
            }
            other => {
                return Err(parse_error(
                    line_no,
                    format!("unknown line prefix '{other}'"),
                ));
            }
        }
    }
    let n = n.ok_or_else(|| parse_error(0, "missing header line"))?;
    Ok(ParsedFile { n, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn graph_roundtrip_through_memory() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generate::gnp(
            25,
            0.3,
            generate::WeightKind::Uniform { min: 0.5, max: 2.0 },
            &mut rng,
        );
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let back = read_graph(buf.as_slice()).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for (_, e) in g.edges() {
            let id = back
                .find_edge(e.u, e.v)
                .expect("edge survives the roundtrip");
            assert!((back.edge(id).weight - e.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn digraph_roundtrip_through_memory() {
        let g = generate::gap_gadget(3, 50.0).unwrap();
        let mut buf = Vec::new();
        write_digraph(&g, &mut buf).unwrap();
        let back = read_digraph(buf.as_slice()).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.arc_count(), g.arc_count());
        assert!((back.total_cost() - g.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = std::env::temp_dir().join("ftspan-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("unit.graph");
        let dpath = dir.join("unit.digraph");

        let g = generate::grid(3, 3);
        save_graph(&g, &gpath).unwrap();
        let back = load_graph(&gpath).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());

        let d = generate::complete_digraph(4);
        save_digraph(&d, &dpath).unwrap();
        let dback = load_digraph(&dpath).unwrap();
        assert_eq!(dback.arc_count(), 12);

        std::fs::remove_file(gpath).unwrap();
        std::fs::remove_file(dpath).unwrap();
    }

    #[test]
    fn reader_accepts_comments_missing_weights_and_dimacs_header() {
        let text = "# a comment\nc another comment\np edge 4 3\ne 0 1\ne 1 2 2.5\n\ne 2 3\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.total_weight(), 1.0 + 2.5 + 1.0);
    }

    #[test]
    fn reader_rejects_malformed_input() {
        // Edge before header.
        assert!(matches!(
            read_graph("e 0 1 1.0\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        // Wrong header kind.
        assert!(matches!(
            read_graph("digraph 3 1\na 0 1 1.0\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        // Garbage fields.
        assert!(matches!(
            read_graph("graph x 1\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_graph("graph 3 1\ne 0 one\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_graph("graph 3 1\nz 0 1\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        // Missing header entirely.
        assert!(matches!(
            read_graph("# nothing\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        // Structurally invalid edges are reported with their line number.
        let err = read_graph("graph 2 1\ne 0 0 1.0\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn load_missing_file_reports_io_error() {
        let missing = std::env::temp_dir().join("ftspan-io-tests-definitely-missing.graph");
        assert!(matches!(load_graph(&missing), Err(GraphError::Io { .. })));
        assert!(matches!(load_digraph(&missing), Err(GraphError::Io { .. })));
    }
}
