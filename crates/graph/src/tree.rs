//! Spanning trees and tree-based quality measures.
//!
//! Spanner papers traditionally measure *size* (edge count) and *weight*
//! (total length); the natural normalizer for weight is the minimum spanning
//! tree, giving the *lightness* `w(H) / w(MST)` of a spanner `H`. This module
//! provides:
//!
//! * [`minimum_spanning_forest`] — Kruskal's algorithm over the
//!   [`crate::components::UnionFind`] forest.
//! * [`shortest_path_tree`] / [`bfs_tree`] — single-source trees, used both
//!   as cheap spanner baselines (a shortest-path tree preserves distances
//!   from its root exactly) and by the distributed-algorithm simulator.
//! * [`lightness`] — the weight of an edge set normalized by the MST weight.

use crate::components::UnionFind;
use crate::shortest_path::SsspOptions;
use crate::{EdgeSet, Graph, GraphError, NodeId, Result};

/// A minimum spanning forest of `graph` (a minimum spanning tree per
/// connected component), returned as an [`EdgeSet`] over the graph's edges.
///
/// Uses Kruskal's algorithm: edges sorted by weight, joined through a
/// union–find forest. Ties are broken by edge identifier, so the result is
/// deterministic.
///
/// # Example
///
/// ```
/// use ftspan_graph::{tree, Graph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)])?;
/// let mst = tree::minimum_spanning_forest(&g);
/// assert_eq!(mst.len(), 3);
/// assert_eq!(g.edge_set_weight(&mst)?, 3.0);
/// # Ok(())
/// # }
/// ```
pub fn minimum_spanning_forest(graph: &Graph) -> EdgeSet {
    let mut order: Vec<_> = graph.edges().map(|(id, e)| (id, e.weight)).collect();
    order.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut uf = UnionFind::new(graph.node_count());
    let mut forest = graph.empty_edge_set();
    for (id, _) in order {
        let e = graph.edge(id);
        if uf.union(e.u.index(), e.v.index()) {
            forest.insert(id);
        }
    }
    forest
}

/// Total MST weight of `graph` (summed over components).
pub fn mst_weight(graph: &Graph) -> f64 {
    let forest = minimum_spanning_forest(graph);
    graph
        .edge_set_weight(&forest)
        .expect("forest edges come from the graph")
}

/// Lightness of the edge set `edges`: its total weight divided by the weight
/// of a minimum spanning forest of `graph`.
///
/// Returns `1.0` when the MST weight is zero (a graph with no edges or only
/// zero-weight edges), so the measure is always defined.
///
/// # Errors
///
/// Returns [`GraphError::MismatchedEdgeSet`] if `edges` was built for a
/// different graph.
pub fn lightness(graph: &Graph, edges: &EdgeSet) -> Result<f64> {
    let w = graph.edge_set_weight(edges)?;
    let base = mst_weight(graph);
    if base == 0.0 {
        Ok(1.0)
    } else {
        Ok(w / base)
    }
}

/// A rooted tree produced by a single-source search, stored as a parent map
/// plus the tree edges as an [`EdgeSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    edges: EdgeSet,
}

impl RootedTree {
    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v` in the tree, `None` for the root and for vertices not
    /// reached from the root.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The edges of the tree as a set over the parent graph's edges.
    pub fn edges(&self) -> &EdgeSet {
        &self.edges
    }

    /// Number of vertices reachable from the root (including the root).
    pub fn reached(&self) -> usize {
        1 + self.parent.iter().filter(|p| p.is_some()).count()
    }

    /// The path from `v` up to the root (inclusive of both endpoints), or
    /// `None` if `v` was not reached.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn path_to_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if v != self.root && self.parent[v.index()].is_none() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        Some(path)
    }
}

/// The shortest-path tree rooted at `root`, with respect to edge weights.
///
/// Each reached vertex stores the predecessor on one shortest path from the
/// root; the tree preserves the distance from `root` to every reachable
/// vertex exactly, which makes it the canonical "stretch from one source"
/// baseline.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `root` is out of bounds.
pub fn shortest_path_tree(graph: &Graph, root: NodeId) -> Result<RootedTree> {
    let n = graph.node_count();
    if root.index() >= n {
        return Err(GraphError::NodeOutOfBounds {
            node: root.index(),
            len: n,
        });
    }
    let dist = SsspOptions::new().run(graph, root)?;
    let mut parent = vec![None; n];
    let mut edges = graph.empty_edge_set();
    // For every vertex, pick the incident edge that realizes the distance.
    for v in graph.nodes() {
        if v == root || !dist[v.index()].is_finite() {
            continue;
        }
        let mut best: Option<(NodeId, crate::EdgeId)> = None;
        for (u, eid) in graph.incident(v) {
            let w = graph.edge(eid).weight;
            if (dist[u.index()] + w - dist[v.index()]).abs() <= 1e-9 {
                match best {
                    Some((bu, _)) if bu <= u => {}
                    _ => best = Some((u, eid)),
                }
            }
        }
        if let Some((u, eid)) = best {
            parent[v.index()] = Some(u);
            edges.insert(eid);
        }
    }
    Ok(RootedTree {
        root,
        parent,
        edges,
    })
}

/// The breadth-first-search tree rooted at `root` (hop-count shortest paths,
/// ignoring edge weights).
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if `root` is out of bounds.
pub fn bfs_tree(graph: &Graph, root: NodeId) -> Result<RootedTree> {
    let n = graph.node_count();
    if root.index() >= n {
        return Err(GraphError::NodeOutOfBounds {
            node: root.index(),
            len: n,
        });
    }
    let mut parent = vec![None; n];
    let mut edges = graph.empty_edge_set();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[root.index()] = true;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for (u, eid) in graph.incident(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                parent[u.index()] = Some(v);
                edges.insert(eid);
                queue.push_back(u);
            }
        }
    }
    Ok(RootedTree {
        root,
        parent,
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::shortest_path;

    #[test]
    fn mst_of_a_cycle_drops_the_heaviest_edge() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 9.0)]).unwrap();
        let mst = minimum_spanning_forest(&g);
        assert_eq!(mst.len(), 3);
        assert_eq!(g.edge_set_weight(&mst).unwrap(), 6.0);
        assert!(!mst.contains(g.find_edge(NodeId::new(3), NodeId::new(0)).unwrap()));
    }

    #[test]
    fn mst_of_disconnected_graph_is_a_forest() {
        let g = Graph::from_unit_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]).unwrap();
        let forest = minimum_spanning_forest(&g);
        assert_eq!(forest.len(), 4); // 2 + 2 edges
        assert_eq!(mst_weight(&g), 4.0);
    }

    #[test]
    fn mst_weight_of_unit_connected_graph_is_n_minus_one() {
        let g = generate::complete(7);
        assert_eq!(mst_weight(&g), 6.0);
    }

    #[test]
    fn mst_is_deterministic() {
        let g = generate::grid(4, 5);
        assert_eq!(minimum_spanning_forest(&g), minimum_spanning_forest(&g));
    }

    #[test]
    fn lightness_of_the_mst_is_one() {
        let g = generate::grid(3, 3);
        let mst = minimum_spanning_forest(&g);
        assert!((lightness(&g, &mst).unwrap() - 1.0).abs() < 1e-12);
        let full = g.full_edge_set();
        assert!(lightness(&g, &full).unwrap() >= 1.0);
    }

    #[test]
    fn lightness_of_edgeless_graph_is_defined() {
        let g = Graph::new(4);
        assert_eq!(lightness(&g, &g.full_edge_set()).unwrap(), 1.0);
        let wrong = EdgeSet::new(7);
        assert!(lightness(&g, &wrong).is_err());
    }

    #[test]
    fn shortest_path_tree_preserves_root_distances() {
        let g = Graph::from_edges(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (0, 4, 10.0),
                (0, 2, 1.5),
            ],
        )
        .unwrap();
        let tree = shortest_path_tree(&g, NodeId::new(0)).unwrap();
        assert_eq!(tree.root(), NodeId::new(0));
        assert_eq!(tree.edges().len(), 4);
        let exact = shortest_path::dijkstra(&g, NodeId::new(0)).unwrap();
        let on_tree = shortest_path::dijkstra_on_edges(&g, tree.edges(), NodeId::new(0)).unwrap();
        for v in 0..5 {
            assert!((exact[v] - on_tree[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn shortest_path_tree_handles_unreachable_vertices() {
        let g = Graph::from_unit_edges(4, [(0, 1)]).unwrap();
        let tree = shortest_path_tree(&g, NodeId::new(0)).unwrap();
        assert_eq!(tree.reached(), 2);
        assert_eq!(tree.parent(NodeId::new(3)), None);
        assert!(tree.path_to_root(NodeId::new(3)).is_none());
        assert_eq!(
            tree.path_to_root(NodeId::new(1)).unwrap(),
            vec![NodeId::new(1), NodeId::new(0)]
        );
        assert!(shortest_path_tree(&g, NodeId::new(9)).is_err());
    }

    #[test]
    fn bfs_tree_spans_the_component() {
        let g = generate::grid(3, 4);
        let tree = bfs_tree(&g, NodeId::new(0)).unwrap();
        assert_eq!(tree.reached(), 12);
        assert_eq!(tree.edges().len(), 11);
        // BFS tree hop distances match direct BFS.
        let hops = shortest_path::bfs_hops(&g, NodeId::new(0)).unwrap();
        for v in g.nodes() {
            let path = tree.path_to_root(v).unwrap();
            assert_eq!(path.len() - 1, hops[v.index()]);
        }
        assert!(bfs_tree(&g, NodeId::new(100)).is_err());
    }

    #[test]
    fn path_to_root_of_the_root_is_trivial() {
        let g = generate::path(3);
        let tree = bfs_tree(&g, NodeId::new(1)).unwrap();
        assert_eq!(
            tree.path_to_root(NodeId::new(1)).unwrap(),
            vec![NodeId::new(1)]
        );
    }
}
